// Figure 10: sharing vs stronger scheduler baselines.
//   (a) register sharing vs Unshared-GTO     (b) scratchpad vs Unshared-GTO
//   (c) register sharing vs Unshared-TwoLevel (d) scratchpad vs Unshared-TwoLevel
//
// The sharing line is the paper's full stack (Shared-OWF-Unroll-Dyn for
// registers, Shared-OWF for scratchpad); only the *baseline* scheduler
// changes between the sub-figures.
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

runner::SweepSpec build() {
  runner::SweepSpec s;
  s.add_grid({runner::ConfigVariant::of(configs::unshared(SchedulerKind::kGto)),
              runner::ConfigVariant::of(configs::unshared(SchedulerKind::kTwoLevel)),
              runner::ConfigVariant::of(configs::shared_owf_unroll_dyn(Resource::kRegisters))},
             workloads::set1());
  s.add_grid({runner::ConfigVariant::of(configs::unshared(SchedulerKind::kGto)),
              runner::ConfigVariant::of(configs::unshared(SchedulerKind::kTwoLevel)),
              runner::ConfigVariant::of(configs::shared_owf(Resource::kScratchpad))},
             workloads::set2());
  return s;
}

void versus(const runner::BenchView& v, const std::vector<KernelInfo>& kernels,
            const std::string& baseline_label, const std::string& shared_label,
            const char* caption) {
  TextTable t({"application", "baseline IPC", "shared IPC", "improvement"});
  for (const KernelInfo& k : kernels) {
    const SimResult* base = v.find(baseline_label, k.name);
    const SimResult* shared = v.find(shared_label, k.name);
    if (base == nullptr || shared == nullptr) continue;
    t.add_row({k.name, TextTable::fmt(base->stats.ipc()), TextTable::fmt(shared->stats.ipc()),
               TextTable::pct(percent_improvement(base->stats.ipc(), shared->stats.ipc()))});
  }
  t.print(caption);
}

void present(const runner::BenchView& v) {
  const std::string reg = configs::shared_owf_unroll_dyn(Resource::kRegisters).line_label();
  const std::string smem = configs::shared_owf(Resource::kScratchpad).line_label();
  versus(v, workloads::set1(), "Unshared-GTO", reg,
         "Fig 10(a): register sharing vs Unshared-GTO");
  versus(v, workloads::set2(), "Unshared-GTO", smem,
         "Fig 10(b): scratchpad sharing vs Unshared-GTO");
  versus(v, workloads::set1(), "Unshared-TwoLevel", reg,
         "Fig 10(c): register sharing vs Unshared-TwoLevel");
  versus(v, workloads::set2(), "Unshared-TwoLevel", smem,
         "Fig 10(d): scratchpad sharing vs Unshared-TwoLevel");
}

const runner::BenchRegistrar reg{
    {"fig10", "sharing vs stronger scheduler baselines (GTO, TwoLevel)", build, present}};

}  // namespace
}  // namespace grs
