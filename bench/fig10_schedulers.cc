// Figure 10: sharing vs stronger scheduler baselines.
//   (a) register sharing vs Unshared-GTO     (b) scratchpad vs Unshared-GTO
//   (c) register sharing vs Unshared-TwoLevel (d) scratchpad vs Unshared-TwoLevel
//
// The sharing line is the paper's full stack (Shared-OWF-Unroll-Dyn for
// registers, Shared-OWF for scratchpad); only the *baseline* scheduler
// changes between the sub-figures.
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

void versus(const std::vector<KernelInfo>& kernels, SchedulerKind baseline_sched,
            const GpuConfig& shared, const char* caption) {
  TextTable t({"application", "baseline IPC", "shared IPC", "improvement"});
  for (const KernelInfo& k : kernels) {
    const double base = simulate(configs::unshared(baseline_sched), k).stats.ipc();
    const double s = simulate(shared, k).stats.ipc();
    t.add_row({k.name, TextTable::fmt(base), TextTable::fmt(s),
               TextTable::pct(percent_improvement(base, s))});
  }
  t.print(caption);
}

}  // namespace

int main() {
  versus(workloads::set1(), SchedulerKind::kGto,
         configs::shared_owf_unroll_dyn(Resource::kRegisters),
         "Fig 10(a): register sharing vs Unshared-GTO");
  versus(workloads::set2(), SchedulerKind::kGto, configs::shared_owf(Resource::kScratchpad),
         "Fig 10(b): scratchpad sharing vs Unshared-GTO");
  versus(workloads::set1(), SchedulerKind::kTwoLevel,
         configs::shared_owf_unroll_dyn(Resource::kRegisters),
         "Fig 10(c): register sharing vs Unshared-TwoLevel");
  versus(workloads::set2(), SchedulerKind::kTwoLevel,
         configs::shared_owf(Resource::kScratchpad),
         "Fig 10(d): scratchpad sharing vs Unshared-TwoLevel");
  return 0;
}
