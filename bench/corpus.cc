// corpus — sweep every saved .gkd kernel in the corpus directory across the
// headline configuration lines, so interesting fuzz finds and trace imports
// stay permanent regression points.
//
// The directory defaults to examples/kernels/ (relative to the working
// directory, which is the repo root in CI); override with GRS_CORPUS_DIR.
// Unreadable or malformed files are reported on stderr and skipped
// (runner::load_kernel_dir) — the strict load check lives in the test suite,
// the bench's job is to run what it can. Scratchpad-sharing lines are added
// only for kernels that declare scratchpad.
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "runner/kernel_source.h"
#include "runner/registry.h"

namespace grs {
namespace {

std::vector<KernelInfo> load_corpus() {
  return runner::load_kernel_dir(runner::default_corpus_dir());
}

GpuConfig shared_reg() { return configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1); }
GpuConfig shared_smem() { return configs::shared_owf(Resource::kScratchpad, 0.1); }

runner::SweepSpec build() {
  runner::SweepSpec s;
  for (const KernelInfo& k : load_corpus()) {
    s.add(configs::unshared().line_label(), configs::unshared(), k);
    s.add(configs::unshared(SchedulerKind::kGto).line_label(),
          configs::unshared(SchedulerKind::kGto), k);
    s.add(shared_reg().line_label(), shared_reg(), k);
    if (k.resources.smem_per_block > 0) s.add(shared_smem().line_label(), shared_smem(), k);
  }
  return s;
}

void present(const runner::BenchView& v) {
  TextTable table({"kernel", "Unshared-LRR", "Unshared-GTO", "Shared-reg", "Shared-smem"});
  for (const std::string& name : v.kernels()) {
    auto ipc = [&](const std::string& line) {
      const SimResult* r = v.find(line, name);
      return r == nullptr ? std::string("-") : TextTable::fmt(r->stats.ipc());
    };
    table.add_row({name, ipc(configs::unshared().line_label()),
                   ipc(configs::unshared(SchedulerKind::kGto).line_label()),
                   ipc(shared_reg().line_label()), ipc(shared_smem().line_label())});
  }
  table.print("Corpus sweep: IPC per configuration line");
}

const runner::BenchRegistrar reg{
    {"corpus", "saved .gkd corpus sweep (examples/kernels, GRS_CORPUS_DIR to override)",
     build, present}};

}  // namespace
}  // namespace grs
