// Google-benchmark micro-benchmarks of the simulator itself: cost of the
// building blocks (cache lookups, DRAM requests, occupancy math, program
// cursors) and end-to-end simulation throughput. These guard against
// performance regressions in the simulator, not the paper's results.
#include <benchmark/benchmark.h>

#include "common/config.h"
#include "core/occupancy.h"
#include "gpu/simulator.h"
#include "isa/builder.h"
#include "memory/cache.h"
#include "memory/dram.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "workloads/suites.h"

namespace grs {
namespace {

void BM_CacheLookupHit(benchmark::State& state) {
  Cache c(CacheConfig{});
  (void)c.lookup(0, 0);
  c.fill_inflight(0, 1);
  c.drain(2);
  Cycle now = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(0, now++));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheMissFill(benchmark::State& state) {
  Cache c(CacheConfig{});
  Addr a = 0;
  Cycle now = 0;
  for (auto _ : state) {
    const auto r = c.lookup(a, now);
    if (!r.hit && !r.mshr_merge && !r.mshr_full) c.fill_inflight(a, now + 10);
    a += 128;
    now += 20;  // keeps the MSHR draining
  }
}
BENCHMARK(BM_CacheMissFill);

void BM_DramRequest(benchmark::State& state) {
  Dram d(DramConfig{}, 128);
  Addr a = 0;
  Cycle now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.request(a, now));
    a += 128;
    ++now;
  }
}
BENCHMARK(BM_DramRequest);

void BM_Occupancy(benchmark::State& state) {
  const GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters);
  const KernelResources res{256, 36, 512};
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_occupancy(cfg, res));
  }
}
BENCHMARK(BM_Occupancy);

void BM_ProgramCursor(benchmark::State& state) {
  const Program p = workloads::hotspot().program;
  for (auto _ : state) {
    ProgramCursor c(p);
    std::uint64_t n = 0;
    while (c.peek(p) != nullptr) {
      c.advance(p);
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ProgramCursor);

/// End-to-end: cycles simulated per wall second on a small grid.
void BM_EndToEndSim(benchmark::State& state) {
  KernelInfo k = workloads::hotspot();
  k.grid_blocks = 42;
  const GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const SimResult r = simulate(cfg, k);
    cycles += r.stats.cycles;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.counters["sim_cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndSim)->Unit(benchmark::kMillisecond);

/// Execution-mode speedup table: the same kernel under the naive cycle loop
/// (arg 0) and the event-driven loop (arg 1). Both produce bit-identical
/// statistics (tests/test_equivalence.cc); the ratio of these two rows is
/// the cycle-skipping speedup. hotspot is compute-leaning, b+tree is the
/// memory-bound case where skipping pays most.
void BM_ExecModeHotspot(benchmark::State& state) {
  KernelInfo k = workloads::hotspot();
  k.grid_blocks = 42;
  GpuConfig cfg = configs::unshared();
  cfg.exec_mode = state.range(0) == 0 ? ExecMode::kCycle : ExecMode::kEvent;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(cfg, k).stats.cycles);
  }
  state.SetLabel(to_string(cfg.exec_mode));
}
BENCHMARK(BM_ExecModeHotspot)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Observability tax. BM_TraceOff is the zero-cost-when-off guard: the
/// 3-argument simulate() with a null observer must match plain simulate()
/// (compare against BM_EndToEndSim). BM_TraceOn measures full event tracing
/// into a counting sink — the opt-in price of --trace.
void BM_TraceOff(benchmark::State& state) {
  KernelInfo k = workloads::hotspot();
  k.grid_blocks = 42;
  const GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(cfg, k, nullptr).stats.cycles);
  }
}
BENCHMARK(BM_TraceOff)->Unit(benchmark::kMillisecond);

void BM_TraceOn(benchmark::State& state) {
  KernelInfo k = workloads::hotspot();
  k.grid_blocks = 42;
  const GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters);
  obs::ObsOptions opts;
  std::uint64_t events = 0;
  for (auto _ : state) {
    obs::NullTraceSink sink;
    obs::SimObserver observer(opts, &sink);
    benchmark::DoNotOptimize(simulate(cfg, k, &observer).stats.cycles);
    events += sink.events();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceOn)->Unit(benchmark::kMillisecond);

void BM_ExecModeBtree(benchmark::State& state) {
  KernelInfo k = workloads::btree();
  k.grid_blocks = 84;
  GpuConfig cfg = configs::unshared();
  cfg.exec_mode = state.range(0) == 0 ? ExecMode::kCycle : ExecMode::kEvent;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(cfg, k).stats.cycles);
  }
  state.SetLabel(to_string(cfg.exec_mode));
}
BENCHMARK(BM_ExecModeBtree)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace grs

BENCHMARK_MAIN();
