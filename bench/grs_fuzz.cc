// grs_fuzz — differential fuzzer over generated kernels.
//
// PR 2 made the cycle and event execution modes bit-identical for every
// built-in kernel; that equivalence is this harness's oracle. For every
// (profile, seed) pair it generates a kernel (workloads/gen), runs it across
// scheduler × sharing configuration lines in BOTH execution modes via the
// parallel experiment engine (src/runner), and diffs the full statistics
// structs bit for bit. Any divergence dumps the kernel as a .gkd repro file
// (workloads/format) and fails the process.
//
//   grs_fuzz [--seeds N] [--start S] [--profile NAME|all] [--threads N]
//            [--max-cycles N] [--out-dir DIR] [--full] [--list-profiles]
//
//   --seeds N        number of (profile, seed) pairs to run (default 20)
//   --start S        first seed (default 0); pair k uses seed S+k and, with
//                    --profile all, profile (S+k) mod #profiles
//   --profile P      a single profile for every seed (default: all)
//   --full           run all 8 config lines (default: a 5-line fast set)
//   --max-cycles N   per-simulation safety cap (default 300000; 0 = none);
//                    capped runs still diff bit-for-bit across modes
//   --out-dir DIR    where divergence repros go (default .; must exist)
//   --threads N      engine worker threads (default: hardware concurrency)
//
// Exit status: 0 = everything bit-identical, 1 = divergence, 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/parse.h"
#include "runner/engine.h"
#include "workloads/format/gkd.h"
#include "workloads/gen/generator.h"

using namespace grs;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n(see the header of bench/grs_fuzz.cc)\n", msg.c_str());
  std::exit(2);
}

std::uint64_t arg_u64(const std::string& flag, const std::string& value) {
  const auto v = parse_u64(value);  // common/parse.h: strict whole-string parse
  if (!v.has_value()) usage(flag + " expects a non-negative integer, got '" + value + "'");
  return *v;
}

/// The configuration lines a generated kernel is checked under. Labels are
/// line_label() plus the shared resource, so register- and scratchpad-sharing
/// lines with the same optimizations stay distinguishable.
std::vector<runner::ConfigVariant> config_lines(const KernelInfo& k, bool full) {
  std::vector<GpuConfig> cfgs;
  cfgs.push_back(configs::unshared(SchedulerKind::kLrr));
  cfgs.push_back(configs::unshared(SchedulerKind::kGto));
  if (full) cfgs.push_back(configs::unshared(SchedulerKind::kTwoLevel));
  cfgs.push_back(configs::shared_noopt(Resource::kRegisters));
  if (full) cfgs.push_back(configs::shared_unroll_dyn(Resource::kRegisters));
  cfgs.push_back(configs::shared_owf_unroll_dyn(Resource::kRegisters));
  if (k.resources.smem_per_block > 0) {
    cfgs.push_back(configs::shared_owf(Resource::kScratchpad));
    if (full) cfgs.push_back(configs::shared_noopt(Resource::kScratchpad));
  }
  std::vector<runner::ConfigVariant> out;
  out.reserve(cfgs.size());
  for (const GpuConfig& c : cfgs) {
    std::string label = c.line_label();
    if (c.sharing.enabled) label += std::string("[") + to_string(c.sharing.resource) + "]";
    out.push_back({std::move(label), c});
  }
  return out;
}

/// The grs_cli flags that reproduce one configuration line, so the repro
/// file's instructions are runnable as written.
std::string cli_flags(const GpuConfig& c) {
  std::string out = "--sched ";
  switch (c.scheduler) {
    case SchedulerKind::kLrr: out += "lrr"; break;
    case SchedulerKind::kGto: out += "gto"; break;
    case SchedulerKind::kTwoLevel: out += "twolevel"; break;
    case SchedulerKind::kOwf: out += "owf"; break;
  }
  if (c.sharing.enabled) {
    out += " --share ";
    out += c.sharing.resource == Resource::kScratchpad ? "scratchpad" : "registers";
    char t[32];
    std::snprintf(t, sizeof(t), " --t %g", c.sharing.threshold_t);
    out += t;
    if (c.sharing.unroll_registers) out += " --unroll";
    if (c.sharing.dynamic_warp_execution) out += " --dyn";
  }
  return out;
}

void write_repro(const std::string& out_dir, const KernelInfo& kernel, std::uint64_t seed,
                 const std::string& profile, const std::string& line, const GpuConfig& cfg) {
  const std::string path = out_dir + "/repro-" + kernel.name + ".gkd";
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "[grs_fuzz] cannot write repro %s\n", path.c_str());
    return;
  }
  f << "# grs_fuzz divergence repro: cycle vs event statistics differ\n"
    << "# profile " << profile << ", seed " << seed << ", config line " << line << "\n"
    << "# reproduce (diff the two outputs):\n"
    << "#   grs_cli --load " << path << " " << cli_flags(cfg) << " --exec-mode cycle\n"
    << "#   grs_cli --load " << path << " " << cli_flags(cfg) << " --exec-mode event\n"
    << workloads::gkd::serialize(kernel);
  std::fprintf(stderr, "[grs_fuzz] wrote repro %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 20, start = 0, max_cycles = 300000;
  std::string profile_name = "all", out_dir = ".";
  unsigned threads = 0;
  bool full = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    if (a == "--seeds") {
      seeds = arg_u64(a, next());
    } else if (a == "--start") {
      start = arg_u64(a, next());
    } else if (a == "--profile") {
      profile_name = next();
    } else if (a == "--threads") {
      threads = static_cast<unsigned>(arg_u64(a, next()));
    } else if (a == "--max-cycles") {
      max_cycles = arg_u64(a, next());
    } else if (a == "--out-dir") {
      out_dir = next();
    } else if (a == "--full") {
      full = true;
    } else if (a == "--list-profiles") {
      for (const auto& p : workloads::gen::all_profiles()) std::printf("%s\n", p.name.c_str());
      return 0;
    } else {
      usage("unknown flag " + a);
    }
  }

  std::vector<workloads::gen::GenProfile> profiles;
  try {
    if (profile_name == "all") {
      profiles = workloads::gen::all_profiles();
    } else {
      profiles.push_back(workloads::gen::profile_by_name(profile_name));
    }
  } catch (const std::exception& e) {
    usage(e.what());
  }

  std::size_t sims = 0, divergences = 0;
  for (std::uint64_t k = 0; k < seeds; ++k) {
    const std::uint64_t seed = start + k;
    const workloads::gen::GenProfile& profile = profiles[seed % profiles.size()];
    const KernelInfo kernel = workloads::gen::generate(profile, seed);

    const std::vector<runner::ConfigVariant> lines = config_lines(kernel, full);
    runner::SweepSpec spec;
    for (const runner::ConfigVariant& v : lines) {
      for (const ExecMode mode : {ExecMode::kCycle, ExecMode::kEvent}) {
        GpuConfig cfg = v.config;
        cfg.exec_mode = mode;
        cfg.max_cycles = max_cycles;
        spec.add(v.label + (mode == ExecMode::kCycle ? "|cycle" : "|event"), cfg, kernel);
      }
    }

    runner::RunOptions options;
    options.threads = threads;
    // The differential oracle must NEVER consult the result cache: a cached
    // result would be served to both execution modes (or replay an old run)
    // and mask exactly the cycle/event divergence this harness exists to
    // catch. Forced off here — grs_fuzz deliberately has no --cache flag —
    // and locked in by CacheTest.OffModeNeverConsultsTheStore.
    options.cache_dir.clear();
    options.cache_mode = cache::CacheMode::kOff;
    const std::vector<runner::SweepRow> rows = runner::run_sweep(spec, options);
    sims += rows.size();

    for (std::size_t j = 0; j + 1 < rows.size(); j += 2) {
      if (rows[j].result.stats != rows[j + 1].result.stats) {
        ++divergences;
        const std::string& line = lines[j / 2].label;
        std::fprintf(stderr,
                     "[grs_fuzz] DIVERGENCE: %s (profile %s, seed %llu) on %s: "
                     "cycle IPC %.4f vs event IPC %.4f\n",
                     kernel.name.c_str(), profile.name.c_str(),
                     static_cast<unsigned long long>(seed), line.c_str(),
                     rows[j].result.stats.ipc(), rows[j + 1].result.stats.ipc());
        write_repro(out_dir, kernel, seed, profile.name, line, lines[j / 2].config);
      }
    }
    if ((k + 1) % 10 == 0 || k + 1 == seeds) {
      std::fprintf(stderr, "[grs_fuzz] %llu/%llu seeds, %zu sims, %zu divergences\n",
                   static_cast<unsigned long long>(k + 1),
                   static_cast<unsigned long long>(seeds), sims, divergences);
    }
  }

  if (divergences != 0) {
    std::fprintf(stderr, "[grs_fuzz] FAIL: %zu divergent configuration lines\n", divergences);
    return 1;
  }
  std::printf("[grs_fuzz] OK: %llu seeds, %zu simulations, all cycle/event stats bit-identical\n",
              static_cast<unsigned long long>(seeds), sims);
  return 0;
}
