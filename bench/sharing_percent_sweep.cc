#include "sharing_percent_sweep.h"

#include "common/table.h"

namespace grs::bench {

namespace {

const std::vector<double>& percents() {
  static const std::vector<double> p{0, 10, 30, 50, 70, 90};
  return p;
}

std::string percent_label(double p) { return TextTable::fmt(p, 0) + "%"; }

}  // namespace

runner::SweepSpec build_percent_sweep(const PercentSweep& sweep) {
  runner::SweepSpec s;
  std::vector<runner::ConfigVariant> variants;
  for (double p : percents()) {
    const double t = 1.0 - p / 100.0;
    variants.push_back({percent_label(p), sweep.factory(sweep.resource, t)});
  }
  s.add_grid(variants, sweep.kernels());
  return s;
}

void present_percent_sweep(const PercentSweep& sweep, const runner::BenchView& v) {
  std::vector<std::string> header{"% sharing"};
  for (double p : percents()) header.push_back(percent_label(p));

  TextTable ipc(header);
  TextTable blocks(header);
  for (const KernelInfo& k : sweep.kernels()) {
    std::vector<std::string> ipc_row{k.name};
    std::vector<std::string> blk_row{k.name};
    for (double p : percents()) {
      const SimResult* r = v.find(percent_label(p), k.name);
      if (r == nullptr) break;
      ipc_row.push_back(TextTable::fmt(r->stats.ipc(), 1));
      blk_row.push_back(std::to_string(r->occupancy.total_blocks));
    }
    if (ipc_row.size() != header.size()) continue;
    ipc.add_row(std::move(ipc_row));
    blocks.add_row(std::move(blk_row));
  }
  ipc.print(sweep.ipc_caption);
  blocks.print(sweep.blocks_caption);
}

}  // namespace grs::bench
