// Tables V and VI: effect of the sharing percentage on register sharing.
//   Table V  — IPC at 0/10/30/50/70/90 % sharing (t = 1.0/0.9/0.7/0.5/0.3/0.1)
//   Table VI — resident thread blocks per SM at the same points
//
// The paper's key shapes: rows are flat until Eq. 4 admits extra blocks, most
// kernels peak at 90%, and the block counts match Table VI exactly.
#include "common/config.h"
#include "runner/registry.h"
#include "sharing_percent_sweep.h"
#include "workloads/suites.h"

namespace grs {
namespace {

const bench::PercentSweep& sweep() {
  static const bench::PercentSweep s{
      configs::shared_owf_unroll_dyn, Resource::kRegisters, workloads::set1,
      "Table V: IPC vs register-sharing percentage (Shared-OWF-Unroll-Dyn)",
      "Table VI: resident thread blocks vs register-sharing percentage"};
  return s;
}

const runner::BenchRegistrar reg{
    {"table5_6", "register sharing: IPC and blocks vs sharing percentage",
     [] { return bench::build_percent_sweep(sweep()); },
     [](const runner::BenchView& v) { bench::present_percent_sweep(sweep(), v); }}};

}  // namespace
}  // namespace grs
