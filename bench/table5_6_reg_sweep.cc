// Tables V and VI: effect of the sharing percentage on register sharing.
//   Table V  — IPC at 0/10/30/50/70/90 % sharing (t = 1.0/0.9/0.7/0.5/0.3/0.1)
//   Table VI — resident thread blocks per SM at the same points
//
// The paper's key shapes: rows are flat until Eq. 4 admits extra blocks, most
// kernels peak at 90%, and the block counts match Table VI exactly.
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

int main() {
  const std::vector<double> percents{0, 10, 30, 50, 70, 90};
  std::vector<std::string> header{"% sharing"};
  for (double p : percents) header.push_back(TextTable::fmt(p, 0) + "%");

  TextTable ipc(header);
  TextTable blocks(header);
  for (const KernelInfo& k : workloads::set1()) {
    std::vector<std::string> ipc_row{k.name};
    std::vector<std::string> blk_row{k.name};
    for (double p : percents) {
      const double t = 1.0 - p / 100.0;
      const SimResult r =
          simulate(configs::shared_owf_unroll_dyn(Resource::kRegisters, t), k);
      ipc_row.push_back(TextTable::fmt(r.stats.ipc(), 1));
      blk_row.push_back(std::to_string(r.occupancy.total_blocks));
    }
    ipc.add_row(std::move(ipc_row));
    blocks.add_row(std::move(blk_row));
  }
  ipc.print("Table V: IPC vs register-sharing percentage (Shared-OWF-Unroll-Dyn)");
  blocks.print("Table VI: resident thread blocks vs register-sharing percentage");
  return 0;
}
