// Paper §V: storage cost of the sharing hardware, evaluated on the Table I
// configuration and a sweep of SM shapes. No simulation needed — this bench
// has an empty sweep grid and a presenter that evaluates the closed-form
// cost model (core/hardware_cost.h).
#include <cstdio>
#include <string>

#include "common/table.h"
#include "core/hardware_cost.h"
#include "runner/registry.h"

namespace grs {
namespace {

runner::SweepSpec build() { return runner::SweepSpec{}; }

void present(const runner::BenchView&) {
  TextTable t({"T (blocks)", "W (warps)", "N (SMs)", "register sharing (bits)",
               "scratchpad sharing (bits)", "total (bytes, both)"});
  for (const HardwareCostParams& p :
       {HardwareCostParams{8, 48, 14},    // paper Table I
        HardwareCostParams{8, 48, 15},    // GTX480 shape
        HardwareCostParams{16, 64, 16},   // Kepler-class
        HardwareCostParams{32, 64, 80}}) {  // Volta-class
    const std::uint64_t reg = register_sharing_bits(p);
    const std::uint64_t smem = scratchpad_sharing_bits(p);
    t.add_row({std::to_string(p.blocks_per_sm), std::to_string(p.warps_per_sm),
               std::to_string(p.num_sms), std::to_string(reg), std::to_string(smem),
               std::to_string((reg + smem + 7) / 8)});
  }
  t.print("Paper SV: hardware storage cost of the sharing mechanisms");
  std::printf("\n(Table I config: %llu bits/SM register sharing — a %0.3f%% overhead "
              "on the 128KB register file.)\n",
              static_cast<unsigned long long>(
                  register_sharing_bits(HardwareCostParams{8, 48, 14}) / 14),
              100.0 *
                  static_cast<double>(register_sharing_bits(HardwareCostParams{8, 48, 14}) / 14) /
                  (32768.0 * 32.0));
}

const runner::BenchRegistrar reg{
    {"hw_cost", "storage cost of the sharing hardware (paper SV)", build, present}};

}  // namespace
}  // namespace grs
