// grs_bench — unified driver for every paper figure/table sweep.
//
//   grs_bench --list                     # registered benches + descriptions
//   grs_bench fig8 fig10                 # reproduce figures 8 and 10
//   grs_bench all --threads 8 --out results.csv
//   grs_bench table5_6 --filter hotspot  # one kernel's sharing sweep
//   grs_bench study                      # regenerate docs/study/
//
// `grs_bench --help` documents every flag (print_help() below is the single
// source of truth; scripts/check_docs.sh keeps the docs in sync with it).
//
// Paper tables go to stdout; progress/status go to stderr, so
// `grs_bench fig8 > fig8.txt` matches the output of the old serial driver
// byte for byte.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/parse.h"
#include "perf_suite.h"
#include "prof/perf_record.h"
#include "prof/prof.h"
#include "runner/cli_options.h"
#include "runner/manifest.h"
#include "runner/progress.h"
#include "runner/registry.h"
#include "runner/sink.h"
#include "runner/thread_pool.h"

using namespace grs;

namespace {

/// The shared flags this binary accepts (runner/cli_options.h).
constexpr runner::CommonFlagSet kFlags{/*filter=*/true, /*json=*/true};

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n(grs_bench --help lists the flags; --list the benches)\n",
               msg.c_str());
  std::exit(2);
}

void print_help() {
  std::printf(
      "usage: grs_bench <bench...>|all [options]\n"
      "\n"
      "Reproduce any paper figure/table sweep (or the docs/study sharing study)\n"
      "through the parallel experiment engine. Paper tables go to stdout,\n"
      "progress to stderr.\n"
      "\n"
      "  <bench...>|all    benches to run (see --list)\n"
      "  --list            list registered benches with descriptions and exit\n"
      "%s"
      "  --exec-mode M     force cycle | event on every sweep point (default:\n"
      "                    whatever the configs say — event); bit-identical stats\n"
      "  --perf-record FILE  run the pinned perf suite (fig8 hotspot, one study\n"
      "                    slice, one corpus kernel) instead of benches and write\n"
      "                    a grs-perf-record-v1 JSON; diff against a committed\n"
      "                    baseline with scripts/perf_check.py\n"
      "                    (docs/perf-tracking.md)\n"
      "  --perf-reps N     timed repetitions per suite point, median reported\n"
      "                    (default 5)\n"
      "  --table           also print the generic per-sweep console table\n"
      "  --quiet           skip the paper-shaped presenters (sinks still run;\n"
      "                    note: the study bench writes its reports from its\n"
      "                    presenter, so --quiet skips those files too)\n"
      "  --help            this text\n"
      "\n"
      "The study bench writes docs/study/ reports; override the directory with\n"
      "GRS_STUDY_DIR. The corpus bench reads examples/kernels/; override with\n"
      "GRS_CORPUS_DIR.\n",
      runner::common_options_help(kFlags).c_str());
}

void list_benches() {
  for (const runner::BenchDef* b : runner::all_benches())
    std::printf("%-14s %s\n", b->name.c_str(), b->title.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> selected;
  runner::CommonOptions opts;
  bool table = false, quiet = false;
  bool exec_mode_set = false;
  ExecMode exec_mode = ExecMode::kEvent;
  std::string perf_record_path;
  int perf_reps = 5;
  bool perf_reps_set = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage("missing value for " + a);
        return argv[++i];
      };
      if (parse_common_flag(opts, kFlags, a, next)) {
        continue;
      } else if (a == "--help" || a == "-h") {
        print_help();
        return 0;
      } else if (a == "--list") {
        list_benches();
        return 0;
      } else if (a == "--exec-mode") {
        const std::string m = next();
        if (m == "cycle") exec_mode = ExecMode::kCycle;
        else if (m == "event") exec_mode = ExecMode::kEvent;
        else usage("unknown --exec-mode (cycle | event)");
        exec_mode_set = true;
      } else if (a == "--perf-record") {
        perf_record_path = next();
        if (perf_record_path.empty()) usage("--perf-record expects a file name");
      } else if (a == "--perf-reps") {
        const std::string value = next();
        const auto v = parse_u32(value);
        if (!v.has_value() || *v == 0 || *v > 1000)
          usage("--perf-reps expects an integer in [1, 1000], got '" + value + "'");
        perf_reps = static_cast<int>(*v);
        perf_reps_set = true;
      } else if (a == "--table") {
        table = true;
      } else if (a == "--quiet") {
        quiet = true;
      } else if (!a.empty() && a[0] == '-') {
        usage("unknown flag " + a);
      } else {
        selected.push_back(a);
      }
    }
    opts.finalize();
  } catch (const runner::UsageError& e) {
    usage(e.what());
  }

  if (perf_reps_set && perf_record_path.empty())
    usage("--perf-reps only applies together with --perf-record FILE");

  if (!perf_record_path.empty()) {
    // The record must measure the pinned suite, fresh, with nothing skewing
    // the clock: no bench selection, caching, observability, or profiling
    // flags apply (the record embeds its own profiled rep).
    if (!selected.empty() || exec_mode_set || table || quiet || !opts.filter.empty() ||
        !opts.out_csv.empty() || !opts.out_json.empty() || opts.cache_enabled() ||
        opts.obs_enabled() || opts.prof_enabled() || !opts.manifest_path.empty()) {
      usage("--perf-record runs the pinned perf suite by itself; only --threads, "
            "--perf-reps and --progress apply");
    }
    try {
      prof::PerfRecordOptions record_opts;
      record_opts.reps = perf_reps;
      record_opts.threads = opts.threads == 0 ? 1 : opts.threads;  // pinned: stable timing
      record_opts.verbose = opts.progress;
      const std::string json = record_perf(default_perf_suite(), record_opts);
      std::ofstream f(perf_record_path, std::ios::binary | std::ios::trunc);
      if (!f) usage("cannot open " + perf_record_path);
      f.write(json.data(), static_cast<std::streamsize>(json.size()));
      if (!f) {
        std::fprintf(stderr, "error: failed writing %s\n", perf_record_path.c_str());
        return 2;
      }
      std::fprintf(stderr, "[grs_bench] wrote perf record to %s\n", perf_record_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: perf record: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  std::vector<const runner::BenchDef*> to_run;
  if (selected.empty()) usage("no bench selected; use --list or 'all'");
  if (selected.size() == 1 && selected[0] == "all") {
    to_run = runner::all_benches();
  } else {
    for (const std::string& name : selected) {
      if (name == "all") usage("'all' cannot be combined with bench names");
      const runner::BenchDef* b = runner::find_bench(name);
      if (b == nullptr) usage("unknown bench '" + name + "'");
      // Dedupe: a bench named twice would write duplicate sink rows.
      if (std::find(to_run.begin(), to_run.end(), b) == to_run.end()) to_run.push_back(b);
    }
  }

  // Per-point trace/timeline files are derived from one base path; with
  // several benches the later ones would silently overwrite the earlier.
  if (opts.obs_enabled() && to_run.size() > 1)
    usage("--trace/--timeline apply to a single bench (got " +
          std::to_string(to_run.size()) + "); run benches separately");

  std::ofstream csv_file, json_file;
  std::vector<std::unique_ptr<runner::ResultSink>> sinks;
  if (!opts.out_csv.empty()) {
    csv_file.open(opts.out_csv);
    if (!csv_file) usage("cannot open " + opts.out_csv);
    sinks.push_back(std::make_unique<runner::CsvSink>(csv_file));
  }
  if (!opts.out_json.empty()) {
    json_file.open(opts.out_json);
    if (!json_file) usage("cannot open " + opts.out_json);
    sinks.push_back(std::make_unique<runner::JsonSink>(json_file));
  }
  if (table) sinks.push_back(std::make_unique<runner::ConsoleTableSink>());

  cache::CacheStats cache_total;
  prof::HostProfiler prof_total;  // one merged profile across all benches
  runner::RunManifest manifest("grs_bench");
  for (auto& s : sinks) s->begin();
  for (const runner::BenchDef* b : to_run) {
    runner::SweepSpec spec = b->build();
    spec.filter_kernels(opts.filter);
    if (exec_mode_set)
      for (runner::SweepPoint& p : spec.points) p.config.exec_mode = exec_mode;

    runner::RunOptions options = opts.run_options(&cache_total, &prof_total);
    runner::ProgressTicker ticker("[grs_bench]");
    if (opts.progress)
      options.progress = [&ticker](std::size_t done, std::size_t total) {
        ticker.update(done, total);
      };
    const WallTimer timer;
    std::vector<runner::SweepRow> rows;
    try {
      rows = runner::run_sweep(spec, options);
    } catch (const std::exception& e) {
      // A cache-verify byte diff (or cache/obs I/O failure) is a hard,
      // diagnosed failure, not a crash.
      ticker.finish();
      std::fprintf(stderr, "error: %s bench: %s\n", b->name.c_str(), e.what());
      for (auto& s : sinks) s->end();
      return 2;
    }
    const double secs = timer.seconds();
    ticker.finish();
    std::fprintf(stderr, "[grs_bench] %s: %zu points in %.2fs\n", b->name.c_str(),
                 rows.size(), secs);
    if (!opts.manifest_path.empty()) {
      const unsigned threads = opts.threads == 0 ? runner::ThreadPool::default_threads()
                                                 : opts.threads;
      manifest.add_sweep(
          b->name, rows, secs,
          static_cast<unsigned>(std::min<std::size_t>(threads, std::max<std::size_t>(
                                                                   rows.size(), 1))));
    }

    for (const runner::SweepRow& row : rows)
      for (auto& s : sinks) s->add(b->name, row);
    // Presenters may do I/O (the study writes its report files): fail with a
    // diagnostic exit like every other error path, not std::terminate —
    // after finalizing the sinks so --out/--json files stay well-formed
    // (every collected row is already in them).
    try {
      if (!quiet && b->present) b->present(runner::BenchView(rows));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s bench: %s\n", b->name.c_str(), e.what());
      for (auto& s : sinks) s->end();
      return 2;
    }
  }
  for (auto& s : sinks) s->end();
  // Cache-enabled runs always get the summary line (--cache-stats is kept as
  // an accepted no-op for older scripts).
  if (opts.cache_enabled())
    std::fprintf(stderr, "[grs_bench] cache: %s\n", cache_total.summary().c_str());
  if (opts.prof_enabled()) {
    try {
      prof::write_prof_outputs(prof_total, opts.prof_path, opts.prof_folded_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (!opts.manifest_path.empty()) {
    if (opts.cache_enabled()) manifest.set_cache_stats(cache_total);
    try {
      manifest.write(opts.manifest_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  return 0;
}
