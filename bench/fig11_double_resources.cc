// Figure 11: sharing vs a baseline with twice the physical resource.
//   (a) Shared-OWF-Unroll-Dyn @32K registers vs Unshared-LRR @64K registers
//   (b) Shared-OWF @16KB scratchpad vs Unshared-LRR @32KB scratchpad
//
// The paper's point: sharing recovers a useful fraction of what doubling the
// physical resource would buy — for free. (Absolute IPC, like the paper's
// Fig. 11, not % improvement.)
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

int main() {
  {
    GpuConfig doubled = configs::unshared();
    doubled.registers_per_sm = 65536;
    const GpuConfig shared = configs::shared_owf_unroll_dyn(Resource::kRegisters);
    TextTable t({"application", "Unshared-LRR-Reg#65536", "Shared-OWF-Unroll-Dyn-Reg#32768"});
    for (const KernelInfo& k : workloads::set1()) {
      t.add_row({k.name, TextTable::fmt(simulate(doubled, k).stats.ipc()),
                 TextTable::fmt(simulate(shared, k).stats.ipc())});
    }
    t.print("Fig 11(a): IPC, double registers vs register sharing");
  }
  {
    GpuConfig doubled = configs::unshared();
    doubled.scratchpad_per_sm = 32 * 1024;
    const GpuConfig shared = configs::shared_owf(Resource::kScratchpad);
    TextTable t({"application", "Unshared-LRR-ShMem#32K", "Shared-OWF-ShMem#16K"});
    for (const KernelInfo& k : workloads::set2()) {
      t.add_row({k.name, TextTable::fmt(simulate(doubled, k).stats.ipc()),
                 TextTable::fmt(simulate(shared, k).stats.ipc())});
    }
    t.print("Fig 11(b): IPC, double scratchpad vs scratchpad sharing");
  }
  return 0;
}
