// Figure 11: sharing vs a baseline with twice the physical resource.
//   (a) Shared-OWF-Unroll-Dyn @32K registers vs Unshared-LRR @64K registers
//   (b) Shared-OWF @16KB scratchpad vs Unshared-LRR @32KB scratchpad
//
// The paper's point: sharing recovers a useful fraction of what doubling the
// physical resource would buy — for free. (Absolute IPC, like the paper's
// Fig. 11, not % improvement.)
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

constexpr const char* kDoubleRegs = "Unshared-LRR-Reg#65536";
constexpr const char* kSharedRegs = "Shared-OWF-Unroll-Dyn-Reg#32768";
constexpr const char* kDoubleSmem = "Unshared-LRR-ShMem#32K";
constexpr const char* kSharedSmem = "Shared-OWF-ShMem#16K";

runner::SweepSpec build() {
  runner::SweepSpec s;
  GpuConfig doubled_regs = configs::unshared();
  doubled_regs.registers_per_sm = 65536;
  s.add_grid({{kDoubleRegs, doubled_regs},
              {kSharedRegs, configs::shared_owf_unroll_dyn(Resource::kRegisters)}},
             workloads::set1());
  GpuConfig doubled_smem = configs::unshared();
  doubled_smem.scratchpad_per_sm = 32 * 1024;
  s.add_grid({{kDoubleSmem, doubled_smem},
              {kSharedSmem, configs::shared_owf(Resource::kScratchpad)}},
             workloads::set2());
  return s;
}

void panel(const runner::BenchView& v, const std::vector<KernelInfo>& kernels,
           const char* doubled_label, const char* shared_label, const char* caption) {
  TextTable t({"application", doubled_label, shared_label});
  for (const KernelInfo& k : kernels) {
    const SimResult* doubled = v.find(doubled_label, k.name);
    const SimResult* shared = v.find(shared_label, k.name);
    if (doubled == nullptr || shared == nullptr) continue;
    t.add_row({k.name, TextTable::fmt(doubled->stats.ipc()),
               TextTable::fmt(shared->stats.ipc())});
  }
  t.print(caption);
}

void present(const runner::BenchView& v) {
  panel(v, workloads::set1(), kDoubleRegs, kSharedRegs,
        "Fig 11(a): IPC, double registers vs register sharing");
  panel(v, workloads::set2(), kDoubleSmem, kSharedSmem,
        "Fig 11(b): IPC, double scratchpad vs scratchpad sharing");
}

const runner::BenchRegistrar reg{
    {"fig11", "sharing vs doubling the physical resource", build, present}};

}  // namespace
}  // namespace grs
