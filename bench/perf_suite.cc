#include "perf_suite.h"

#include "common/check.h"
#include "common/config.h"
#include "runner/kernel_source.h"
#include "runner/registry.h"

namespace grs {

std::vector<prof::PerfSuitePoint> default_perf_suite() {
  std::vector<prof::PerfSuitePoint> suite;

  // The headline bench, restricted to its flagship kernel.
  {
    const runner::BenchDef* fig8 = runner::find_bench("fig8");
    GRS_CHECK_MSG(fig8 != nullptr, "perf suite: fig8 bench not registered");
    prof::PerfSuitePoint p;
    p.name = "fig8:hotspot";
    p.spec = fig8->build();
    p.spec.filter_kernels("hotspot");
    GRS_CHECK_MSG(!p.spec.empty(), "perf suite: fig8 has no hotspot points");
    suite.push_back(std::move(p));
  }

  // One sharing-study cell: a canonical-tag generated kernel, unshared vs
  // the register-sharing line (the study engine's hot path).
  {
    const KernelInfo k = runner::resolve_kernel("gen:study-r44-sm0-m2-l32:1");
    prof::PerfSuitePoint p;
    p.name = "study:slice";
    const GpuConfig base = configs::unshared();
    const GpuConfig shared = configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1);
    p.spec.add(base.line_label(), base, k);
    p.spec.add(shared.line_label(), shared, k);
    suite.push_back(std::move(p));
  }

  // One saved corpus kernel, cycle vs event mode (the equivalence pair).
  {
    const KernelInfo k =
        runner::resolve_kernel(runner::default_corpus_dir() + "/staged_reduce.gkd");
    prof::PerfSuitePoint p;
    p.name = "corpus:staged_reduce";
    GpuConfig cycle = configs::unshared();
    cycle.exec_mode = ExecMode::kCycle;
    GpuConfig event = configs::unshared();
    event.exec_mode = ExecMode::kEvent;
    p.spec.add("Unshared-LRR-cycle", cycle, k);
    p.spec.add("Unshared-LRR-event", event, k);
    suite.push_back(std::move(p));
  }

  return suite;
}

}  // namespace grs
