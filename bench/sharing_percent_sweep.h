// Shared skeleton for the paper's sharing-percentage sweeps (Tables V-VIII):
// the same 0/10/30/50/70/90 % grid applied to a configurable sharing line and
// workload set, rendered as an IPC table and a resident-blocks table.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "runner/registry.h"
#include "workloads/kernel_info.h"

namespace grs::bench {

struct PercentSweep {
  /// Sharing line at threshold t, e.g. configs::shared_owf_unroll_dyn.
  GpuConfig (*factory)(Resource, double);
  Resource resource;
  /// Workload set the sweep runs over, e.g. workloads::set1.
  std::vector<KernelInfo> (*kernels)();
  const char* ipc_caption;
  const char* blocks_caption;
};

/// The sweep grid: one variant per sharing percentage x every kernel.
[[nodiscard]] runner::SweepSpec build_percent_sweep(const PercentSweep& sweep);

/// The two paper tables (IPC, resident blocks) from the collected results.
void present_percent_sweep(const PercentSweep& sweep, const runner::BenchView& view);

}  // namespace grs::bench
