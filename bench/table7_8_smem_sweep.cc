// Tables VII and VIII: effect of the sharing percentage on scratchpad sharing.
//   Table VII  — IPC at 0/10/30/50/70/90 % sharing
//   Table VIII — resident thread blocks per SM at the same points
//
// Key shapes: block counts match the paper's Table VIII exactly (e.g. lavaMD
// 2->4 only at 90%, SRAD2 5 at 90%), and SRAD1 peaks at 50% because its loop
// working range is private at t=0.5 but shared at t=0.1 (paper §VI-B.1).
#include "common/config.h"
#include "runner/registry.h"
#include "sharing_percent_sweep.h"
#include "workloads/suites.h"

namespace grs {
namespace {

const bench::PercentSweep& sweep() {
  static const bench::PercentSweep s{
      configs::shared_owf, Resource::kScratchpad, workloads::set2,
      "Table VII: IPC vs scratchpad-sharing percentage (Shared-OWF)",
      "Table VIII: resident thread blocks vs scratchpad-sharing percentage"};
  return s;
}

const runner::BenchRegistrar reg{
    {"table7_8", "scratchpad sharing: IPC and blocks vs sharing percentage",
     [] { return bench::build_percent_sweep(sweep()); },
     [](const runner::BenchView& v) { bench::present_percent_sweep(sweep(), v); }}};

}  // namespace
}  // namespace grs
