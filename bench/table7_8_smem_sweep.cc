// Tables VII and VIII: effect of the sharing percentage on scratchpad sharing.
//   Table VII  — IPC at 0/10/30/50/70/90 % sharing
//   Table VIII — resident thread blocks per SM at the same points
//
// Key shapes: block counts match the paper's Table VIII exactly (e.g. lavaMD
// 2->4 only at 90%, SRAD2 5 at 90%), and SRAD1 peaks at 50% because its loop
// working range is private at t=0.5 but shared at t=0.1 (paper §VI-B.1).
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

int main() {
  const std::vector<double> percents{0, 10, 30, 50, 70, 90};
  std::vector<std::string> header{"% sharing"};
  for (double p : percents) header.push_back(TextTable::fmt(p, 0) + "%");

  TextTable ipc(header);
  TextTable blocks(header);
  for (const KernelInfo& k : workloads::set2()) {
    std::vector<std::string> ipc_row{k.name};
    std::vector<std::string> blk_row{k.name};
    for (double p : percents) {
      const double t = 1.0 - p / 100.0;
      const SimResult r = simulate(configs::shared_owf(Resource::kScratchpad, t), k);
      ipc_row.push_back(TextTable::fmt(r.stats.ipc(), 1));
      blk_row.push_back(std::to_string(r.occupancy.total_blocks));
    }
    ipc.add_row(std::move(ipc_row));
    blocks.add_row(std::move(blk_row));
  }
  ipc.print("Table VII: IPC vs scratchpad-sharing percentage (Shared-OWF)");
  blocks.print("Table VIII: resident thread blocks vs scratchpad-sharing percentage");
  return 0;
}
