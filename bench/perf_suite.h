// The pinned perf suite behind `grs_bench --perf-record` (prof/perf_record.h
// runs it). Lives in bench/ because it draws the fig8 grid from the bench
// registry, which only links into grs_bench.
#pragma once

#include <vector>

#include "prof/perf_record.h"

namespace grs {

/// Three suite points, chosen to stay CI-sized while covering the hot paths:
///  * "fig8:hotspot"  — the headline bench restricted to the hotspot kernel
///                      (sharing runtime, OWF scheduling, event mode);
///  * "study:slice"   — one sharing-study generator cell, unshared vs shared
///                      (generated-kernel path);
///  * "corpus:staged_reduce" — one saved .gkd kernel, cycle + event modes
///                      (the mode-equivalence pair the fuzz oracle checks).
/// Changing this suite invalidates every committed baseline's `cycles`
/// anchor — refresh bench/baselines/ in the same commit
/// (docs/perf-tracking.md).
[[nodiscard]] std::vector<prof::PerfSuitePoint> default_perf_suite();

}  // namespace grs
