// Figure 9: optimization ablation and cycle accounting.
//   (a) register sharing: Shared-LRR-NoOpt / +Unroll / +Unroll-Dyn /
//       Shared-OWF-Unroll-Dyn, as % IPC improvement over Unshared-LRR (Set-1)
//   (b) scratchpad sharing: Shared-LRR-NoOpt / Shared-OWF (Set-2)
//   (c) % decrease in stall and idle cycles, register sharing (Set-1)
//   (d) % decrease in stall and idle cycles, scratchpad sharing (Set-2)
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

int main() {
  // ---- (a) register-sharing ablation --------------------------------------
  {
    TextTable t({"application", "Shared-LRR-NoOpt", "Shared-LRR-Unroll",
                 "Shared-LRR-Unroll-Dyn", "Shared-OWF-Unroll-Dyn"});
    for (const KernelInfo& k : workloads::set1()) {
      const double base = simulate(configs::unshared(), k).stats.ipc();
      std::vector<std::string> row{k.name};
      for (const GpuConfig& c : {configs::shared_noopt(Resource::kRegisters),
                                 configs::shared_unroll(Resource::kRegisters),
                                 configs::shared_unroll_dyn(Resource::kRegisters),
                                 configs::shared_owf_unroll_dyn(Resource::kRegisters)}) {
        row.push_back(TextTable::pct(
            percent_improvement(base, simulate(c, k).stats.ipc())));
      }
      t.add_row(std::move(row));
    }
    t.print("Fig 9(a): register-sharing optimization ablation (vs Unshared-LRR)");
  }

  // ---- (b) scratchpad-sharing ablation -------------------------------------
  {
    TextTable t({"application", "Shared-LRR-NoOpt", "Shared-OWF"});
    for (const KernelInfo& k : workloads::set2()) {
      const double base = simulate(configs::unshared(), k).stats.ipc();
      t.add_row({k.name,
                 TextTable::pct(percent_improvement(
                     base, simulate(configs::shared_noopt(Resource::kScratchpad), k)
                               .stats.ipc())),
                 TextTable::pct(percent_improvement(
                     base,
                     simulate(configs::shared_owf(Resource::kScratchpad), k).stats.ipc()))});
    }
    t.print("Fig 9(b): scratchpad-sharing optimization ablation (vs Unshared-LRR)");
  }

  // ---- (c)/(d) stall & idle cycle decrease ---------------------------------
  auto cycle_table = [](const std::vector<KernelInfo>& kernels, const GpuConfig& shared,
                        const char* caption) {
    TextTable t({"application", "stall decrease", "idle decrease"});
    for (const KernelInfo& k : kernels) {
      const SimResult b = simulate(configs::unshared(), k);
      const SimResult s = simulate(shared, k);
      t.add_row({k.name,
                 TextTable::pct(percent_decrease(
                     static_cast<double>(b.stats.sm_total.stall_cycles),
                     static_cast<double>(s.stats.sm_total.stall_cycles))),
                 TextTable::pct(percent_decrease(
                     static_cast<double>(b.stats.sm_total.idle_cycles),
                     static_cast<double>(s.stats.sm_total.idle_cycles)))});
    }
    t.print(caption);
  };
  cycle_table(workloads::set1(), configs::shared_owf_unroll_dyn(Resource::kRegisters),
              "Fig 9(c): cycle decrease, register sharing");
  cycle_table(workloads::set2(), configs::shared_owf(Resource::kScratchpad),
              "Fig 9(d): cycle decrease, scratchpad sharing");
  return 0;
}
