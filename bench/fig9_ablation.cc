// Figure 9: optimization ablation and cycle accounting.
//   (a) register sharing: Shared-LRR-NoOpt / +Unroll / +Unroll-Dyn /
//       Shared-OWF-Unroll-Dyn, as % IPC improvement over Unshared-LRR (Set-1)
//   (b) scratchpad sharing: Shared-LRR-NoOpt / Shared-OWF (Set-2)
//   (c) % decrease in stall and idle cycles, register sharing (Set-1)
//   (d) % decrease in stall and idle cycles, scratchpad sharing (Set-2)
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

std::vector<runner::ConfigVariant> reg_variants() {
  return {runner::ConfigVariant::of(configs::shared_noopt(Resource::kRegisters)),
          runner::ConfigVariant::of(configs::shared_unroll(Resource::kRegisters)),
          runner::ConfigVariant::of(configs::shared_unroll_dyn(Resource::kRegisters)),
          runner::ConfigVariant::of(configs::shared_owf_unroll_dyn(Resource::kRegisters))};
}

std::vector<runner::ConfigVariant> smem_variants() {
  return {runner::ConfigVariant::of(configs::shared_noopt(Resource::kScratchpad)),
          runner::ConfigVariant::of(configs::shared_owf(Resource::kScratchpad))};
}

runner::SweepSpec build() {
  runner::SweepSpec s;
  auto set1 = reg_variants();
  set1.insert(set1.begin(), runner::ConfigVariant::of(configs::unshared()));
  s.add_grid(set1, workloads::set1());
  auto set2 = smem_variants();
  set2.insert(set2.begin(), runner::ConfigVariant::of(configs::unshared()));
  s.add_grid(set2, workloads::set2());
  return s;
}

void ablation_table(const runner::BenchView& v, const std::vector<KernelInfo>& kernels,
                    const std::vector<std::string>& columns,
                    const std::vector<runner::ConfigVariant>& variants, const char* caption) {
  std::vector<std::string> header{"application"};
  header.insert(header.end(), columns.begin(), columns.end());
  TextTable t(header);
  for (const KernelInfo& k : kernels) {
    const SimResult* base = v.find("Unshared-LRR", k.name);
    if (base == nullptr) continue;
    std::vector<std::string> row{k.name};
    for (const runner::ConfigVariant& var : variants) {
      const SimResult* r = v.find(var.label, k.name);
      if (r == nullptr) continue;
      row.push_back(TextTable::pct(percent_improvement(base->stats.ipc(), r->stats.ipc())));
    }
    if (row.size() == header.size()) t.add_row(std::move(row));
  }
  t.print(caption);
}

void cycle_table(const runner::BenchView& v, const std::vector<KernelInfo>& kernels,
                 const std::string& shared_label, const char* caption) {
  TextTable t({"application", "stall decrease", "idle decrease"});
  for (const KernelInfo& k : kernels) {
    const SimResult* b = v.find("Unshared-LRR", k.name);
    const SimResult* s = v.find(shared_label, k.name);
    if (b == nullptr || s == nullptr) continue;
    t.add_row({k.name,
               TextTable::pct(percent_decrease(
                   static_cast<double>(b->stats.sm_total.stall_cycles),
                   static_cast<double>(s->stats.sm_total.stall_cycles))),
               TextTable::pct(percent_decrease(
                   static_cast<double>(b->stats.sm_total.idle_cycles),
                   static_cast<double>(s->stats.sm_total.idle_cycles)))});
  }
  t.print(caption);
}

void present(const runner::BenchView& v) {
  ablation_table(v, workloads::set1(),
                 {"Shared-LRR-NoOpt", "Shared-LRR-Unroll", "Shared-LRR-Unroll-Dyn",
                  "Shared-OWF-Unroll-Dyn"},
                 reg_variants(),
                 "Fig 9(a): register-sharing optimization ablation (vs Unshared-LRR)");
  ablation_table(v, workloads::set2(), {"Shared-LRR-NoOpt", "Shared-OWF"}, smem_variants(),
                 "Fig 9(b): scratchpad-sharing optimization ablation (vs Unshared-LRR)");
  cycle_table(v, workloads::set1(),
              configs::shared_owf_unroll_dyn(Resource::kRegisters).line_label(),
              "Fig 9(c): cycle decrease, register sharing");
  cycle_table(v, workloads::set2(), configs::shared_owf(Resource::kScratchpad).line_label(),
              "Fig 9(d): cycle decrease, scratchpad sharing");
}

const runner::BenchRegistrar reg{
    {"fig9", "optimization ablation and stall/idle cycle accounting", build, present}};

}  // namespace
}  // namespace grs
