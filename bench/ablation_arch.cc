// Architecture ablations for the design choices DESIGN.md calls out: how the
// headline result (hotspot + lavaMD at 90% sharing) depends on the
// micro-architectural knobs that are substitutions for GPGPU-Sim detail.
// Not a paper figure — this quantifies the sensitivity of the reproduction.
#include <cstdio>
#include <functional>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

double gain(const KernelInfo& k, const std::function<void(GpuConfig&)>& tweak) {
  const Resource res = k.set == "set2" ? Resource::kScratchpad : Resource::kRegisters;
  GpuConfig base = configs::unshared();
  GpuConfig shared = k.set == "set2" ? configs::shared_owf(res)
                                     : configs::shared_owf_unroll_dyn(res);
  tweak(base);
  tweak(shared);
  return percent_improvement(simulate(base, k).stats.ipc(),
                             simulate(shared, k).stats.ipc());
}

void sweep(const char* caption, const std::vector<std::string>& labels,
           const std::vector<std::function<void(GpuConfig&)>>& tweaks) {
  std::vector<std::string> header{"sharing gain"};
  for (const auto& l : labels) header.push_back(l);
  TextTable t(header);
  for (const char* name : {"hotspot", "lavaMD", "MUM"}) {
    const KernelInfo k = workloads::by_name(name);
    std::vector<std::string> row{name};
    for (const auto& tw : tweaks) row.push_back(TextTable::pct(gain(k, tw)));
    t.add_row(std::move(row));
  }
  t.print(caption);
}

}  // namespace

int main() {
  sweep("Ablation: L1 MSHR entries (memory-level parallelism ceiling)",
        {"16", "32", "64 (default)", "128"},
        {[](GpuConfig& c) { c.l1.mshr_entries = 16; },
         [](GpuConfig& c) { c.l1.mshr_entries = 32; },
         [](GpuConfig& c) { c.l1.mshr_entries = 64; },
         [](GpuConfig& c) { c.l1.mshr_entries = 128; }});

  sweep("Ablation: DRAM row window (FR-FCFS approximation depth)",
        {"1 (open-row only)", "4 (default)", "16"},
        {[](GpuConfig& c) { c.dram.row_window = 1; },
         [](GpuConfig& c) { c.dram.row_window = 4; },
         [](GpuConfig& c) { c.dram.row_window = 16; }});

  sweep("Ablation: LSU queue depth",
        {"24", "48", "96 (default)"},
        {[](GpuConfig& c) { c.lsu_max_inflight = 24; },
         [](GpuConfig& c) { c.lsu_max_inflight = 48; },
         [](GpuConfig& c) { c.lsu_max_inflight = 96; }});

  sweep("Ablation: Dyn monitoring period (paper fixed 1000)",
        {"250", "1000 (paper)", "4000"},
        {[](GpuConfig& c) { c.sharing.dyn_period = 250; },
         [](GpuConfig& c) { c.sharing.dyn_period = 1000; },
         [](GpuConfig& c) { c.sharing.dyn_period = 4000; }});

  sweep("Ablation: Dyn step p (paper fixed 0.1)",
        {"0.05", "0.1 (paper)", "0.5"},
        {[](GpuConfig& c) { c.sharing.dyn_step = 0.05; },
         [](GpuConfig& c) { c.sharing.dyn_step = 0.1; },
         [](GpuConfig& c) { c.sharing.dyn_step = 0.5; }});
  return 0;
}
