// Architecture ablations for the design choices DESIGN.md calls out: how the
// headline result (hotspot + lavaMD at 90% sharing) depends on the
// micro-architectural knobs that are substitutions for GPGPU-Sim detail.
// Not a paper figure — this quantifies the sensitivity of the reproduction.
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

struct Tweak {
  const char* label;
  void (*apply)(GpuConfig&);
};

struct Group {
  const char* key;  ///< variant-label prefix, must be unique across groups
  const char* caption;
  std::vector<Tweak> tweaks;
};

const std::vector<Group>& groups() {
  static const std::vector<Group> gs = {
      {"mshr",
       "Ablation: L1 MSHR entries (memory-level parallelism ceiling)",
       {{"16", [](GpuConfig& c) { c.l1.mshr_entries = 16; }},
        {"32", [](GpuConfig& c) { c.l1.mshr_entries = 32; }},
        {"64 (default)", [](GpuConfig& c) { c.l1.mshr_entries = 64; }},
        {"128", [](GpuConfig& c) { c.l1.mshr_entries = 128; }}}},
      {"row_window",
       "Ablation: DRAM row window (FR-FCFS approximation depth)",
       {{"1 (open-row only)", [](GpuConfig& c) { c.dram.row_window = 1; }},
        {"4 (default)", [](GpuConfig& c) { c.dram.row_window = 4; }},
        {"16", [](GpuConfig& c) { c.dram.row_window = 16; }}}},
      {"lsu",
       "Ablation: LSU queue depth",
       {{"24", [](GpuConfig& c) { c.lsu_max_inflight = 24; }},
        {"48", [](GpuConfig& c) { c.lsu_max_inflight = 48; }},
        {"96 (default)", [](GpuConfig& c) { c.lsu_max_inflight = 96; }}}},
      {"dyn_period",
       "Ablation: Dyn monitoring period (paper fixed 1000)",
       {{"250", [](GpuConfig& c) { c.sharing.dyn_period = 250; }},
        {"1000 (paper)", [](GpuConfig& c) { c.sharing.dyn_period = 1000; }},
        {"4000", [](GpuConfig& c) { c.sharing.dyn_period = 4000; }}}},
      {"dyn_step",
       "Ablation: Dyn step p (paper fixed 0.1)",
       {{"0.05", [](GpuConfig& c) { c.sharing.dyn_step = 0.05; }},
        {"0.1 (paper)", [](GpuConfig& c) { c.sharing.dyn_step = 0.1; }},
        {"0.5", [](GpuConfig& c) { c.sharing.dyn_step = 0.5; }}}}};
  return gs;
}

const std::vector<const char*>& kernel_names() {
  static const std::vector<const char*> names = {"hotspot", "lavaMD", "MUM"};
  return names;
}

std::string variant_label(const Group& g, const Tweak& t, bool shared) {
  return std::string(g.key) + "/" + t.label + (shared ? "/shared" : "/base");
}

runner::SweepSpec build() {
  runner::SweepSpec s;
  for (const Group& g : groups()) {
    for (const Tweak& t : g.tweaks) {
      for (const char* name : kernel_names()) {
        const KernelInfo k = workloads::by_name(name);
        const Resource res =
            k.set == "set2" ? Resource::kScratchpad : Resource::kRegisters;
        GpuConfig base = configs::unshared();
        GpuConfig shared = k.set == "set2" ? configs::shared_owf(res)
                                           : configs::shared_owf_unroll_dyn(res);
        t.apply(base);
        t.apply(shared);
        s.add(variant_label(g, t, /*shared=*/false), base, k);
        s.add(variant_label(g, t, /*shared=*/true), shared, k);
      }
    }
  }
  return s;
}

void present(const runner::BenchView& v) {
  for (const Group& g : groups()) {
    std::vector<std::string> header{"sharing gain"};
    for (const Tweak& t : g.tweaks) header.push_back(t.label);
    TextTable table(header);
    for (const char* name : kernel_names()) {
      std::vector<std::string> row{name};
      for (const Tweak& t : g.tweaks) {
        const SimResult* base = v.find(variant_label(g, t, /*shared=*/false), name);
        const SimResult* shared = v.find(variant_label(g, t, /*shared=*/true), name);
        if (base == nullptr || shared == nullptr) break;
        row.push_back(TextTable::pct(
            percent_improvement(base->stats.ipc(), shared->stats.ipc())));
      }
      if (row.size() == header.size()) table.add_row(std::move(row));
    }
    table.print(g.caption);
  }
}

const runner::BenchRegistrar reg{
    {"ablation_arch", "sensitivity of the headline result to model knobs", build, present}};

}  // namespace
}  // namespace grs
