// Figure 12: Set-3 kernels — limited by threads or blocks, not by a
// shareable resource. The sharing runtime must leave them untouched:
//   Shared-LRR(-Unroll-Dyn) == Unshared-LRR   (bit-identical cycle counts)
//   Shared-GTO(-Unroll-Dyn) == Unshared-GTO
//   Shared-OWF(-Unroll-Dyn) ~= Unshared-GTO   (OWF over all-unshared warps
//                                              degenerates to GTO order)
//   (a) register-sharing runtime enabled   (b) scratchpad-sharing runtime
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

GpuConfig shared_with(Resource res, bool with_reg_opts, SchedulerKind sched) {
  GpuConfig c =
      with_reg_opts ? configs::shared_unroll_dyn(res) : configs::shared_noopt(res);
  c.scheduler = sched;
  return c;
}

GpuConfig owf_config(Resource res, bool with_reg_opts) {
  return with_reg_opts ? configs::shared_owf_unroll_dyn(res) : configs::shared_owf(res);
}

runner::SweepSpec build() {
  runner::SweepSpec s;
  s.add_grid({runner::ConfigVariant::of(configs::unshared(SchedulerKind::kLrr)),
              runner::ConfigVariant::of(configs::unshared(SchedulerKind::kGto))},
             workloads::set3());
  for (const auto& [res, opts] :
       {std::pair<Resource, bool>{Resource::kRegisters, true},
        std::pair<Resource, bool>{Resource::kScratchpad, false}}) {
    s.add_grid({runner::ConfigVariant::of(shared_with(res, opts, SchedulerKind::kLrr)),
                runner::ConfigVariant::of(shared_with(res, opts, SchedulerKind::kGto)),
                runner::ConfigVariant::of(owf_config(res, opts))},
               workloads::set3());
  }
  return s;
}

void panel(const runner::BenchView& v, Resource res, bool with_reg_opts,
           const char* caption) {
  TextTable t({"application", "Unshared-LRR", "Shared-LRR", "Unshared-GTO", "Shared-GTO",
               "Shared-OWF"});
  for (const KernelInfo& k : workloads::set3()) {
    std::vector<const SimResult*> cells = {
        v.find("Unshared-LRR", k.name),
        v.find(shared_with(res, with_reg_opts, SchedulerKind::kLrr).line_label(), k.name),
        v.find("Unshared-GTO", k.name),
        v.find(shared_with(res, with_reg_opts, SchedulerKind::kGto).line_label(), k.name),
        v.find(owf_config(res, with_reg_opts).line_label(), k.name)};
    std::vector<std::string> row{k.name};
    for (const SimResult* r : cells) {
      if (r == nullptr) break;
      row.push_back(TextTable::fmt(r->stats.ipc()));
    }
    if (row.size() == 6) t.add_row(std::move(row));
  }
  t.print(caption);
}

void present(const runner::BenchView& v) {
  panel(v, Resource::kRegisters, /*with_reg_opts=*/true,
        "Fig 12(a): Set-3 under the register-sharing runtime");
  panel(v, Resource::kScratchpad, /*with_reg_opts=*/false,
        "Fig 12(b): Set-3 under the scratchpad-sharing runtime");
}

const runner::BenchRegistrar reg{
    {"fig12", "Set-3 kernels: the sharing runtime leaves them untouched", build, present}};

}  // namespace
}  // namespace grs
