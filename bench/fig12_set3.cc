// Figure 12: Set-3 kernels — limited by threads or blocks, not by a
// shareable resource. The sharing runtime must leave them untouched:
//   Shared-LRR(-Unroll-Dyn) == Unshared-LRR   (bit-identical cycle counts)
//   Shared-GTO(-Unroll-Dyn) == Unshared-GTO
//   Shared-OWF(-Unroll-Dyn) ~= Unshared-GTO   (OWF over all-unshared warps
//                                              degenerates to GTO order)
//   (a) register-sharing runtime enabled   (b) scratchpad-sharing runtime
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

void panel(Resource res, bool with_reg_opts, const char* caption) {
  TextTable t({"application", "Unshared-LRR", "Shared-LRR", "Unshared-GTO", "Shared-GTO",
               "Shared-OWF"});
  for (const KernelInfo& k : workloads::set3()) {
    auto shared_with = [&](SchedulerKind sched) {
      GpuConfig c = with_reg_opts ? configs::shared_unroll_dyn(res)
                                  : configs::shared_noopt(res);
      c.scheduler = sched;
      return simulate(c, k).stats.ipc();
    };
    GpuConfig owf = with_reg_opts ? configs::shared_owf_unroll_dyn(res)
                                  : configs::shared_owf(res);
    t.add_row({k.name,
               TextTable::fmt(simulate(configs::unshared(SchedulerKind::kLrr), k).stats.ipc()),
               TextTable::fmt(shared_with(SchedulerKind::kLrr)),
               TextTable::fmt(simulate(configs::unshared(SchedulerKind::kGto), k).stats.ipc()),
               TextTable::fmt(shared_with(SchedulerKind::kGto)),
               TextTable::fmt(simulate(owf, k).stats.ipc())});
  }
  t.print(caption);
}

}  // namespace

int main() {
  panel(Resource::kRegisters, /*with_reg_opts=*/true,
        "Fig 12(a): Set-3 under the register-sharing runtime");
  panel(Resource::kScratchpad, /*with_reg_opts=*/false,
        "Fig 12(b): Set-3 under the scratchpad-sharing runtime");
  return 0;
}
