// Figure 8: the headline result.
//   (a) resident thread blocks, Unshared-LRR vs Shared-OWF-Unroll-Dyn (Set-1)
//   (b) resident thread blocks, Unshared-LRR vs Shared-OWF (Set-2)
//   (c) % IPC improvement of register sharing over Unshared-LRR (Set-1)
//   (d) % IPC improvement of scratchpad sharing over Unshared-LRR (Set-2)
//
// Sharing threshold t = 0.1 (90% sharing), the paper's default.
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

void run_set(const std::vector<KernelInfo>& kernels, const GpuConfig& shared_cfg,
             const char* blocks_caption, const char* ipc_caption) {
  TextTable blocks({"application", "Unshared-LRR", shared_cfg.line_label().c_str()});
  TextTable ipc({"application", "baseline IPC", "shared IPC", "improvement"});
  for (const KernelInfo& k : kernels) {
    const SimResult base = simulate(configs::unshared(), k);
    const SimResult shared = simulate(shared_cfg, k);
    blocks.add_row({k.name, std::to_string(base.occupancy.total_blocks),
                    std::to_string(shared.occupancy.total_blocks)});
    ipc.add_row({k.name, TextTable::fmt(base.stats.ipc()),
                 TextTable::fmt(shared.stats.ipc()),
                 TextTable::pct(percent_improvement(base.stats.ipc(), shared.stats.ipc()))});
  }
  blocks.print(blocks_caption);
  ipc.print(ipc_caption);
}

}  // namespace

int main() {
  run_set(workloads::set1(), configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1),
          "Fig 8(a): resident blocks, register sharing",
          "Fig 8(c): IPC improvement, register sharing (Shared-OWF-Unroll-Dyn)");
  run_set(workloads::set2(), configs::shared_owf(Resource::kScratchpad, 0.1),
          "Fig 8(b): resident blocks, scratchpad sharing",
          "Fig 8(d): IPC improvement, scratchpad sharing (Shared-OWF)");
  return 0;
}
