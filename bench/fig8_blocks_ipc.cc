// Figure 8: the headline result.
//   (a) resident thread blocks, Unshared-LRR vs Shared-OWF-Unroll-Dyn (Set-1)
//   (b) resident thread blocks, Unshared-LRR vs Shared-OWF (Set-2)
//   (c) % IPC improvement of register sharing over Unshared-LRR (Set-1)
//   (d) % IPC improvement of scratchpad sharing over Unshared-LRR (Set-2)
//
// Sharing threshold t = 0.1 (90% sharing), the paper's default.
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

GpuConfig shared_reg() { return configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1); }
GpuConfig shared_smem() { return configs::shared_owf(Resource::kScratchpad, 0.1); }

runner::SweepSpec build() {
  runner::SweepSpec s;
  s.add_grid({runner::ConfigVariant::of(configs::unshared()),
              runner::ConfigVariant::of(shared_reg())},
             workloads::set1());
  s.add_grid({runner::ConfigVariant::of(configs::unshared()),
              runner::ConfigVariant::of(shared_smem())},
             workloads::set2());
  return s;
}

void present_set(const runner::BenchView& v, const std::vector<KernelInfo>& kernels,
                 const std::string& shared_label, const char* blocks_caption,
                 const char* ipc_caption) {
  TextTable blocks({"application", "Unshared-LRR", shared_label});
  TextTable ipc({"application", "baseline IPC", "shared IPC", "improvement"});
  for (const KernelInfo& k : kernels) {
    const SimResult* base = v.find("Unshared-LRR", k.name);
    const SimResult* shared = v.find(shared_label, k.name);
    if (base == nullptr || shared == nullptr) continue;
    blocks.add_row({k.name, std::to_string(base->occupancy.total_blocks),
                    std::to_string(shared->occupancy.total_blocks)});
    ipc.add_row({k.name, TextTable::fmt(base->stats.ipc()),
                 TextTable::fmt(shared->stats.ipc()),
                 TextTable::pct(percent_improvement(base->stats.ipc(), shared->stats.ipc()))});
  }
  blocks.print(blocks_caption);
  ipc.print(ipc_caption);
}

void present(const runner::BenchView& v) {
  present_set(v, workloads::set1(), shared_reg().line_label(),
              "Fig 8(a): resident blocks, register sharing",
              "Fig 8(c): IPC improvement, register sharing (Shared-OWF-Unroll-Dyn)");
  present_set(v, workloads::set2(), shared_smem().line_label(),
              "Fig 8(b): resident blocks, scratchpad sharing",
              "Fig 8(d): IPC improvement, scratchpad sharing (Shared-OWF)");
}

const runner::BenchRegistrar reg{
    {"fig8", "headline: resident blocks and IPC improvement at 90% sharing", build, present}};

}  // namespace
}  // namespace grs
