#!/usr/bin/env bash
# Measure the event-driven loop's speedup over the naive cycle loop and emit
# a bench JSON for the perf trajectory (bench/results/exec_mode_speedup.json
# is the committed snapshot). For every spec the two modes' --json outputs
# are also diffed, so a measurement run doubles as an equivalence check.
#
#   bench/measure_exec_modes.sh <grs_bench> <out.json> [bench[:filter]...]
#
# Default specs: fig1 and fig8 (the tentpole targets) plus fig8 restricted to
# its most idle-dominated (memory-bound) kernels, where cycle skipping pays
# the most.
set -euo pipefail

BIN=${1:?usage: measure_exec_modes.sh <grs_bench> <out.json> [bench[:filter]...]}
OUT=${2:?usage: measure_exec_modes.sh <grs_bench> <out.json> [bench[:filter]...]}
shift 2
SPECS=("$@")
if [ ${#SPECS[@]} -eq 0 ]; then
  SPECS=(fig1 fig8 fig8:SRAD1 fig8:stencil fig8:MUM fig8:b+tree)
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_mode() { # bench filter mode json-out -> prints seconds
  local bench=$1 filter=$2 mode=$3 json=$4
  local args=("$bench" --exec-mode "$mode" --threads 1 --quiet --json "$json")
  [ -n "$filter" ] && args+=(--filter "$filter")
  "$BIN" "${args[@]}" 2>&1 >/dev/null | sed -n 's/.* in \([0-9.]*\)s$/\1/p'
}

{
  echo "["
  first=1
  for spec in "${SPECS[@]}"; do
    bench=${spec%%:*}
    filter=""
    [ "$spec" != "$bench" ] && filter=${spec#*:}
    cycle_s=$(run_mode "$bench" "$filter" cycle "$tmp/cycle.json")
    event_s=$(run_mode "$bench" "$filter" event "$tmp/event.json")
    if ! cmp -s "$tmp/cycle.json" "$tmp/event.json"; then
      echo "error: $spec: exec modes disagree (JSON differs)" >&2
      exit 1
    fi
    points=$(grep -c '"kernel"' "$tmp/cycle.json" || true)
    [ $first -eq 0 ] && echo ","
    first=0
    awk -v b="$bench" -v f="$filter" -v p="$points" -v c="$cycle_s" -v e="$event_s" \
      'BEGIN{printf "  {\"bench\": \"%s\", \"filter\": \"%s\", \"points\": %d, \"cycle_s\": %.2f, \"event_s\": %.2f, \"speedup\": %.2f, \"identical_output\": true}", b, f, p, c, e, (e > 0) ? c / e : 1.0}'
  done
  echo ""
  echo "]"
} > "$OUT"

cat "$OUT"
