// Figure 1: motivation — resident thread blocks and resource wastage under
// the baseline (non-sharing) allocator.
//   (a) resident blocks/SM, Set-1 (register-limited)
//   (b) % of registers unutilized per SM
//   (c) resident blocks/SM, Set-2 (scratchpad-limited)
//   (d) % of scratchpad unutilized per SM
//
// These are pure occupancy results, so they reproduce the paper exactly
// (e.g. hotspot: 36 regs x 256 threads = 9216/block, ⌊32768/9216⌋ = 3 blocks,
// 5120 registers = 15.6% wasted).
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "core/occupancy.h"
#include "workloads/suites.h"

using namespace grs;

int main() {
  const GpuConfig cfg = configs::unshared();

  TextTable reg({"application", "resident blocks", "register waste %"});
  for (const KernelInfo& k : workloads::set1()) {
    const Occupancy o = compute_occupancy(cfg, k.resources);
    reg.add_row({k.name, std::to_string(o.baseline_blocks),
                 TextTable::fmt(o.baseline_waste_percent, 1)});
  }
  reg.print("Fig 1(a,b): Set-1, baseline residency and register wastage");

  TextTable smem({"application", "resident blocks", "scratchpad waste %"});
  for (const KernelInfo& k : workloads::set2()) {
    const Occupancy o = compute_occupancy(cfg, k.resources);
    smem.add_row({k.name, std::to_string(o.baseline_blocks),
                  TextTable::fmt(o.baseline_waste_percent, 1)});
  }
  smem.print("Fig 1(c,d): Set-2, baseline residency and scratchpad wastage");
  return 0;
}
