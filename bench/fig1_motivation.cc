// Figure 1: motivation — resident thread blocks and resource wastage under
// the baseline (non-sharing) allocator.
//   (a) resident blocks/SM, Set-1 (register-limited)
//   (b) % of registers unutilized per SM
//   (c) resident blocks/SM, Set-2 (scratchpad-limited)
//   (d) % of scratchpad unutilized per SM
//
// These are pure occupancy results, so they reproduce the paper exactly
// (e.g. hotspot: 36 regs x 256 threads = 9216/block, ⌊32768/9216⌋ = 3 blocks,
// 5120 registers = 15.6% wasted). No cycle-level simulation is needed: like
// hw_cost, this bench has an empty sweep grid and evaluates the closed-form
// occupancy model in its presenter.
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/occupancy.h"
#include "runner/registry.h"
#include "workloads/suites.h"

namespace grs {
namespace {

runner::SweepSpec build() { return runner::SweepSpec{}; }

void waste_table(const std::vector<KernelInfo>& kernels, const char* resource_column,
                 const char* caption) {
  const GpuConfig cfg = configs::unshared();
  TextTable t({"application", "resident blocks", resource_column});
  for (const KernelInfo& k : kernels) {
    const Occupancy o = compute_occupancy(cfg, k.resources);
    t.add_row({k.name, std::to_string(o.baseline_blocks),
               TextTable::fmt(o.baseline_waste_percent, 1)});
  }
  t.print(caption);
}

void present(const runner::BenchView&) {
  waste_table(workloads::set1(), "register waste %",
              "Fig 1(a,b): Set-1, baseline residency and register wastage");
  waste_table(workloads::set2(), "scratchpad waste %",
              "Fig 1(c,d): Set-2, baseline residency and scratchpad wastage");
}

const runner::BenchRegistrar reg{
    {"fig1", "motivation: baseline residency and resource wastage", build, present}};

}  // namespace
}  // namespace grs
