// study — the parametric sharing study: GenProfile axes (register pressure x
// staging tile x memory-boundedness x divergence) plus the saved corpus,
// swept across the register- and scratchpad-sharing lines at every paper
// sharing percentage, aggregated into the CI-locked reports under docs/study/
// (or $GRS_STUDY_DIR). See src/study/.
#include "runner/registry.h"
#include "study/study.h"

namespace grs {
namespace {

const runner::BenchRegistrar reg{
    {"study",
     "parametric GenProfile x sharing sweep; writes docs/study reports (GRS_STUDY_DIR)",
     [] { return study::build_study_spec(); },
     [](const runner::BenchView& v) { study::present_study(v, study::default_report_dir()); }}};

}  // namespace
}  // namespace grs
