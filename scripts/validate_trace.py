#!/usr/bin/env python3
"""Validate a grs --trace file against the Chrome trace-event format.

Checks the subset Perfetto/chrome://tracing require to load the file:
  * the document is valid JSON with a non-empty "traceEvents" array;
  * every event carries ph/pid/tid, and every non-metadata event a
    numeric non-negative ts ('X' events also a numeric dur);
  * timestamps are monotonically non-decreasing per (pid, tid) track
    (events are appended in hook-call order; a regression means the
    emitter's ordering contract in docs/observability.md is broken).

Usage: validate_trace.py trace.json [more.json ...]; exit 1 on any violation.
"""
import json
import sys


def validate(path: str) -> list:
    problems = []
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents missing or empty"]
    last_ts = {}
    for i, e in enumerate(events):
        where = f"{path}: event {i}"
        ph = e.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                problems.append(f"{where}: missing/non-integer {key}")
        if "name" not in e:
            problems.append(f"{where}: missing name")
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: missing/negative ts {ts!r}")
            continue
        if ph == "X" and not isinstance(e.get("dur"), (int, float)):
            problems.append(f"{where}: 'X' event without dur")
        track = (e.get("pid"), e.get("tid"))
        if ts < last_ts.get(track, 0):
            problems.append(
                f"{where}: ts {ts} regressed below {last_ts[track]} on track {track}"
            )
        last_ts[track] = max(ts, last_ts.get(track, 0))
    return problems


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            problems = validate(path)
        except (OSError, ValueError) as err:
            problems = [f"{path}: {err}"]
        for p in problems:
            print(f"error: {p}", file=sys.stderr)
        if problems:
            failed = True
        else:
            print(f"OK: {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
