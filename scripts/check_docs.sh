#!/usr/bin/env bash
# Doc-consistency check (wired into CI):
#
#   1. The committed docs/study/ pages must be byte-identical to what
#      `grs_bench study` regenerates — for --threads 1 and 8, so the check
#      also re-proves the engine's thread-count determinism on the full study.
#   2. Every `--flag` a doc shows on a grs_cli / grs_bench command line must
#      exist in that binary's --help output (no documented-but-removed flags).
#   3. Every bench registered in `grs_bench --list` must be mentioned in the
#      docs, so the CLI surface and the documentation stay in sync.
#
# Usage: scripts/check_docs.sh  (from the repo root, after building ./build)
# Override the binaries with GRS_BENCH / GRS_CLI. The two study regenerations
# share one content-addressed result cache (GRS_RESULT_CACHE_DIR, default
# build/result-cache — CI persists it between runs): the first pass fills it,
# the second must be served from lookups alone, re-proving both the engine's
# thread-count determinism and that cached rows are byte-identical to
# simulated ones. A final verify-mode pass re-simulates every warm entry and
# fails on any byte diff against the store.
set -euo pipefail

BENCH=${GRS_BENCH:-build/grs_bench}
CLI=${GRS_CLI:-build/grs_cli}
CACHE_DIR=${GRS_RESULT_CACHE_DIR:-build/result-cache}
fail=0

# --- 1. docs/study regeneration (cold then warm, one shared cache) -----------
for threads in 1 8; do
  tmp=$(mktemp -d)
  stats=$(mktemp)
  start=$(date +%s.%N)
  GRS_STUDY_DIR="$tmp" "$BENCH" study --threads "$threads" \
    --cache "$CACHE_DIR" --cache-stats >/dev/null 2>"$stats"
  elapsed=$(date +%s.%N | awk -v s="$start" '{printf "%.2f", $1 - s}')
  hits=$(grep -o '[0-9]* hits' "$stats" | awk '{print $1}' || echo 0)
  echo "study --threads $threads: ${elapsed}s, $(grep 'cache:' "$stats" | sed 's/^.*cache: //')"
  if [ "$threads" = 8 ] && [ "${hits:-0}" -eq 0 ]; then
    echo "error: warm study pass reported 0 cache hits; the result cache is not" >&2
    echo "       being consulted across regenerations" >&2
    fail=1
  fi
  rm -f "$stats"
  if ! diff -ru docs/study "$tmp"; then
    echo "error: committed docs/study differs from a --threads $threads regeneration;" >&2
    echo "       run ./build/grs_bench study and commit the result" >&2
    fail=1
  fi
  rm -rf "$tmp"
done

# --- 1b. verify mode over the whole warm store --------------------------------
tmp=$(mktemp -d)
if ! GRS_STUDY_DIR="$tmp" "$BENCH" study --threads 8 \
    --cache "$CACHE_DIR" --cache-mode verify >/dev/null; then
  echo "error: a cached study entry failed verify-mode re-simulation (byte diff" >&2
  echo "       between the store and a fresh simulate()); delete $CACHE_DIR" >&2
  fail=1
fi
rm -rf "$tmp"

# --- 2. CLI flag drift --------------------------------------------------------
cli_help=$("$CLI" --help)
bench_help=$("$BENCH" --help)
drift=$(python3 - "$cli_help" "$bench_help" README.md docs/*.md <<'EOF'
import re, sys
cli_help, bench_help = sys.argv[1], sys.argv[2]
ok = True
for path in sys.argv[3:]:
    for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
        helps = []
        if "grs_cli" in line:
            helps.append(("grs_cli", cli_help))
        if "grs_bench" in line:
            helps.append(("grs_bench", bench_help))
        if not helps:
            continue
        for flag in set(re.findall(r"--[a-z][a-z-]*", line)):
            if not any(re.search(re.escape(flag) + r"\b", h) for _, h in helps):
                names = "/".join(n for n, _ in helps)
                print(f"{path}:{lineno}: documents {names} flag {flag} "
                      f"missing from --help")
                ok = False
sys.exit(0 if ok else 1)
EOF
) || { printf '%s\n' "$drift" >&2; echo "error: documented flags drifted from --help" >&2; fail=1; }

# --- 2b. observability + profiling flags must exist in both helps -------------
# The flag-drift check above only catches flags the docs mention; this pins the
# observability/perf surface itself so it cannot be dropped from either binary.
for flag in --trace --timeline --timeline-interval --manifest \
            --prof --prof-folded --progress; do
  for tool in grs_cli grs_bench; do
    help_text=$cli_help
    [ "$tool" = grs_bench ] && help_text=$bench_help
    if ! grep -qe "^  $flag " <<<"$help_text"; then
      echo "error: $tool --help no longer documents $flag (src/runner/cli_options.cc)" >&2
      fail=1
    fi
  done
done
for flag in --perf-record --perf-reps; do
  if ! grep -qe "^  $flag " <<<"$bench_help"; then
    echo "error: grs_bench --help no longer documents $flag (bench/main.cc)" >&2
    fail=1
  fi
done

# --- 3. every registered bench is documented ----------------------------------
while read -r name _; do
  if ! grep -rqe "$name" README.md docs/*.md; then
    echo "error: bench '$name' from grs_bench --list is not mentioned in README.md or docs/" >&2
    fail=1
  fi
done < <("$BENCH" --list)

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "docs are consistent: study pages regenerate byte-identically (cached store"
echo "at $CACHE_DIR passes verify), no flag drift,"
echo "all $("$BENCH" --list | wc -l) benches documented"
