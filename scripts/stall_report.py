#!/usr/bin/env python3
"""Roll a grs --timeline CSV into a "where do the sim-cycles go" report.

Reads the per-SM counter timeline (docs/observability.md) and prints a
Markdown report: the whole-GPU issued/stall/idle split, the top-N blocked
reasons (what the candidate scans ran into), and a per-SM breakdown — the
table a human reads before deciding what to optimize, closing the loop from
raw PR 7 telemetry to the paper's habit of attributing every delta to a
named mechanism.

Cycle classes come from the issued/stall/idle columns (every scheduler-cycle
is exactly one of them). Blocked reasons (blk_*, lock_wait, dyn_throttled)
count warp-scan outcomes, not cycles, so they are reported as shares of all
blocked-warp observations.

Usage: stall_report.py timeline.csv [--top N] [--out FILE]
Exit 1 on malformed input.
"""
import argparse
import sys

REASONS = [
    ("blk_scoreboard", "scoreboard dependency"),
    ("blk_barrier", "barrier wait"),
    ("blk_mshr", "L1 MSHRs full"),
    ("blk_lsu_port", "LSU issue port"),
    ("blk_lsu_queue", "LSU queue full"),
    ("blk_sfu_port", "SFU issue port"),
    ("lock_wait", "sharing-lock wait"),
    ("dyn_throttled", "dyn-throttle gate"),
]


def parse_timeline(path):
    """Return (per_sm, gpu) dicts of summed counter columns."""
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines or not lines[0].startswith("cycle,sm,"):
        raise ValueError(f"{path}: not a grs timeline CSV")
    header = lines[0].split(",")
    idx = {name: i for i, name in enumerate(header)}
    needed = ["issued", "stall", "idle"] + [r for r, _ in REASONS]
    for name in needed:
        if name not in idx:
            raise ValueError(f"{path}: missing column {name}")

    per_sm = {}
    gpu = {name: 0 for name in needed}
    for lineno, line in enumerate(lines[1:], start=2):
        cols = line.split(",")
        if len(cols) != len(header):
            raise ValueError(f"{path}:{lineno}: ragged row")
        sm = cols[idx["sm"]]
        try:
            values = {name: int(cols[idx[name]]) for name in needed}
        except ValueError as err:
            raise ValueError(f"{path}:{lineno}: {err}") from err
        if sm == "gpu":
            for name in needed:
                gpu[name] += values[name]
        else:
            acc = per_sm.setdefault(int(sm), {name: 0 for name in needed})
            for name in needed:
                acc[name] += values[name]
    if not per_sm:
        raise ValueError(f"{path}: no sample rows")
    return per_sm, gpu


def pct(part, whole):
    return 100.0 * part / whole if whole else 0.0


def report(per_sm, gpu, top, source):
    out = []
    cycles = gpu["issued"] + gpu["stall"] + gpu["idle"]
    out.append(f"# Stall attribution — {source}")
    out.append("")
    out.append(f"Scheduler-cycles observed: {cycles} "
               f"(across {len(per_sm)} SMs; sampled windows only)")
    out.append("")
    out.append("## Whole GPU: cycle classes")
    out.append("")
    out.append("| class | cycles | share |")
    out.append("|---|---:|---:|")
    for name in ("issued", "stall", "idle"):
        out.append(f"| {name} | {gpu[name]} | {pct(gpu[name], cycles):.1f}% |")
    out.append("")

    blocked = sum(gpu[r] for r, _ in REASONS)
    out.append(f"## Whole GPU: top blocked reasons (of {blocked} blocked-warp scans)")
    out.append("")
    out.append("| reason | scans | share |")
    out.append("|---|---:|---:|")
    ranked = sorted(REASONS, key=lambda r: gpu[r[0]], reverse=True)
    for name, label in ranked[:top]:
        if gpu[name] == 0:
            continue
        out.append(f"| {label} | {gpu[name]} | {pct(gpu[name], blocked):.1f}% |")
    if blocked == 0:
        out.append("| (none observed) | 0 | - |")
    out.append("")

    out.append("## Per SM")
    out.append("")
    out.append("| sm | issued% | stall% | idle% | top blocked reason |")
    out.append("|---:|---:|---:|---:|---|")
    for sm in sorted(per_sm):
        acc = per_sm[sm]
        c = acc["issued"] + acc["stall"] + acc["idle"]
        name, label = max(REASONS, key=lambda r: acc[r[0]])
        top_txt = f"{label} ({pct(acc[name], sum(acc[r] for r, _ in REASONS)):.1f}%)" \
            if acc[name] else "-"
        out.append(
            f"| {sm} | {pct(acc['issued'], c):.1f} | {pct(acc['stall'], c):.1f} "
            f"| {pct(acc['idle'], c):.1f} | {top_txt} |"
        )
    out.append("")
    return "\n".join(out)


def main(argv):
    ap = argparse.ArgumentParser(
        description="Roll a grs --timeline CSV into a stall-attribution report."
    )
    ap.add_argument("timeline", help="timeline CSV written by --timeline")
    ap.add_argument("--top", type=int, default=5, help="top-N blocked reasons (default 5)")
    ap.add_argument("--out", help="write the Markdown here instead of stdout")
    args = ap.parse_args(argv[1:])
    try:
        per_sm, gpu = parse_timeline(args.timeline)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    md = report(per_sm, gpu, args.top, args.timeline)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(md)
        print(f"wrote {args.out}")
    else:
        print(md)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
