#!/usr/bin/env python3
"""Validate a grs --timeline CSV against its documented shape.

Checks the contract docs/observability.md states for timeline files:
  * the header is exactly the column list src/obs/timeline.cc emits;
  * rows come in boundary blocks: one row per SM (sm = 0..N-1, in order)
    followed by exactly one "gpu" sum row;
  * the cycle column is strictly increasing across boundaries and constant
    within a block;
  * per-SM rows leave the six gpu-only L2/DRAM columns empty; the gpu row
    fills them with non-negative integers;
  * the gpu row's additive counter columns equal the sum of the block's
    per-SM rows (it is a sum row, not an independent sample).

Usage: validate_timeline.py timeline.csv [more.csv ...]; exit 1 on any
violation.
"""
import sys

EXPECTED_HEADER = (
    "cycle,sm,issued,stall,idle,warp_instr,thread_instr,ipc,"
    "blk_scoreboard,blk_barrier,blk_mshr,blk_lsu_port,blk_lsu_queue,blk_sfu_port,"
    "lock_wait,dyn_throttled,lock_acquired,ownership_transfers,"
    "l1_accesses,l1_misses,resident_blocks,resident_warps,mshr_inflight,"
    "l2_accesses,l2_misses,dram_requests,dram_row_hits,l2_busy_banks,dram_busy_banks"
)
COLUMNS = EXPECTED_HEADER.split(",")
NUM_COLUMNS = len(COLUMNS)
GPU_ONLY = 6  # trailing L2/DRAM columns, empty on per-SM rows
# Additive counters the gpu row must sum exactly (ipc is a ratio, gauges and
# the gpu-only block are excluded).
SUMMED = [
    c
    for c in COLUMNS[2 : NUM_COLUMNS - GPU_ONLY]
    if c != "ipc"
]


def validate(path: str) -> list:
    problems = []
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        return [f"{path}: empty file"]
    if lines[0] != EXPECTED_HEADER:
        return [f"{path}: header mismatch (got {lines[0]!r})"]

    idx = {name: i for i, name in enumerate(COLUMNS)}
    last_cycle = 0
    block_cycle = None  # cycle of the block currently being read
    block_sms = 0
    block_sums = {c: 0 for c in SUMMED}
    expected_sms = None

    def check_block_closed(where):
        if block_cycle is not None:
            problems.append(f"{where}: boundary {block_cycle} has no gpu sum row")

    for lineno, line in enumerate(lines[1:], start=2):
        where = f"{path}:{lineno}"
        cols = line.split(",")
        if len(cols) != NUM_COLUMNS:
            problems.append(f"{where}: {len(cols)} columns, expected {NUM_COLUMNS}")
            continue
        try:
            cycle = int(cols[idx["cycle"]])
        except ValueError:
            problems.append(f"{where}: non-integer cycle {cols[0]!r}")
            continue
        sm = cols[idx["sm"]]

        if sm == "gpu":
            if block_cycle is None or cycle != block_cycle:
                problems.append(f"{where}: gpu row without preceding SM rows")
            else:
                if expected_sms is None:
                    expected_sms = block_sms
                elif block_sms != expected_sms:
                    problems.append(
                        f"{where}: boundary {cycle} has {block_sms} SM rows, "
                        f"expected {expected_sms}"
                    )
                for name in SUMMED:
                    try:
                        got = int(cols[idx[name]])
                    except ValueError:
                        problems.append(f"{where}: non-integer {name} {cols[idx[name]]!r}")
                        continue
                    if got != block_sums[name]:
                        problems.append(
                            f"{where}: gpu {name}={got} != per-SM sum {block_sums[name]}"
                        )
                for name in COLUMNS[NUM_COLUMNS - GPU_ONLY :]:
                    v = cols[idx[name]]
                    if not v.isdigit():
                        problems.append(f"{where}: gpu row {name}={v!r} not a count")
            last_cycle = cycle
            block_cycle = None
            block_sms = 0
            block_sums = {c: 0 for c in SUMMED}
            continue

        # per-SM row
        if block_cycle is None:
            if cycle <= last_cycle and last_cycle != 0:
                problems.append(
                    f"{where}: boundary {cycle} not past previous boundary {last_cycle}"
                )
            block_cycle = cycle
        elif cycle != block_cycle:
            check_block_closed(where)
            block_cycle = cycle
            block_sms = 0
            block_sums = {c: 0 for c in SUMMED}
        if not sm.isdigit() or int(sm) != block_sms:
            problems.append(f"{where}: SM id {sm!r}, expected {block_sms} (in-order block)")
        block_sms += 1
        for name in COLUMNS[NUM_COLUMNS - GPU_ONLY :]:
            if cols[idx[name]] != "":
                problems.append(f"{where}: per-SM row fills gpu-only column {name}")
        for name in SUMMED:
            try:
                block_sums[name] += int(cols[idx[name]])
            except ValueError:
                problems.append(f"{where}: non-integer {name} {cols[idx[name]]!r}")

    check_block_closed(f"{path}:EOF")
    if expected_sms is None and not problems:
        problems.append(f"{path}: no sample rows")
    return problems


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            problems = validate(path)
        except OSError as err:
            problems = [f"{path}: {err}"]
        for p in problems:
            print(f"error: {p}", file=sys.stderr)
        if problems:
            failed = True
        else:
            print(f"OK: {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
