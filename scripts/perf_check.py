#!/usr/bin/env python3
"""Diff a grs perf record against a committed baseline; fail on regression.

Both files are grs-perf-record-v1 JSON written by `grs_bench --perf-record`
(docs/perf-tracking.md). For every baseline suite point the record must
contain a same-named point, and:

  * `cycles` must match EXACTLY — always, on any host. The suite is
    bit-deterministic, so a cycles diff means the simulator's behavior
    changed and the baseline was not refreshed in the same commit: a hard
    error, never noise.
  * `wall_ms` is gated with a noise-aware threshold: a point regresses when
    new > base * (1 + rel_tol) + abs_tol_ms. Wall timings only transfer
    between identical hosts, so when the two host_fingerprint values differ
    the timing gate is ADVISORY (warnings, exit 0) unless --strict forces
    it — CI proves the checker works by diffing a record against itself
    (--strict, green) and against a synthetically slowed copy (must fail).

Usage:
  perf_check.py RECORD BASELINE [--rel-tol 0.25] [--abs-tol-ms 50] [--strict]

Exit: 0 clean/advisory, 1 regression or cycles mismatch, 2 bad input.
"""
import argparse
import json
import sys

SCHEMA = "grs-perf-record-v1"


def load_record(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        raise ValueError(f"{path}: no suite points")
    for p in points:
        for key in ("name", "wall_ms", "cycles", "sims_per_sec"):
            if key not in p:
                raise ValueError(f"{path}: point missing {key!r}")
    return doc


def main(argv):
    ap = argparse.ArgumentParser(description="Gate a perf record against a baseline.")
    ap.add_argument("record", help="freshly recorded grs-perf-record-v1 JSON")
    ap.add_argument("baseline", help="committed baseline (bench/baselines/*.json)")
    ap.add_argument("--rel-tol", type=float, default=0.25,
                    help="relative wall_ms headroom (default 0.25 = +25%%)")
    ap.add_argument("--abs-tol-ms", type=float, default=50.0,
                    help="absolute wall_ms headroom for tiny points (default 50)")
    ap.add_argument("--strict", action="store_true",
                    help="gate timings even across differing host fingerprints")
    args = ap.parse_args(argv[1:])

    try:
        record = load_record(args.record)
        baseline = load_record(args.baseline)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    rec_points = {p["name"]: p for p in record["points"]}
    same_host = record.get("host_fingerprint") == baseline.get("host_fingerprint")
    gate_timings = same_host or args.strict
    if not same_host:
        print(
            f"warning: host fingerprint differs "
            f"(record {record.get('host_fingerprint')!r} vs "
            f"baseline {baseline.get('host_fingerprint')!r}); "
            + ("--strict: gating timings anyway" if args.strict
               else "timing comparison is advisory")
        )

    failures = 0
    for base in baseline["points"]:
        name = base["name"]
        rec = rec_points.get(name)
        if rec is None:
            print(f"FAIL {name}: missing from record (suite changed? refresh the baseline)")
            failures += 1
            continue
        if rec["cycles"] != base["cycles"]:
            print(
                f"FAIL {name}: cycles {rec['cycles']} != baseline {base['cycles']} — "
                f"simulator behavior changed; refresh bench/baselines/ in this commit"
            )
            failures += 1
            continue
        limit = base["wall_ms"] * (1.0 + args.rel_tol) + args.abs_tol_ms
        delta = (rec["wall_ms"] / base["wall_ms"] - 1.0) * 100.0 if base["wall_ms"] else 0.0
        line = (
            f"{name}: {rec['wall_ms']:.1f} ms vs baseline {base['wall_ms']:.1f} ms "
            f"({delta:+.1f}%, limit {limit:.1f} ms)"
        )
        if rec["wall_ms"] > limit:
            if gate_timings:
                print(f"FAIL {line}")
                failures += 1
            else:
                print(f"warn {line} [advisory: different host]")
        else:
            print(f"ok   {line}")

    extra = set(rec_points) - {p["name"] for p in baseline["points"]}
    for name in sorted(extra):
        print(f"note {name}: new suite point not in baseline")

    if failures:
        print(f"{failures} perf check failure(s)", file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
