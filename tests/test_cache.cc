// Content-addressed result cache (src/cache), the SimResult codec it stores
// (gpu/result_codec), the config/kernel fingerprints that key it, the
// cache-aware engine paths, and the shared CLI option surface.
//
// The coverage guards near the top are deliberate tripwires: adding a field
// to GpuConfig (or its nested structs) without extending canonical_kv(), or
// to SmStats/GpuStats/Occupancy without extending result_fields(), must fail
// here rather than silently aliasing cache entries across semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/key.h"
#include "cache/result_cache.h"
#include "common/config.h"
#include "common/hash.h"
#include "gpu/result_codec.h"
#include "gpu/simulator.h"
#include "runner/cli_options.h"
#include "runner/engine.h"
#include "runner/sink.h"
#include "workloads/suites.h"

namespace grs {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty store directory under the test temp root.
std::string fresh_store(const std::string& name) {
  const std::string dir = testing::TempDir() + "/grs_cache_" + name;
  fs::remove_all(dir);
  return dir;
}

/// A small kernel that simulates in milliseconds.
KernelInfo small_kernel(std::size_t index = 0) {
  std::vector<KernelInfo> kernels = workloads::set1();
  KernelInfo k = kernels[index % kernels.size()];
  k.grid_blocks = 6;
  return k;
}

/// 2 variants x 2 kernels, shrunk like test_runner's tiny_spec.
runner::SweepSpec tiny_spec() {
  runner::SweepSpec s;
  const std::vector<runner::ConfigVariant> variants = {
      runner::ConfigVariant::of(configs::unshared()),
      runner::ConfigVariant::of(configs::shared_owf_unroll_dyn(Resource::kRegisters))};
  s.add_grid(variants, {small_kernel(0), small_kernel(1)});
  return s;
}

runner::RunOptions cached_options(const std::string& dir, cache::CacheMode mode,
                                  cache::CacheStats* stats = nullptr) {
  runner::RunOptions o;
  o.threads = 2;
  o.cache_dir = dir;
  o.cache_mode = mode;
  o.cache_stats = stats;
  return o;
}

std::string csv_of(const std::vector<runner::SweepRow>& rows) {
  std::ostringstream out;
  runner::CsvSink sink(out);
  sink.begin();
  for (const runner::SweepRow& r : rows) sink.add("cachetest", r);
  sink.end();
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << body;
}

// --- coverage guards ----------------------------------------------------------

// If any of these fail after a struct gained a field: extend
// GpuConfig::canonical_kv() / result_fields(), bump the matching schema
// version (kSimSchemaVersion for semantics, kResultCodecVersion for payload
// layout), and update the numbers here. Pointer-size gate: the sizeof values
// are for LP64; the enumeration-count guards below hold everywhere.
TEST(CodecCoverage, StructSizesMatchTheEnumeratedFields) {
  if (sizeof(void*) == 8) {
    EXPECT_EQ(sizeof(SharingConfig), 40u);
    EXPECT_EQ(sizeof(CacheConfig), 16u);
    EXPECT_EQ(sizeof(DramConfig), 48u);
    EXPECT_EQ(sizeof(GpuConfig), 224u);
    EXPECT_EQ(sizeof(SmStats), 168u);
    EXPECT_EQ(sizeof(GpuStats), 208u);
    EXPECT_EQ(sizeof(Occupancy), 40u);
    EXPECT_EQ(sizeof(SimResult), 472u);
  }
}

TEST(CodecCoverage, CanonicalKvEnumeratesEveryConfigField) {
  const std::string kv = GpuConfig{}.canonical_kv();
  EXPECT_EQ(kv.compare(0, 13, "gpu_config 1\n"), 0) << kv.substr(0, 13);
  // Header + one "key value\n" line per field: 8 Table-I + 2x4 cache +
  // 7 dram + 5 latencies + 4 structural + 8 sharing + max_cycles + exec_mode.
  const auto lines = static_cast<std::size_t>(std::count(kv.begin(), kv.end(), '\n'));
  EXPECT_EQ(lines, 43u) << kv;
  // Every line is "key value"; keys are unique.
  std::istringstream in(kv);
  std::string line;
  std::vector<std::string> keys;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    keys.push_back(line.substr(0, space));
  }
  std::vector<std::string> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end()) << "duplicate keys";
}

TEST(CodecCoverage, ResultFieldsEnumerateEveryStatistic) {
  const std::vector<ResultField>& fields = result_fields();
  EXPECT_EQ(fields.size(), 41u);
  std::size_t flat = 0, derived = 0;
  for (const ResultField& f : fields) {
    flat += f.flat ? 1 : 0;
    derived += f.derived ? 1 : 0;
    // Exactly one getter; setters present iff not derived.
    EXPECT_NE(f.get_u64 == nullptr, f.get_f64 == nullptr) << f.name;
    EXPECT_EQ(f.derived, f.set_u64 == nullptr && f.set_f64 == nullptr) << f.name;
  }
  EXPECT_EQ(flat, 17u);  // + 5 string/point columns = the 22-column flat row
  EXPECT_EQ(derived, 4u);
  EXPECT_EQ(runner::result_columns().size(), 22u);
}

// --- fingerprints ---------------------------------------------------------------

TEST(Fingerprint, IsStableAndHexShaped) {
  const GpuConfig cfg;
  const std::string fp = cfg.fingerprint();
  EXPECT_EQ(fp.size(), 64u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(fp, GpuConfig{}.fingerprint());
  EXPECT_EQ(fp, sha256_hex(cfg.canonical_kv()));
}

TEST(Fingerprint, EveryConfigFieldReachesTheKey) {
  const std::string base = GpuConfig{}.fingerprint();
  const auto differs = [&](auto mutate) {
    GpuConfig c;
    mutate(c);
    return c.fingerprint() != base;
  };
  EXPECT_TRUE(differs([](GpuConfig& c) { c.num_sms = 15; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.registers_per_sm += 1; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.scheduler = SchedulerKind::kGto; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.l1.mshr_entries = 63; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.l2.size_bytes /= 2; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.dram.row_window = 5; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.alu_latency += 1; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.lsu_max_inflight = 95; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.sharing.enabled = true; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.sharing.threshold_t = 0.25; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.sharing.dyn_step = 0.2; }));
  EXPECT_TRUE(differs([](GpuConfig& c) { c.max_cycles = 1000; }));
  // exec_mode is deliberately part of the key: a result cached under one
  // mode must never be served to the other, or the cache would mask exactly
  // the cycle/event divergence grs_fuzz exists to catch.
  EXPECT_TRUE(differs([](GpuConfig& c) { c.exec_mode = ExecMode::kCycle; }));
}

TEST(Fingerprint, KernelChangesReachTheKey) {
  const KernelInfo base = small_kernel(0);
  const std::string fp = cache::kernel_fingerprint(base);
  EXPECT_EQ(fp, cache::kernel_fingerprint(small_kernel(0)));
  EXPECT_NE(fp, cache::kernel_fingerprint(small_kernel(1)));  // different program

  KernelInfo grid = base;
  grid.grid_blocks += 1;
  EXPECT_NE(cache::kernel_fingerprint(grid), fp);

  KernelInfo regs = base;
  regs.resources.regs_per_thread += 1;
  EXPECT_NE(cache::kernel_fingerprint(regs), fp);

  const GpuConfig cfg;
  EXPECT_NE(cache::result_cache_key(cfg, base), cache::result_cache_key(cfg, grid));
  GpuConfig other;
  other.exec_mode = ExecMode::kCycle;
  EXPECT_NE(cache::result_cache_key(cfg, base), cache::result_cache_key(other, base));
  EXPECT_EQ(cache::result_cache_key(cfg, base), cache::result_cache_key(GpuConfig{}, base));
}

// --- result codec ---------------------------------------------------------------

TEST(ResultCodec, EncodeDecodeRoundTripsByteIdentically) {
  const SimResult r = simulate(configs::shared_owf_unroll_dyn(Resource::kRegisters),
                               small_kernel(0));
  const std::string payload = encode_result(r);
  EXPECT_EQ(payload.compare(0, 13, "grs-result 1\n"), 0);

  SimResult decoded;
  ASSERT_TRUE(decode_result(payload, decoded));
  EXPECT_EQ(decoded.stats, r.stats);  // field-wise, the cross-mode contract
  EXPECT_EQ(decoded.occupancy.total_blocks, r.occupancy.total_blocks);
  EXPECT_EQ(decoded.occupancy.shared_pairs, r.occupancy.shared_pairs);
  EXPECT_EQ(decoded.occupancy.baseline_waste_percent, r.occupancy.baseline_waste_percent);
  EXPECT_EQ(encode_result(decoded), payload);  // exact re-encode, doubles included
}

TEST(ResultCodec, RejectsAnyDamagedPayload) {
  const SimResult r = simulate(configs::unshared(), small_kernel(0));
  const std::string payload = encode_result(r);
  SimResult out;

  EXPECT_FALSE(decode_result("", out));
  EXPECT_FALSE(decode_result("grs-result 2\n" + payload.substr(13), out));  // version
  EXPECT_FALSE(decode_result(payload.substr(0, payload.size() / 2), out));  // truncated
  EXPECT_FALSE(decode_result(payload.substr(0, payload.size() - 4), out));  // no "end"
  EXPECT_FALSE(decode_result(payload + "extra 1\n", out));                  // trailing data

  // Renaming one field breaks the strict sequential parse.
  std::string renamed = payload;
  const auto pos = renamed.find("cycles ");
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, 6, "cycels");
  EXPECT_FALSE(decode_result(renamed, out));

  // A non-numeric value is rejected, not parsed as zero.
  std::string garbled = payload;
  const auto vpos = garbled.find("cycles ") + 7;
  garbled.replace(vpos, 1, "x");
  EXPECT_FALSE(decode_result(garbled, out));
}

// --- the store ------------------------------------------------------------------

TEST(CacheTest, MissStoreHitRoundTripsByteIdentically) {
  const std::string dir = fresh_store("roundtrip");
  cache::ResultCache store(dir, cache::CacheMode::kReadWrite);

  const GpuConfig cfg = configs::unshared();
  const KernelInfo kernel = small_kernel(0);
  const std::string key = cache::result_cache_key(cfg, kernel);

  SimResult out;
  EXPECT_FALSE(store.lookup(key, nullptr, &out));  // cold: miss

  const SimResult fresh = simulate(cfg, kernel);
  store.store(key, fresh);
  EXPECT_TRUE(fs::exists(store.entry_path(key)));

  std::string payload;
  ASSERT_TRUE(store.lookup(key, &payload, &out));
  EXPECT_EQ(payload, encode_result(fresh));
  EXPECT_EQ(out.stats, fresh.stats);

  const cache::CacheStats s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.bytes_written, payload.size());
  EXPECT_EQ(s.bytes_read, payload.size());
  EXPECT_NE(s.summary().find("1 hits, 1 misses"), std::string::npos);
}

TEST(CacheTest, CorruptedOrTruncatedEntryIsAMissNotAnError) {
  const std::string dir = fresh_store("corrupt");
  cache::ResultCache store(dir, cache::CacheMode::kReadWrite);
  const GpuConfig cfg = configs::unshared();
  const KernelInfo kernel = small_kernel(0);
  const std::string key = cache::result_cache_key(cfg, kernel);
  store.store(key, simulate(cfg, kernel));

  const std::string path = store.entry_path(key);
  const std::string good = read_file(path);

  write_file(path, good.substr(0, good.size() / 3));  // truncated
  EXPECT_FALSE(store.lookup(key, nullptr, nullptr));
  write_file(path, "not a cache entry at all\n");  // scribbled
  EXPECT_FALSE(store.lookup(key, nullptr, nullptr));
  EXPECT_EQ(store.stats().corrupt, 2u);

  // The engine recovers transparently: the damaged entry is re-simulated
  // and re-stored, and the sweep result is unaffected.
  runner::SweepSpec spec;
  spec.add("Unshared-LRR", cfg, kernel);
  cache::CacheStats stats;
  const auto rows =
      runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kReadWrite, &stats));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(read_file(path), good);  // healed back to the canonical payload
}

TEST(CacheTest, OffModeNeverConsultsTheStore) {
  // grs_fuzz relies on this: with mode off the engine must not open, read,
  // or create the store even when cache_dir points somewhere real.
  const std::string dir = fresh_store("offmode");
  const GpuConfig cfg = configs::unshared();
  const KernelInfo kernel = small_kernel(0);
  const std::string key = cache::result_cache_key(cfg, kernel);

  // Poison the store: a decodable entry whose cycles are absurd. If any
  // off-mode path consulted the cache, the poisoned cycles would leak into
  // the sweep rows below.
  {
    cache::ResultCache store(dir, cache::CacheMode::kReadWrite);
    SimResult poisoned = simulate(cfg, kernel);
    poisoned.stats.cycles = 424242;
    store.store(key, poisoned);
  }

  runner::SweepSpec spec;
  spec.add("Unshared-LRR", cfg, kernel);
  cache::CacheStats stats;
  const auto rows = runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kOff, &stats));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].result.stats.cycles, 424242u);
  EXPECT_EQ(rows[0].result.stats, simulate(cfg, kernel).stats);
  EXPECT_EQ(stats.hits + stats.misses + stats.stores + stats.bytes_read, 0u);

  // And with no directory at all, off mode must not create one.
  const std::string absent = fresh_store("offmode_absent");
  (void)runner::run_sweep(spec, cached_options(absent, cache::CacheMode::kOff));
  EXPECT_FALSE(fs::exists(absent));
}

TEST(CacheTest, WarmSweepIsAllHitsAndByteIdentical) {
  const std::string dir = fresh_store("warm");
  const runner::SweepSpec spec = tiny_spec();

  cache::CacheStats cold;
  const std::string cold_csv =
      csv_of(runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kReadWrite, &cold)));
  EXPECT_EQ(cold.misses, spec.size());
  EXPECT_EQ(cold.stores, spec.size());
  EXPECT_EQ(cold.hits, 0u);

  cache::CacheStats warm;
  const std::string warm_csv =
      csv_of(runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kReadWrite, &warm)));
  EXPECT_EQ(warm.hits, spec.size());
  EXPECT_EQ(warm.misses, 0u);
  EXPECT_EQ(warm.stores, 0u);
  EXPECT_EQ(warm_csv, cold_csv);

  // Read-only mode on a cold key simulates but leaves the store untouched.
  const std::string ro_dir = fresh_store("readonly");
  cache::CacheStats ro;
  const std::string ro_csv =
      csv_of(runner::run_sweep(spec, cached_options(ro_dir, cache::CacheMode::kRead, &ro)));
  EXPECT_EQ(ro.misses, spec.size());
  EXPECT_EQ(ro.stores, 0u);
  EXPECT_EQ(ro_csv, cold_csv);
}

TEST(CacheTest, ConcurrentWritersOfOneKeyLandOneWellFormedEntry) {
  const std::string dir = fresh_store("race");
  cache::ResultCache store(dir, cache::CacheMode::kReadWrite);
  const GpuConfig cfg = configs::unshared();
  const KernelInfo kernel = small_kernel(0);
  const std::string key = cache::result_cache_key(cfg, kernel);
  const SimResult fresh = simulate(cfg, kernel);

  std::vector<std::thread> writers;
  writers.reserve(8);
  for (int i = 0; i < 8; ++i)
    writers.emplace_back([&] {
      for (int j = 0; j < 16; ++j) store.store(key, fresh);
    });
  for (std::thread& t : writers) t.join();

  std::string payload;
  ASSERT_TRUE(store.lookup(key, &payload, nullptr));
  EXPECT_EQ(payload, encode_result(fresh));

  // Readers only ever saw absent-or-complete: no temp files survive, and the
  // entry's directory holds exactly the one published file.
  std::size_t files = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    ++files;
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos) << e.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST(CacheTest, VerifyModePassesOnHonestStoreAndThrowsOnPoison) {
  const std::string dir = fresh_store("verify");
  const runner::SweepSpec spec = tiny_spec();
  (void)runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kReadWrite));

  // Honest store: every hit re-simulates and proves byte-identical.
  cache::CacheStats honest;
  const auto rows =
      runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kVerify, &honest));
  EXPECT_EQ(rows.size(), spec.size());
  EXPECT_EQ(honest.verified, spec.size());
  EXPECT_EQ(honest.verify_failures, 0u);

  // Poison one entry with a *valid, decodable* payload from a different
  // point; plain readwrite would happily serve it, verify must not.
  cache::ResultCache store(dir, cache::CacheMode::kReadWrite);
  const runner::SweepPoint& a = spec.points.front();
  const runner::SweepPoint& b = spec.points.back();
  const std::string key_a = cache::result_cache_key(a.config, a.kernel);
  std::string payload_b;
  ASSERT_TRUE(store.lookup(cache::result_cache_key(b.config, b.kernel), &payload_b, nullptr));
  write_file(store.entry_path(key_a), payload_b);

  cache::CacheStats poisoned;
  EXPECT_THROW(
      (void)runner::run_sweep(spec, cached_options(dir, cache::CacheMode::kVerify, &poisoned)),
      std::runtime_error);
}

// --- shared CLI options ---------------------------------------------------------

TEST(CliOptions, StrictParsingAndCrossFlagValidation) {
  constexpr runner::CommonFlagSet kAll{true, true};
  runner::CommonOptions opts;
  const auto feed = [&](const std::string& flag, const std::string& value) {
    return runner::parse_common_flag(opts, kAll, flag, [&] { return value; });
  };

  EXPECT_TRUE(feed("--threads", "7"));
  EXPECT_EQ(opts.threads, 7u);
  EXPECT_THROW((void)feed("--threads", "many"), runner::UsageError);
  EXPECT_THROW((void)feed("--cache", ""), runner::UsageError);
  EXPECT_THROW((void)feed("--cache-mode", "sideways"), runner::UsageError);
  EXPECT_FALSE(feed("--not-a-shared-flag", ""));

  // --cache-mode / --cache-stats without --cache are rejected, not ignored.
  EXPECT_TRUE(feed("--cache-mode", "verify"));
  EXPECT_THROW(opts.finalize(), runner::UsageError);
  EXPECT_TRUE(feed("--cache", "/tmp/store"));
  EXPECT_NO_THROW(opts.finalize());
  EXPECT_TRUE(opts.cache_enabled());
  EXPECT_EQ(opts.cache_mode, cache::CacheMode::kVerify);

  cache::CacheStats stats;
  const runner::RunOptions run = opts.run_options(&stats);
  EXPECT_EQ(run.threads, 7u);
  EXPECT_EQ(run.cache_dir, "/tmp/store");
  EXPECT_EQ(run.cache_mode, cache::CacheMode::kVerify);
  EXPECT_EQ(run.cache_stats, &stats);

  // Without --cache the engine options stay fully off.
  const runner::RunOptions off = runner::CommonOptions{}.run_options(nullptr);
  EXPECT_TRUE(off.cache_dir.empty());
  EXPECT_EQ(off.cache_mode, cache::CacheMode::kOff);

  // One help source mentions every cache flag (check_docs.sh keys off this).
  const std::string help = runner::common_options_help(kAll);
  for (const char* flag : {"--threads", "--filter", "--out", "--json", "--cache",
                           "--cache-mode", "--cache-stats"})
    EXPECT_NE(help.find(flag), std::string::npos) << flag;

  EXPECT_EQ(cache::parse_cache_mode("readwrite"), cache::CacheMode::kReadWrite);
  EXPECT_EQ(cache::parse_cache_mode("off"), cache::CacheMode::kOff);
  EXPECT_EQ(cache::parse_cache_mode("Read"), std::nullopt);
}

// --- sink goldens ---------------------------------------------------------------

// Captured from the sinks BEFORE they were refitted onto result_fields();
// the codec-driven schema must reproduce these bytes exactly.
runner::SweepRow golden_row() {
  runner::SweepRow row;
  row.point.variant = "Shared-OWF-Unroll-Dyn";
  row.point.kernel.name = "golden,kernel \"q\"";
  row.point.kernel.set = "set1";
  row.point.kernel.suite = "RODINIA";
  row.point.kernel.grid_blocks = 252;
  SimResult& r = row.result;
  r.occupancy.total_blocks = 5;
  r.occupancy.baseline_blocks = 4;
  r.occupancy.shared_pairs = 1;
  r.stats.cycles = 123457;
  SmStats& sm = r.stats.sm_total;
  sm.issued_cycles = 1111;
  sm.stall_cycles = 222;
  sm.idle_cycles = 3333;
  sm.warp_instructions = 44444;
  sm.thread_instructions = 555555;
  sm.l1_accesses = 1000;
  sm.l1_misses = 125;
  sm.lock_acquisitions = 17;
  sm.lock_wait_cycles = 18;
  sm.dyn_throttled_issues = 19;
  r.stats.l2_accesses = 640;
  r.stats.l2_misses = 80;
  r.stats.dram_requests = 77;
  return row;
}

TEST(SinkGolden, CsvBytesAreUnchangedByTheCodecRefit) {
  runner::SweepRow row2 = golden_row();
  row2.point.variant = "Unshared-LRR";
  row2.point.kernel.name = "plain";
  std::ostringstream os;
  runner::CsvSink csv(os);
  csv.begin();
  csv.add("goldbench", golden_row());
  csv.add("goldbench", row2);
  csv.end();
  EXPECT_EQ(
      os.str(),
      "bench,variant,kernel,set,grid_blocks,blocks_per_sm,baseline_blocks,shared_pairs,"
      "cycles,ipc,warp_ipc,issued_cycles,stall_cycles,idle_cycles,warp_instructions,"
      "thread_instructions,l1_miss_rate,l2_miss_rate,dram_requests,lock_acquisitions,"
      "lock_wait_cycles,dyn_throttled_issues\n"
      "goldbench,Shared-OWF-Unroll-Dyn,\"golden,kernel \"\"q\"\"\",set1,252,5,4,1,123457,"
      "4.499988,0.359996,1111,222,3333,44444,555555,0.125000,0.125000,77,17,18,19\n"
      "goldbench,Unshared-LRR,plain,set1,252,5,4,1,123457,4.499988,0.359996,1111,222,3333,"
      "44444,555555,0.125000,0.125000,77,17,18,19\n");
}

TEST(SinkGolden, JsonBytesAreUnchangedByTheCodecRefit) {
  std::ostringstream os;
  runner::JsonSink json(os);
  json.begin();
  json.add("goldbench", golden_row());
  json.end();
  EXPECT_EQ(
      os.str(),
      "[\n"
      "  {\"bench\": \"goldbench\", \"variant\": \"Shared-OWF-Unroll-Dyn\", "
      "\"kernel\": \"golden,kernel \\\"q\\\"\", \"set\": \"set1\", \"grid_blocks\": 252, "
      "\"blocks_per_sm\": 5, \"baseline_blocks\": 4, \"shared_pairs\": 1, "
      "\"cycles\": 123457, \"ipc\": 4.499988, \"warp_ipc\": 0.359996, "
      "\"issued_cycles\": 1111, \"stall_cycles\": 222, \"idle_cycles\": 3333, "
      "\"warp_instructions\": 44444, \"thread_instructions\": 555555, "
      "\"l1_miss_rate\": 0.125000, \"l2_miss_rate\": 0.125000, \"dram_requests\": 77, "
      "\"lock_acquisitions\": 17, \"lock_wait_cycles\": 18, \"dyn_throttled_issues\": 19}\n"
      "]\n");
}

}  // namespace
}  // namespace grs
