// Workload suite: resource signatures must match the paper's Tables II-IV
// verbatim, programs must be well-formed, and per-kernel modelling notes
// (divergence, scratchpad footprints, staging phases) must hold.
#include <gtest/gtest.h>

#include "isa/analysis.h"
#include "workloads/suites.h"

namespace grs {
namespace {

struct Signature {
  const char* name;
  std::uint32_t threads;
  std::uint32_t regs;
  std::uint32_t smem;
};

class TableSignatures : public ::testing::TestWithParam<Signature> {};

// Paper Table II (block size, registers/thread) and Table III (block size,
// scratchpad bytes/block).
INSTANTIATE_TEST_SUITE_P(
    PaperTablesIIandIII, TableSignatures,
    ::testing::Values(Signature{"backprop", 256, 24, 0}, Signature{"b+tree", 508, 24, 0},
                      Signature{"hotspot", 256, 36, 512}, Signature{"LIB", 192, 36, 0},
                      Signature{"MUM", 256, 28, 0}, Signature{"mri-q", 256, 24, 0},
                      Signature{"sgemm", 128, 48, 1024}, Signature{"stencil", 512, 28, 0},
                      Signature{"CONV1", 64, 16, 2560}, Signature{"CONV2", 128, 16, 5184},
                      Signature{"lavaMD", 128, 20, 7200}, Signature{"NW1", 16, 16, 2180},
                      Signature{"NW2", 16, 16, 2180}, Signature{"SRAD1", 256, 16, 6144},
                      Signature{"SRAD2", 256, 16, 5120}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_P(TableSignatures, MatchThePaper) {
  const KernelInfo k = workloads::by_name(GetParam().name);
  EXPECT_EQ(k.resources.threads_per_block, GetParam().threads);
  EXPECT_EQ(k.resources.regs_per_thread, GetParam().regs);
  EXPECT_EQ(k.resources.smem_per_block, GetParam().smem);
}

TEST(Workloads, AllKernelsValidate) {
  for (const auto& name : workloads::all_names()) {
    const KernelInfo k = workloads::by_name(name);
    EXPECT_NO_FATAL_FAILURE(k.validate()) << name;
    EXPECT_GE(k.grid_blocks, 1u);
    EXPECT_GT(k.program.dynamic_length(), 20u) << name << ": trivially short";
  }
}

TEST(Workloads, SetMembershipMatchesPaperSections) {
  EXPECT_EQ(workloads::set1().size(), 8u);
  EXPECT_EQ(workloads::set2().size(), 7u);
  EXPECT_EQ(workloads::set3().size(), 4u);
  for (const auto& k : workloads::set1()) EXPECT_EQ(k.set, "set1") << k.name;
  for (const auto& k : workloads::set2()) EXPECT_EQ(k.set, "set2") << k.name;
  for (const auto& k : workloads::set3()) EXPECT_EQ(k.set, "set3") << k.name;
}

TEST(Workloads, NamesAreUnique) {
  auto names = workloads::all_names();
  EXPECT_EQ(names.size(), 19u);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(WorkloadsDeath, UnknownNameAborts) {
  EXPECT_DEATH((void)workloads::by_name("no-such-kernel"), "unknown kernel");
}

TEST(Workloads, DivergentKernelsHaveReducedLanes) {
  EXPECT_EQ(workloads::mum().active_lanes, 20u);
  EXPECT_EQ(workloads::btree().active_lanes, 24u);
  EXPECT_EQ(workloads::bfs().active_lanes, 16u);
  EXPECT_EQ(workloads::hotspot().active_lanes, 32u);
}

TEST(Workloads, ScratchpadAccessesStayWithinAllocation) {
  for (const auto& k : workloads::set2()) {
    EXPECT_LT(k.program.max_smem_offset(), k.resources.smem_per_block) << k.name;
  }
}

TEST(Workloads, Set2KernelsSynchronizeWithBarriers) {
  // Scratchpad-tiled kernels synchronize; NW/SRAD wavefronts barrier per
  // diagonal (multi-warp blocks need it for correctness of the real code).
  for (const char* name : {"CONV1", "CONV2", "lavaMD", "NW1", "NW2", "SRAD1", "SRAD2"}) {
    EXPECT_TRUE(workloads::by_name(name).program.has_barrier()) << name;
  }
}

TEST(Workloads, StagingPhasesGiveNonOwnersRoomAt90Percent) {
  // The paper's gainers must let a non-owner warp execute a real prefix at
  // 90% sharing; SRAD1 (barrier next to the shared access) must not.
  struct Case {
    const char* name;
    double min_frac;
    double max_frac;
  };
  for (const Case c : {Case{"hotspot", 0.01, 0.5}, Case{"stencil", 0.05, 0.6},
                       Case{"CONV2", 0.05, 0.6}, Case{"SRAD2", 0.05, 0.7},
                       Case{"SRAD1", 0.0, 0.05}}) {
    const KernelInfo k = workloads::by_name(c.name);
    std::uint64_t prefix;
    if (k.set == "set1") {
      const auto thresh =
          static_cast<RegNum>(k.resources.regs_per_thread / 10);  // t = 0.1
      prefix = instructions_before_shared_reg(k.program, thresh);
    } else {
      prefix = instructions_before_shared_smem(
          k.program, static_cast<std::uint32_t>(k.resources.smem_per_block * 0.1));
    }
    const double frac =
        static_cast<double>(prefix) / static_cast<double>(k.program.dynamic_length());
    EXPECT_GE(frac, c.min_frac) << c.name;
    EXPECT_LE(frac, c.max_frac) << c.name;
  }
}

TEST(Workloads, MemoryBoundKernelsHaveHigherMemFraction) {
  const double mum = summarize_mix(workloads::mum().program).mem_fraction();
  const double mriq = summarize_mix(workloads::mriq().program).mem_fraction();
  EXPECT_GT(mum, mriq) << "MUM is the memory-bound one (paper §VI-B)";
}

TEST(Workloads, MriQUsesSfuPipelines) {
  EXPECT_GT(summarize_mix(workloads::mriq().program).sfu, 0u)
      << "mri-q models sin/cos SFU chains";
}

TEST(Workloads, ByNameRoundTrips) {
  for (const auto& name : workloads::all_names()) {
    EXPECT_EQ(workloads::by_name(name).name, name);
  }
}

}  // namespace
}  // namespace grs
