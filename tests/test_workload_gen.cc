// Seeded kernel generator: every profile × seed yields a valid kernel that
// fits the default GPU, generation is bit-deterministic, generated kernels
// survive .gkd round-trips, and a small differential smoke run reproduces
// the cycle/event equivalence the grs_fuzz harness checks at scale.
#include <gtest/gtest.h>

#include <string>

#include "common/config.h"
#include "core/occupancy.h"
#include "gpu/simulator.h"
#include "workloads/format/gkd.h"
#include "workloads/gen/generator.h"

namespace grs {
namespace {

using workloads::gen::all_profiles;
using workloads::gen::generate;

TEST(KernelGenerator, AllProfilesValidateAndFitAcrossSeeds) {
  const GpuConfig caps;
  for (const auto& profile : all_profiles()) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      const KernelInfo k = generate(profile, seed);
      k.validate();  // aborts on failure
      const Occupancy o = compute_occupancy(caps, k.resources);
      EXPECT_GE(o.baseline_blocks, 1u) << profile.name << " seed " << seed;
      EXPECT_GE(k.grid_blocks, 1u);
      // Once the budget is exhausted, each remaining segment still emits one
      // body_max-bounded pass, so the worst-case overshoot is segments*body.
      EXPECT_LE(k.program.dynamic_length(),
                static_cast<std::uint64_t>(profile.max_dynamic_length) +
                    static_cast<std::uint64_t>(profile.segments_max) * profile.body_max)
          << profile.name << " seed " << seed << ": dynamic-length budget blown";
    }
  }
}

TEST(KernelGenerator, DeterministicPerSeedAndProfile) {
  for (const auto& profile : all_profiles()) {
    const std::string a = workloads::gkd::serialize(generate(profile, 7));
    const std::string b = workloads::gkd::serialize(generate(profile, 7));
    EXPECT_EQ(a, b) << profile.name;
    const std::string c = workloads::gkd::serialize(generate(profile, 8));
    EXPECT_NE(a, c) << profile.name << ": different seeds should differ";
  }
}

TEST(KernelGenerator, DistinctProfilesDrawDistinctStreams) {
  const auto profiles = all_profiles();
  const std::string a = workloads::gkd::serialize(generate(profiles[0], 3));
  const std::string b = workloads::gkd::serialize(generate(profiles[2], 3));
  EXPECT_NE(a, b);
}

TEST(KernelGenerator, GeneratedKernelsRoundTripByteIdentically) {
  for (const auto& profile : all_profiles()) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const KernelInfo k = generate(profile, seed);
      const std::string text = workloads::gkd::serialize(k);
      EXPECT_EQ(workloads::gkd::serialize(workloads::gkd::parse(text)), text)
          << profile.name << " seed " << seed;
    }
  }
}

TEST(KernelGenerator, ProfileByNameRejectsUnknown) {
  EXPECT_EQ(workloads::gen::profile_by_name("balanced").name, "balanced");
  EXPECT_THROW((void)workloads::gen::profile_by_name("bogus"), std::runtime_error);
}

TEST(KernelGenerator, ScratchpadProfilesActuallyTouchScratchpad) {
  // At least most scratchpad_limited seeds should emit shared-memory ops;
  // otherwise the profile's weights are miswired.
  int with_smem_ops = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const KernelInfo k = generate(workloads::gen::scratchpad_limited(), seed);
    EXPECT_GT(k.resources.smem_per_block, 0u);
    if (k.program.max_smem_offset() > 0) ++with_smem_ops;
  }
  EXPECT_GE(with_smem_ops, 7);
}

// The grs_fuzz oracle in miniature: a few generated kernels, two sharing
// lines, both execution modes, bit-identical statistics.
TEST(KernelGenerator, DifferentialSmokeCycleVsEvent) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto profiles = all_profiles();
    const KernelInfo k = generate(profiles[seed % profiles.size()], seed);
    for (GpuConfig cfg : {configs::unshared(SchedulerKind::kGto),
                          configs::shared_owf_unroll_dyn(Resource::kRegisters)}) {
      cfg.max_cycles = 50000;
      cfg.exec_mode = ExecMode::kCycle;
      const SimResult cycle = simulate(cfg, k);
      cfg.exec_mode = ExecMode::kEvent;
      const SimResult event = simulate(cfg, k);
      EXPECT_TRUE(cycle.stats == event.stats)
          << k.name << " under " << cfg.line_label() << ": cycle IPC " << cycle.stats.ipc()
          << " vs event IPC " << event.stats.ipc();
    }
  }
}

}  // namespace
}  // namespace grs
