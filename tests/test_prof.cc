// Host-phase profiler contracts (src/prof, docs/perf-tracking.md):
//  * zero feedback — sim stats are bit-identical with profiling on, in both
//    exec modes, through the engine, and through the result cache;
//  * exactness — with an injected fake clock, total/self/wall and the folded
//    stacks are exact, and merge() is additive;
//  * shape — grs-prof-v1 JSON and folded lines parse as documented, phase
//    self times sum to the profiled wall clock;
//  * perf records — grs-perf-record-v1 carries the documented keys and
//    scripts/perf_check.py passes a record against itself and fails a
//    synthetically regressed copy.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "gpu/result_codec.h"
#include "gpu/simulator.h"
#include "prof/perf_record.h"
#include "prof/prof.h"
#include "runner/engine.h"
#include "runner/manifest.h"
#include "workloads/suites.h"

namespace grs {
namespace {

KernelInfo shrink(KernelInfo k, std::uint32_t blocks) {
  k.grid_blocks = blocks;
  return k;
}

// Injectable deterministic clock (prof::HostProfiler::ClockFn is a plain
// function pointer, so the knob is a file-static).
double g_fake_now = 0.0;
double fake_clock() { return g_fake_now; }

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(ProfPhases, NamesAreStable) {
  // These spellings are schema: they appear in committed baselines and in
  // every saved profile/flamegraph. Renaming one is a format break.
  EXPECT_STREQ(to_string(prof::Phase::kSimulate), "simulate");
  EXPECT_STREQ(to_string(prof::Phase::kExecute), "execute_writeback");
  EXPECT_STREQ(to_string(prof::Phase::kSchedulerScan), "scheduler_scan");
  EXPECT_STREQ(to_string(prof::Phase::kIssue), "issue");
  EXPECT_STREQ(to_string(prof::Phase::kMemsys), "memsys_l2");
  EXPECT_STREQ(to_string(prof::Phase::kDram), "dram");
  EXPECT_STREQ(to_string(prof::Phase::kEventSleep), "event_sleep");
  EXPECT_STREQ(to_string(prof::Phase::kTimeline), "timeline_sample");
  EXPECT_STREQ(to_string(prof::Phase::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(to_string(prof::Phase::kCacheStore), "cache_store");
}

TEST(ProfScope, NullProfilerIsANoop) {
  prof::ScopedPhase outer(nullptr, prof::Phase::kSimulate);
  prof::ScopedPhase inner(nullptr, prof::Phase::kIssue);
  // Nothing to assert beyond "does not crash": the hook sites run this path
  // on every default (prof-off) simulation.
  SUCCEED();
}

TEST(ProfTiming, FakeClockNestingIsExact) {
  prof::HostProfiler p(&fake_clock);
  g_fake_now = 0.0;
  p.begin(prof::Phase::kSimulate);
  g_fake_now = 1.0;
  p.begin(prof::Phase::kSchedulerScan);
  g_fake_now = 3.0;
  p.begin(prof::Phase::kIssue);
  g_fake_now = 6.0;
  p.end(prof::Phase::kIssue);
  g_fake_now = 10.0;
  p.end(prof::Phase::kSchedulerScan);
  g_fake_now = 15.0;
  p.end(prof::Phase::kSimulate);

  EXPECT_DOUBLE_EQ(p.wall_seconds(), 15.0);
  EXPECT_EQ(p.calls(prof::Phase::kSimulate), 1u);
  EXPECT_DOUBLE_EQ(p.total_seconds(prof::Phase::kSimulate), 15.0);
  EXPECT_DOUBLE_EQ(p.self_seconds(prof::Phase::kSimulate), 6.0);  // 15 - nested 9
  EXPECT_DOUBLE_EQ(p.total_seconds(prof::Phase::kSchedulerScan), 9.0);
  EXPECT_DOUBLE_EQ(p.self_seconds(prof::Phase::kSchedulerScan), 6.0);  // 9 - nested 3
  EXPECT_DOUBLE_EQ(p.total_seconds(prof::Phase::kIssue), 3.0);
  EXPECT_DOUBLE_EQ(p.self_seconds(prof::Phase::kIssue), 3.0);

  // Folded output: root-first stacks, self time in integer microseconds,
  // deterministic (path-sorted) order.
  EXPECT_EQ(p.folded(),
            "simulate 6000000\n"
            "simulate;scheduler_scan 6000000\n"
            "simulate;scheduler_scan;issue 3000000\n");

  const std::string json = p.json();
  EXPECT_NE(json.find("\"schema\":\"grs-prof-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\":15.000000000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"issue\""), std::string::npos);
}

TEST(ProfTiming, MergeIsAdditive) {
  prof::HostProfiler a(&fake_clock), b(&fake_clock);
  g_fake_now = 0.0;
  a.begin(prof::Phase::kSimulate);
  g_fake_now = 2.0;
  a.end(prof::Phase::kSimulate);
  g_fake_now = 0.0;
  b.begin(prof::Phase::kSimulate);
  g_fake_now = 3.0;
  b.end(prof::Phase::kSimulate);

  a.merge(b);
  EXPECT_EQ(a.calls(prof::Phase::kSimulate), 2u);
  EXPECT_DOUBLE_EQ(a.total_seconds(prof::Phase::kSimulate), 5.0);
  EXPECT_DOUBLE_EQ(a.wall_seconds(), 5.0);
  EXPECT_EQ(a.folded(), "simulate 5000000\n");
}

TEST(ProfZeroFeedback, StatsBitIdenticalBothExecModes) {
  const KernelInfo kernel = shrink(workloads::hotspot(), 4);
  for (const ExecMode mode : {ExecMode::kCycle, ExecMode::kEvent}) {
    GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1);
    cfg.exec_mode = mode;
    const SimResult plain = simulate(cfg, kernel);
    prof::HostProfiler p;
    const SimResult profiled = simulate(cfg, kernel, nullptr, &p);
    EXPECT_EQ(encode_result(plain), encode_result(profiled))
        << "profiling changed sim results in mode " << static_cast<int>(mode);
    EXPECT_GT(p.calls(prof::Phase::kSimulate), 0u);
    EXPECT_GT(p.calls(prof::Phase::kSchedulerScan), 0u);
  }
}

TEST(ProfZeroFeedback, PhaseTimesSumToWall) {
  const KernelInfo kernel = shrink(workloads::hotspot(), 4);
  prof::HostProfiler p;
  (void)simulate(configs::unshared(), kernel, nullptr, &p);

  double self_sum = 0.0;
  for (std::size_t i = 0; i < prof::kNumPhases; ++i) {
    const auto ph = static_cast<prof::Phase>(i);
    EXPECT_GE(p.total_seconds(ph), p.self_seconds(ph));
    EXPECT_LE(p.total_seconds(ph), p.wall_seconds() + 1e-9);
    self_sum += p.self_seconds(ph);
  }
  // Exclusive times tile the profiled wall exactly (FP rounding aside).
  EXPECT_NEAR(self_sum, p.wall_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(p.total_seconds(prof::Phase::kSimulate), p.wall_seconds());
}

TEST(ProfZeroFeedback, FoldedStacksHaveDocumentedShape) {
  const KernelInfo kernel = shrink(workloads::hotspot(), 4);
  prof::HostProfiler p;
  (void)simulate(configs::unshared(), kernel, nullptr, &p);

  std::istringstream lines(p.folded());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const std::size_t space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_EQ(stack.rfind("simulate", 0), 0u) << "stack not rooted at simulate: " << line;
    for (const char c : stack)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_' || c == ';' || (c >= '0' && c <= '9'))
          << line;
    EXPECT_FALSE(value.empty());
    for (const char c : value) EXPECT_TRUE(c >= '0' && c <= '9') << line;
  }
  EXPECT_GE(n, 2u);  // at least simulate + one nested phase
}

TEST(ProfEngine, SweepRowsIdenticalAndProfilersMerged) {
  runner::SweepSpec spec;
  const KernelInfo kernel = shrink(workloads::hotspot(), 4);
  GpuConfig cycle = configs::unshared();
  cycle.exec_mode = ExecMode::kCycle;
  GpuConfig event = configs::unshared();
  event.exec_mode = ExecMode::kEvent;
  spec.add("cycle", cycle, kernel);
  spec.add("event", event, kernel);

  const std::vector<runner::SweepRow> plain = runner::run_sweep(spec);
  prof::HostProfiler merged;
  runner::RunOptions options;
  options.prof = &merged;
  const std::vector<runner::SweepRow> profiled = runner::run_sweep(spec, options);

  ASSERT_EQ(plain.size(), profiled.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(encode_result(plain[i].result), encode_result(profiled[i].result)) << i;
  // Two points merged post-run, in point order.
  EXPECT_EQ(merged.calls(prof::Phase::kSimulate), 2u);
  // The event point slept through idle windows; its bookkeeping was timed.
  EXPECT_GT(merged.calls(prof::Phase::kEventSleep), 0u);
}

TEST(ProfEngine, CacheLookupAndStorePhasesAreTimed) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "grs_prof_cache").string();
  std::filesystem::remove_all(dir);

  runner::SweepSpec spec;
  spec.add("pt", configs::unshared(), shrink(workloads::hotspot(), 4));

  runner::RunOptions options;
  options.cache_dir = dir;
  options.cache_mode = cache::CacheMode::kReadWrite;

  prof::HostProfiler cold;
  options.prof = &cold;
  const auto cold_rows = runner::run_sweep(spec, options);
  EXPECT_EQ(cold.calls(prof::Phase::kCacheLookup), 1u);
  EXPECT_EQ(cold.calls(prof::Phase::kCacheStore), 1u);
  EXPECT_EQ(cold.calls(prof::Phase::kSimulate), 1u);

  prof::HostProfiler warm;
  options.prof = &warm;
  const auto warm_rows = runner::run_sweep(spec, options);
  EXPECT_EQ(warm.calls(prof::Phase::kCacheLookup), 1u);
  EXPECT_EQ(warm.calls(prof::Phase::kCacheStore), 0u);  // hit: nothing stored
  EXPECT_EQ(warm.calls(prof::Phase::kSimulate), 0u);    // hit: nothing simulated
  EXPECT_TRUE(warm_rows[0].from_cache);
  EXPECT_EQ(encode_result(cold_rows[0].result), encode_result(warm_rows[0].result));

  std::filesystem::remove_all(dir);
}

TEST(ProfOutputs, WriteCreatesExactlyTheRequestedFiles) {
  prof::HostProfiler p(&fake_clock);
  g_fake_now = 0.0;
  p.begin(prof::Phase::kSimulate);
  g_fake_now = 1.0;
  p.end(prof::Phase::kSimulate);

  const std::filesystem::path dir = testing::TempDir();
  const std::string json_path = (dir / "prof_out.json").string();
  const std::string folded_path = (dir / "prof_out.folded").string();
  std::filesystem::remove(json_path);
  std::filesystem::remove(folded_path);

  // Empty paths mean "off": no file appears (the CLIs' prof-off default).
  prof::write_prof_outputs(p, "", "");
  EXPECT_FALSE(std::filesystem::exists(json_path));
  EXPECT_FALSE(std::filesystem::exists(folded_path));

  prof::write_prof_outputs(p, json_path, folded_path);
  EXPECT_EQ(slurp(json_path), p.json());
  EXPECT_EQ(slurp(folded_path), p.folded());
  std::filesystem::remove(json_path);
  std::filesystem::remove(folded_path);
}

std::vector<prof::PerfSuitePoint> tiny_suite() {
  prof::PerfSuitePoint pt;
  pt.name = "tiny:hotspot";
  pt.spec.add("unshared", configs::unshared(), shrink(workloads::hotspot(), 2));
  std::vector<prof::PerfSuitePoint> suite;
  suite.push_back(std::move(pt));
  return suite;
}

TEST(PerfRecord, CarriesDocumentedSchemaKeys) {
  prof::PerfRecordOptions options;
  options.reps = 2;
  options.threads = 1;
  options.verbose = false;
  const std::string json = prof::record_perf(tiny_suite(), options);

  for (const char* key :
       {"\"schema\":\"grs-perf-record-v1\"", "\"host_fingerprint\":", "\"git_commit\":",
        "\"git_dirty\":", "\"build_type\":", "\"points\":", "\"name\":\"tiny:hotspot\"",
        "\"sweep_points\":1", "\"reps\":2", "\"wall_ms\":", "\"sims_per_sec\":",
        "\"cycles\":", "\"phases\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The profiled rep's breakdown names real phases.
  EXPECT_NE(json.find("\"name\":\"simulate\""), std::string::npos);
}

TEST(PerfRecord, RejectsBadInputs) {
  prof::PerfRecordOptions options;
  options.verbose = false;
  EXPECT_THROW((void)prof::record_perf({}, options), std::runtime_error);
  options.reps = 0;
  EXPECT_THROW((void)prof::record_perf(tiny_suite(), options), std::runtime_error);
}

bool python3_available() { return std::system("python3 -c '' >/dev/null 2>&1") == 0; }

TEST(PerfCheck, PassesSelfAndFailsRegressedRecord) {
  if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";

  prof::PerfRecordOptions options;
  options.reps = 1;
  options.threads = 1;
  options.verbose = false;
  const std::string json = prof::record_perf(tiny_suite(), options);

  const std::filesystem::path dir = testing::TempDir();
  const std::string rec = (dir / "perf_rec.json").string();
  const std::string slow = (dir / "perf_slow.json").string();
  {
    std::ofstream f(rec, std::ios::binary | std::ios::trunc);
    f << json;
  }
  const std::string checker = std::string(GRS_SOURCE_DIR) + "/scripts/perf_check.py";

  // Identical record vs itself must pass, even under --strict.
  const std::string pass_cmd =
      "python3 '" + checker + "' '" + rec + "' '" + rec + "' --strict >/dev/null 2>&1";
  EXPECT_EQ(std::system(pass_cmd.c_str()), 0);

  // A 20% wall_ms regression must fail under the tight CI tolerances.
  const std::string slow_cmd =
      "python3 -c \"import json,sys; d=json.load(open(sys.argv[1]));\n"
      "[p.update(wall_ms=p['wall_ms']*1.2) for p in d['points']];\n"
      "json.dump(d, open(sys.argv[2],'w'))\" '" +
      rec + "' '" + slow + "'";
  ASSERT_EQ(std::system(slow_cmd.c_str()), 0);
  const std::string fail_cmd = "python3 '" + checker + "' '" + slow + "' '" + rec +
                               "' --strict --rel-tol 0.1 --abs-tol-ms 0 >/dev/null 2>&1";
  EXPECT_NE(std::system(fail_cmd.c_str()), 0);

  std::filesystem::remove(rec);
  std::filesystem::remove(slow);
}

TEST(Manifest, HostSectionCarriesBuildAttribution) {
  runner::RunManifest manifest("test");
  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"git_commit\":"), std::string::npos);
  EXPECT_NE(json.find("\"git_dirty\":"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(json.find("\"compiler\":"), std::string::npos);
}

}  // namespace
}  // namespace grs
