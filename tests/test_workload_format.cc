// .gkd workload format: byte-identical round-trips for every built-in
// kernel, and positioned (line:column) errors — never aborts — for every
// class of malformed input.
#include <gtest/gtest.h>

#include <string>

#include "workloads/format/gkd.h"
#include "workloads/suites.h"

namespace grs {
namespace {

using workloads::gkd::ParseError;
using workloads::gkd::parse;
using workloads::gkd::serialize;

/// A minimal valid document the error tests mutate. Line numbers:
///   1 gkd 1          4 regs 8         7 segment x2 {
///   2 kernel "k"     5 smem 256       8   alu $r0
///   3 threads 64     6 grid 4         9   ld.shared $r1, smem[128]
///                                    10 }
///                                    11 segment x1 {
///                                    12   exit
///                                    13 }
std::string minimal() {
  return
      "gkd 1\n"
      "kernel \"k\"\n"
      "threads 64\n"
      "regs 8\n"
      "smem 256\n"
      "grid 4\n"
      "segment x2 {\n"
      "  alu $r0\n"
      "  ld.shared $r1, smem[128]\n"
      "}\n"
      "segment x1 {\n"
      "  exit\n"
      "}\n";
}

/// Parse and return the error; fails the test if parsing succeeds.
ParseError expect_error(const std::string& text) {
  try {
    (void)parse(text, "doc.gkd");
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected a ParseError, document parsed fine";
  return ParseError("", 0, 0, "");
}

TEST(GkdRoundTrip, All19BuiltInsByteIdentical) {
  for (const auto& name : workloads::all_names()) {
    const KernelInfo k = workloads::by_name(name);
    const std::string text = serialize(k);
    const KernelInfo reloaded = parse(text, name);
    EXPECT_EQ(serialize(reloaded), text) << name;
  }
}

TEST(GkdRoundTrip, ReloadedKernelsMatchFieldwise) {
  for (const auto& name : workloads::all_names()) {
    const KernelInfo k = workloads::by_name(name);
    const KernelInfo r = parse(serialize(k));
    EXPECT_EQ(r.name, k.name);
    EXPECT_EQ(r.suite, k.suite);
    EXPECT_EQ(r.set, k.set);
    EXPECT_EQ(r.resources.threads_per_block, k.resources.threads_per_block);
    EXPECT_EQ(r.resources.regs_per_thread, k.resources.regs_per_thread);
    EXPECT_EQ(r.resources.smem_per_block, k.resources.smem_per_block);
    EXPECT_EQ(r.grid_blocks, k.grid_blocks);
    EXPECT_EQ(r.active_lanes, k.active_lanes);
    EXPECT_EQ(r.program.segments().size(), k.program.segments().size());
    EXPECT_EQ(r.program.dynamic_length(), k.program.dynamic_length());
    EXPECT_EQ(r.program.to_text(), k.program.to_text()) << name;
  }
}

TEST(GkdRoundTrip, MinimalDocumentParsesAndValidates) {
  const KernelInfo k = parse(minimal());
  k.validate();
  EXPECT_EQ(k.name, "k");
  EXPECT_EQ(k.resources.threads_per_block, 64u);
  EXPECT_EQ(k.active_lanes, 32u) << "lanes defaults to 32";
  EXPECT_EQ(k.suite, "") << "suite defaults to empty";
  EXPECT_EQ(k.program.segments().size(), 2u);
  EXPECT_EQ(k.program.segments()[0].iterations, 2u);
}

TEST(GkdLoader, AcceptsCommentsAndFlexibleWhitespace) {
  const std::string text =
      "# a comment\n"
      "gkd 1\n"
      "kernel \"spaced out\"   # trailing comment\n"
      "\n"
      "threads    64\n"
      "regs 8\n"
      "grid 4\n"
      "segment x1 {\n"
      "    alu   $r0 ,  $r0\n"
      "  exit\n"
      "}\n";
  const KernelInfo k = parse(text);
  EXPECT_EQ(k.name, "spaced out");
  EXPECT_EQ(k.program.static_length(), 2u);
}

TEST(GkdLoader, BadOpcodeReportsLineAndColumn) {
  std::string text = minimal();
  const std::size_t at = text.find("alu $r0");
  text.replace(at, 3, "axu");
  const ParseError e = expect_error(text);
  EXPECT_EQ(e.line(), 8);
  EXPECT_EQ(e.col(), 3);
  EXPECT_NE(std::string(e.what()).find("unknown opcode 'axu'"), std::string::npos) << e.what();
  EXPECT_NE(std::string(e.what()).find("doc.gkd:8:3"), std::string::npos) << e.what();
}

TEST(GkdLoader, MissingRequiredFieldFails) {
  std::string text = minimal();
  text.replace(text.find("threads 64\n"), 11, "");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("missing required header field 'threads'"),
            std::string::npos)
      << e.what();
}

TEST(GkdLoader, RegisterOverflowFails) {
  std::string text = minimal();
  text.replace(text.find("$r0"), 3, "$r8");  // regs 8 -> valid numbers are 0..7
  const ParseError e = expect_error(text);
  EXPECT_EQ(e.line(), 8);
  EXPECT_NE(std::string(e.what()).find("register $r8 out of range"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, ScratchpadOverflowFails) {
  std::string text = minimal();
  text.replace(text.find("smem[128]"), 9, "smem[256]");  // allocation is 256 bytes
  const ParseError e = expect_error(text);
  EXPECT_EQ(e.line(), 9);
  EXPECT_NE(std::string(e.what()).find("outside the 256-byte block allocation"),
            std::string::npos)
      << e.what();
}

TEST(GkdLoader, ScratchpadAccessWithoutAllocationFails) {
  std::string text = minimal();
  text.replace(text.find("smem 256\n"), 9, "");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("declares smem 0"), std::string::npos) << e.what();
}

TEST(GkdLoader, BadMagicFails) {
  const ParseError e = expect_error("gkb 1\nkernel \"k\"\n");
  EXPECT_EQ(e.line(), 1);
  EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
}

TEST(GkdLoader, UnsupportedVersionFails) {
  const ParseError e = expect_error("gkd 2\n");
  EXPECT_NE(std::string(e.what()).find("unsupported gkd version 2"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, DuplicateHeaderFieldFails) {
  std::string text = minimal();
  text.insert(text.find("regs 8"), "threads 64\n");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("duplicate header field 'threads'"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, UnknownHeaderFieldFails) {
  std::string text = minimal();
  text.insert(text.find("segment"), "blocksize 7\n");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("unknown header field 'blocksize'"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, GarbageNumberFails) {
  std::string text = minimal();
  text.replace(text.find("grid 4"), 6, "grid 4x");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("expected a number"), std::string::npos) << e.what();
}

TEST(GkdLoader, ZeroIterationSegmentFails) {
  std::string text = minimal();
  text.replace(text.find("segment x2"), 10, "segment x0");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("iteration count"), std::string::npos) << e.what();
}

TEST(GkdLoader, MissingExitFails) {
  std::string text = minimal();
  text.replace(text.find("  exit\n"), 7, "  alu $r0\n");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("must end with an 'exit'"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, ExitNotLastFails) {
  std::string text = minimal();
  text.insert(text.find("  alu $r0"), "  exit\n");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("exit"), std::string::npos) << e.what();
}

TEST(GkdLoader, LoopedExitSegmentFails) {
  std::string text = minimal();
  text.replace(text.rfind("segment x1"), 10, "segment x3");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("exactly once"), std::string::npos) << e.what();
}

TEST(GkdLoader, EmptySegmentFails) {
  std::string text = minimal();
  const std::string body = "  alu $r0\n  ld.shared $r1, smem[128]\n";
  text.replace(text.find(body), body.size(), "");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("empty segment"), std::string::npos) << e.what();
}

TEST(GkdLoader, UnterminatedSegmentFails) {
  std::string text = minimal();
  text.resize(text.rfind("}\n"));
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("missing '}'"), std::string::npos) << e.what();
}

TEST(GkdLoader, BadMemPatternFails) {
  const std::string text =
      "gkd 1\nkernel \"k\"\nthreads 64\nregs 8\ngrid 4\n"
      "segment x1 {\n"
      "  ld.global $r0, coalessed streaming region=1 lines=4\n"
      "  exit\n"
      "}\n";
  const ParseError e = expect_error(text);
  EXPECT_EQ(e.line(), 7);
  EXPECT_NE(std::string(e.what()).find("unknown memory pattern 'coalessed'"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, LanesOutOfRangeFails) {
  std::string text = minimal();
  text.insert(text.find("segment"), "lanes 33\n");
  const ParseError e = expect_error(text);
  EXPECT_NE(std::string(e.what()).find("lanes must be in [1, 32]"), std::string::npos)
      << e.what();
}

TEST(GkdLoader, FileHelpersRoundTrip) {
  const KernelInfo k = workloads::by_name("sgemm");
  const std::string path = ::testing::TempDir() + "/sgemm_roundtrip.gkd";
  workloads::gkd::dump_file(k, path);
  const KernelInfo r = workloads::gkd::load_file(path);
  EXPECT_EQ(serialize(r), serialize(k));
  EXPECT_THROW((void)workloads::gkd::load_file(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace grs
