// Trace-driven memory profiles: reader parsing and errors, histogram
// reduction on hand-built traces, deterministic profile-backed address
// sampling, .gkd profile-section round-trips, the lint validator, the saved
// corpus, and cycle/event bit-identity for profile-carrying kernels.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "gpu/simulator.h"
#include "memory/coalescer.h"
#include "workloads/format/gkd.h"
#include "workloads/gen/generator.h"
#include "workloads/trace/import.h"
#include "workloads/trace/reduce.h"
#include "workloads/trace/trace_reader.h"
#include "workloads/validate.h"

namespace grs {
namespace {

using workloads::trace::ImportOptions;
using workloads::trace::import_trace;
using workloads::trace::parse_trace;
using workloads::trace::reduce_trace;
using workloads::trace::Trace;
using workloads::trace::TraceError;

/// A trace where warp `w` streams pc 0x40 with a 1-line base advance and
/// revisits a 4-line window at pc 0x80 (stores), `iters` times over `warps`
/// warps of 32 full lanes.
std::string staged_trace(int iters, int warps) {
  std::string t = "pc,tid,addr,size\n";
  for (int it = 0; it < iters; ++it) {
    for (int w = 0; w < warps; ++w) {
      for (int lane = 0; lane < 32; ++lane) {
        const int tid = w * 32 + lane;
        // One 128B line per warp access, advancing one line per iteration.
        t += "0x40," + std::to_string(tid) + "," +
             std::to_string(0x100000 + (it * warps + w) * 128 + lane * 4) + ",4\n";
      }
      for (int lane = 0; lane < 32; ++lane) {
        const int tid = w * 32 + lane;
        // 4-line window revisited every 2 accesses (it % 2 alternates).
        t += "0x80," + std::to_string(tid) + "," +
             std::to_string(0x800000 + w * 8192 + (it % 2) * 512 + lane * 16) + ",4,w\n";
      }
    }
  }
  return t;
}

const workloads::trace::InstrStats* find_pc(const std::vector<workloads::trace::InstrStats>& v,
                                            std::uint64_t pc) {
  for (const auto& s : v) {
    if (s.pc == pc) return &s;
  }
  return nullptr;
}

// --- reader -----------------------------------------------------------------------

TEST(TraceReader, CsvGroupsLanesIntoWarpAccesses) {
  const Trace t = parse_trace(staged_trace(2, 3), "t.csv");
  // 2 iterations x 3 warps x 2 pcs = 12 warp accesses of 32 lanes each.
  ASSERT_EQ(t.accesses.size(), 12u);
  for (const auto& a : t.accesses) EXPECT_EQ(a.lanes.size(), 32u);
  EXPECT_EQ(t.records, 12u * 32u);
  EXPECT_EQ(t.max_tid, 3u * 32u - 1);
  EXPECT_FALSE(t.accesses[0].is_store);
  EXPECT_TRUE(t.accesses[1].is_store);
}

TEST(TraceReader, RepeatedLaneOpensANewDynamicInstance) {
  const std::string text =
      "0x10,0,0x1000,4\n"
      "0x10,1,0x1004,4\n"
      "0x10,0,0x2000,4\n";  // lane 0 again: second instance
  const Trace t = parse_trace(text, "t.csv");
  ASSERT_EQ(t.accesses.size(), 2u);
  EXPECT_EQ(t.accesses[0].lanes.size(), 2u);
  EXPECT_EQ(t.accesses[1].lanes.size(), 1u);
}

TEST(TraceReader, MemlogLinesAreOneWarpAccessEach) {
  const std::string text =
      "# comment\n"
      "0x40 3 LDG 0x10000 0x10080 0x10100\n"
      "0x48 3 STG.E 0x20000\n";
  const Trace t = parse_trace(text, "t.log");
  ASSERT_EQ(t.accesses.size(), 2u);
  EXPECT_EQ(t.accesses[0].warp_id, 3u);
  EXPECT_EQ(t.accesses[0].lanes.size(), 3u);
  EXPECT_FALSE(t.accesses[0].is_store);
  EXPECT_TRUE(t.accesses[1].is_store);
  EXPECT_EQ(t.max_tid, 3u * 32u + 2u);
}

TEST(TraceReader, ErrorsCarryFileAndLine) {
  try {
    (void)parse_trace("pc,tid,addr,size\n0x40,0,zzz,4\n", "bad.csv");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bad.csv:2:"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)parse_trace("0x40 7 LDG\n", "short.log"), TraceError);
  EXPECT_THROW((void)parse_trace("0x40 7 MUL 0x100\n", "op.log"), TraceError);
  EXPECT_THROW((void)parse_trace("# only comments\n", "empty.csv"), TraceError);
}

// --- reduction --------------------------------------------------------------------

TEST(TraceReduce, StreamingPcReducesToUnitAdvanceAllCold) {
  const Trace t = parse_trace(staged_trace(6, 4), "t.csv");
  const auto stats = reduce_trace(t);
  ASSERT_EQ(stats.size(), 2u);
  const auto* ld = find_pc(stats, 0x40);
  ASSERT_NE(ld, nullptr);
  EXPECT_FALSE(ld->is_store);
  EXPECT_EQ(ld->instances, 24u);
  EXPECT_EQ(ld->warps, 4u);
  // 32 lanes x 4B = 128B = exactly one line per access.
  ASSERT_EQ(ld->profile.coalesce.size(), 1u);
  EXPECT_EQ(ld->profile.coalesce[0].value, 1);
  EXPECT_EQ(ld->profile.coalesce[0].weight, 24u);
  // Base advances `warps` lines between a warp's consecutive accesses.
  ASSERT_EQ(ld->profile.stride.size(), 1u);
  EXPECT_EQ(ld->profile.stride[0].value, 4);
  // Fresh lines every access: all reuse mass is cold.
  ASSERT_EQ(ld->profile.reuse.size(), 1u);
  EXPECT_EQ(ld->profile.reuse[0].value, MemProfile::kColdReuse);
  EXPECT_EQ(ld->profile.footprint_lines, 24u);  // 6 iters x 4 warps distinct lines
}

TEST(TraceReduce, RevisitedWindowShowsReuseAndBoundedFootprint) {
  const Trace t = parse_trace(staged_trace(6, 4), "t.csv");
  const auto stats = reduce_trace(t);
  const auto* st = find_pc(stats, 0x80);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->is_store);
  // lane*16 over 32 lanes = 512B = 4 lines per access.
  ASSERT_EQ(st->profile.coalesce.size(), 1u);
  EXPECT_EQ(st->profile.coalesce[0].value, 4);
  // Each warp alternates between two 4-line windows: footprint 8 lines per
  // warp x 4 warps.
  EXPECT_EQ(st->profile.footprint_lines, 32u);
  // Every line repeats at distance 2 once both windows are warm.
  std::uint64_t cold = 0, reused = 0;
  for (const ProfileBucket& b : st->profile.reuse) {
    if (b.value == MemProfile::kColdReuse) {
      cold += b.weight;
    } else {
      EXPECT_EQ(b.value, 2);
      reused += b.weight;
    }
  }
  EXPECT_EQ(cold, 4u * 8u);           // 2 windows x 4 lines x 4 warps
  EXPECT_EQ(reused, 4u * 6u * 4u - cold);
  EXPECT_EQ(st->profile.check(), "");
}

// --- deterministic sampling -------------------------------------------------------

std::shared_ptr<const MemProfile> tiny_profile() {
  MemProfile p;
  p.coalesce = {{2, 3}, {4, 1}};
  p.stride = {{1, 9}, {16, 1}};
  p.reuse = {{MemProfile::kColdReuse, 1}, {2, 1}};
  p.footprint_lines = 64;
  EXPECT_EQ(p.check(), "");
  return std::make_shared<const MemProfile>(std::move(p));
}

Instruction profiled_load(std::shared_ptr<const MemProfile> p) {
  Instruction i;
  i.op = Op::kLdGlobal;
  i.dst = 0;
  i.region = 5;
  i.profile = std::move(p);
  return i;
}

/// Context of the `seq`-th execution of one static instruction (instr_uid
/// 7), with the warp's global mem_seq running ahead by `stretch` per step —
/// the situation of a loop body with `stretch` memory instructions.
MemAccessContext at_seq(std::uint64_t warp, std::uint64_t seq, std::uint64_t stretch = 1) {
  return MemAccessContext{warp, /*block_uid=*/0, /*mem_seq=*/seq * stretch,
                          /*instr_seq=*/seq, /*instr_uid=*/7};
}

TEST(ProfiledCoalescer, SamplingIsDeterministicAndRespectsHistograms) {
  Coalescer co(128);
  const Instruction ins = profiled_load(tiny_profile());
  std::vector<Addr> a, b;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    a.clear();
    co.expand(ins, at_seq(11, seq), a);
    b.clear();
    co.expand(ins, at_seq(11, seq), b);
    EXPECT_EQ(a, b) << "same (warp, seq) must draw the same addresses";
    // Transaction count comes from the coalesce histogram.
    EXPECT_TRUE(a.size() == 2 || a.size() == 4) << a.size();
    for (const Addr addr : a) {
      // Inside region 5's 64GB window and its 64-line footprint.
      EXPECT_EQ(addr >> 36, 5u);
      EXPECT_LT((addr & ((1ull << 36) - 1)) / 128, 64u);
    }
  }
}

TEST(ProfiledCoalescer, DistinctWarpsDrawDistinctStreams) {
  Coalescer co(128);
  const Instruction ins = profiled_load(tiny_profile());
  std::vector<Addr> w1, w2;
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    co.expand(ins, at_seq(1, seq), w1);
    co.expand(ins, at_seq(2, seq), w2);
  }
  EXPECT_NE(w1, w2);
}

std::shared_ptr<const MemProfile> unit_stride_profile() {
  MemProfile p;
  p.coalesce = {{1, 7}};
  p.stride = {{1, 7}};
  p.reuse = {{MemProfile::kColdReuse, 7}};
  p.footprint_lines = 1u << 20;
  return std::make_shared<const MemProfile>(std::move(p));
}

TEST(ProfiledCoalescer, SingleBucketHistogramsPinTheDraws) {
  Coalescer co(128);
  const Instruction ins = profiled_load(unit_stride_profile());
  std::vector<Addr> out;
  std::vector<Addr> seen;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    out.clear();
    co.expand(ins, at_seq(9, seq), out);
    ASSERT_EQ(out.size(), 1u);  // coalesce histogram forces one transaction
    seen.push_back(out[0]);
  }
  // All-cold unit stride: consecutive accesses advance one line, never repeat.
  for (std::size_t k = 1; k < seen.size(); ++k) {
    EXPECT_EQ(seen[k] - seen[k - 1], 128u);
  }
}

/// Regression: the walk is denominated in the instruction's own execution
/// index, not the warp's global memory-access counter. With three memory
/// instructions per loop body (mem_seq advancing 3 per iteration), a
/// unit-stride profile must still advance exactly one line per execution.
TEST(ProfiledCoalescer, WalkIsPerInstructionNotPerWarpAccessStream) {
  Coalescer co(128);
  const Instruction ins = profiled_load(unit_stride_profile());
  std::vector<Addr> alone, interleaved;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    co.expand(ins, at_seq(9, seq, /*stretch=*/1), alone);
    co.expand(ins, at_seq(9, seq, /*stretch=*/3), interleaved);
  }
  EXPECT_EQ(alone, interleaved) << "mem_seq spacing must not stretch the stride walk";
}

// --- .gkd profile sections --------------------------------------------------------

KernelInfo profiled_kernel() {
  std::vector<Segment> segments(2);
  segments[0].iterations = 6;
  Instruction seed;
  seed.op = Op::kAlu;
  seed.dst = 0;
  segments[0].instrs.push_back(seed);
  Instruction ld = profiled_load(tiny_profile());
  ld.dst = 1;
  ld.footprint_lines = 64;
  segments[0].instrs.push_back(ld);
  Instruction st;
  st.op = Op::kStGlobal;
  st.src0 = 1;
  st.region = 6;
  st.profile = tiny_profile();
  segments[0].instrs.push_back(st);
  segments[1].iterations = 1;
  Instruction exit;
  exit.op = Op::kExit;
  segments[1].instrs.push_back(exit);

  KernelInfo k;
  k.name = "profiled-test";
  k.suite = "tests";
  k.set = "trace";
  k.resources = KernelResources{64, 8, 0};
  k.grid_blocks = 28;
  k.program = Program(std::move(segments), 8);
  k.validate();
  return k;
}

TEST(GkdProfile, RoundTripIsByteIdentical) {
  const KernelInfo k = profiled_kernel();
  const std::string text = workloads::gkd::serialize(k);
  EXPECT_NE(text.find("profile {"), std::string::npos);
  EXPECT_NE(text.find("reuse cold:1 2:1"), std::string::npos) << text;
  const KernelInfo parsed = workloads::gkd::parse(text);
  EXPECT_EQ(workloads::gkd::serialize(parsed), text);
  // The parsed instruction carries the same histograms, not just bytes.
  const Instruction& ld = parsed.program.segments()[0].instrs[1];
  ASSERT_NE(ld.profile, nullptr);
  EXPECT_EQ(*ld.profile, *profiled_kernel().program.segments()[0].instrs[1].profile);
}

TEST(GkdProfile, LoaderRejectsMalformedProfiles) {
  auto doc = [](const std::string& body) {
    return "gkd 1\nkernel \"p\"\nthreads 32\nregs 4\ngrid 28\n\nsegment x1 {\n" + body +
           "\n  exit\n}\n";
  };
  auto expect_error = [&](const std::string& body, const std::string& needle) {
    try {
      (void)workloads::gkd::parse(doc(body));
      FAIL() << "expected ParseError for: " << body;
    } catch (const workloads::gkd::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  const std::string head = "  ld.global $r0, coalesced streaming region=1 lines=8 profile {\n";
  expect_error(head + "    coalesce 1:1\n    stride 1:1\n    reuse cold:1\n  }",
               "missing the 'footprint'");
  expect_error(head + "    coalesce 1:0\n    stride 1:1\n    reuse cold:1\n    footprint 8\n  }",
               "weight must be >= 1");
  expect_error(head +
                   "    coalesce 1:1\n    stride cold:1\n    reuse cold:1\n    footprint 8\n  }",
               "'cold' is only valid in the reuse histogram");
  expect_error(head +
                   "    coalesce 64:1\n    stride 1:1\n    reuse cold:1\n    footprint 8\n  }",
               "outside [1, 32]");
  expect_error(head + "    coalesce 1:1\n    stride 1:1\n    reuse cold:1\n    footprint 8\n"
                      "  exit",
               "unknown profile field 'exit'");
  expect_error("  ld.global $r0, coalesced streaming region=1 lines=8 profile\n  exit",
               "expected '{' after 'profile'");
  // A document that truly ends inside the block.
  try {
    (void)workloads::gkd::parse(
        "gkd 1\nkernel \"p\"\nthreads 32\nregs 4\ngrid 28\n\nsegment x1 {\n"
        "  ld.global $r0, coalesced streaming region=1 lines=8 profile {\n"
        "    coalesce 1:1\n");
    FAIL() << "expected ParseError for a truncated profile block";
  } catch (const workloads::gkd::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unterminated profile block"), std::string::npos)
        << e.what();
  }
}

TEST(GkdProfile, NonCanonicalInputIsCanonicalizedOnLoad) {
  const std::string text =
      "gkd 1\nkernel \"p\"\nthreads 32\nregs 4\ngrid 28\n\nsegment x1 {\n"
      "  ld.global $r0, coalesced streaming region=1 lines=8 profile {\n"
      "    coalesce 4:1 1:2 4:1\n"  // unsorted + duplicate
      "    stride 1:1\n"
      "    reuse 2:1 cold:3\n"
      "    footprint 8\n"
      "  }\n"
      "  exit\n}\n";
  const KernelInfo k = workloads::gkd::parse(text);
  const Instruction& ld = k.program.segments()[0].instrs[0];
  ASSERT_NE(ld.profile, nullptr);
  ASSERT_EQ(ld.profile->coalesce.size(), 2u);
  EXPECT_EQ(ld.profile->coalesce[0].value, 1);
  EXPECT_EQ(ld.profile->coalesce[1].weight, 2u);  // merged 4:1 + 4:1
  EXPECT_EQ(ld.profile->reuse[0].value, MemProfile::kColdReuse);
  // And a second round-trip is stable.
  const std::string canonical = workloads::gkd::serialize(k);
  EXPECT_EQ(workloads::gkd::serialize(workloads::gkd::parse(canonical)), canonical);
}

// --- import ----------------------------------------------------------------------

TEST(TraceImport, EndToEndKernelValidatesAndCarriesProfiles) {
  const KernelInfo k = import_trace(staged_trace(8, 16), "staged.csv");
  k.validate();
  EXPECT_EQ(k.name, "trace-staged");
  EXPECT_EQ(k.suite, "trace");
  EXPECT_EQ(k.grid_blocks, 2u);  // 512 threads at 256/block
  std::size_t profiled = 0;
  for (const Segment& s : k.program.segments()) {
    for (const Instruction& i : s.instrs) {
      if (i.profile) {
        ++profiled;
        EXPECT_TRUE(is_global_mem(i.op));
        EXPECT_EQ(i.profile->check(), "");
      }
    }
  }
  EXPECT_EQ(profiled, 2u);  // one per traced pc
  // Round-trips byte-identically like any first-class workload.
  const std::string text = workloads::gkd::serialize(k);
  EXPECT_EQ(workloads::gkd::serialize(workloads::gkd::parse(text)), text);
}

TEST(TraceImport, OptionsOverrideShape) {
  ImportOptions opts;
  opts.name = "custom";
  opts.threads_per_block = 64;
  opts.grid_blocks = 33;
  opts.iterations = 5;
  const KernelInfo k = import_trace(staged_trace(2, 2), "t.csv", opts);
  EXPECT_EQ(k.name, "custom");
  EXPECT_EQ(k.resources.threads_per_block, 64u);
  EXPECT_EQ(k.grid_blocks, 33u);
  EXPECT_EQ(k.program.segments()[0].iterations, 5u);
}

// --- lint validator ---------------------------------------------------------------

TEST(Validate, CleanAndPositionedDiagnostics) {
  const GpuConfig cfg;
  const std::string good = workloads::gkd::serialize(profiled_kernel());
  EXPECT_TRUE(workloads::lint_gkd(good, "good.gkd", cfg).empty());

  const std::string overflow =
      "gkd 1\nkernel \"big\"\nthreads 1024\nregs 40\ngrid 28\n\nsegment x1 {\n  alu $r0\n"
      "  exit\n}\n";
  const auto diags = workloads::lint_gkd(overflow, "big.gkd", cfg);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("big.gkd:4:"), std::string::npos) << diags[0];
  EXPECT_NE(diags[0].find("40960 registers"), std::string::npos) << diags[0];

  const auto parse_diags = workloads::lint_gkd("gkd 2\n", "v.gkd", cfg);
  ASSERT_EQ(parse_diags.size(), 1u);
  EXPECT_NE(parse_diags[0].find("v.gkd:1:"), std::string::npos) << parse_diags[0];
}

TEST(Validate, FlagsProfileHistogramInsanity) {
  const GpuConfig cfg;
  const std::string text =
      "gkd 1\nkernel \"p\"\nthreads 32\nregs 4\ngrid 28\nlanes 8\n\nsegment x1 {\n"
      "  ld.global $r0, coalesced streaming region=1 lines=8 profile {\n"
      "    coalesce 32:1\n"  // 32-line accesses with 8 active lanes
      "    stride 1:1\n"
      "    reuse cold:1\n"
      "    footprint 8\n"
      "  }\n"
      "  exit\n}\n";
  const auto diags = workloads::lint_gkd(text, "lanes.gkd", cfg);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("lanes.gkd:9:"), std::string::npos) << diags[0];
  EXPECT_NE(diags[0].find("coalesce degree 32"), std::string::npos) << diags[0];
}

// --- corpus ----------------------------------------------------------------------

TEST(Corpus, EveryKernelLoadsLintsAndRoundTrips) {
  const std::string dir = std::string(GRS_SOURCE_DIR) + "/examples/kernels";
  const GpuConfig cfg;
  std::size_t count = 0, with_profiles = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".gkd") continue;
    ++count;
    SCOPED_TRACE(entry.path().string());
    const KernelInfo k = workloads::gkd::load_file(entry.path().string());
    k.validate();
    EXPECT_TRUE(workloads::lint_gkd_file(entry.path().string(), cfg).empty());
    const std::string text = workloads::gkd::serialize(k);
    EXPECT_EQ(workloads::gkd::serialize(workloads::gkd::parse(text)), text);
    for (const Segment& s : k.program.segments()) {
      for (const Instruction& i : s.instrs) {
        if (i.profile) ++with_profiles;
      }
    }
  }
  EXPECT_GE(count, 6u);          // staged_reduce + the 5 corpus kernels
  EXPECT_GE(with_profiles, 1u);  // the trace-imported kernel carries profiles
}

// --- cycle/event equivalence ------------------------------------------------------

/// Profile-backed kernels must keep the fuzz oracle valid: bit-identical
/// statistics across execution modes on every sharing line.
TEST(ProfiledEquivalence, CycleAndEventModesAreBitIdentical) {
  const KernelInfo kernels[] = {
      import_trace(staged_trace(8, 16), "staged.csv"),
      workloads::gen::generate(workloads::gen::profiled(), 1),
      workloads::gen::generate(workloads::gen::profiled(), 4),
  };
  for (const KernelInfo& k : kernels) {
    for (GpuConfig cfg :
         {configs::unshared(SchedulerKind::kLrr), configs::unshared(SchedulerKind::kGto),
          configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1)}) {
      cfg.max_cycles = 60000;
      cfg.exec_mode = ExecMode::kCycle;
      const SimResult cycle = simulate(cfg, k);
      cfg.exec_mode = ExecMode::kEvent;
      const SimResult event = simulate(cfg, k);
      EXPECT_TRUE(cycle.stats == event.stats)
          << k.name << " under " << cfg.line_label() << ": cycle IPC " << cycle.stats.ipc()
          << " vs event IPC " << event.stats.ipc();
    }
  }
}

}  // namespace
}  // namespace grs
