// Runner subsystem: thread pool, parallel sweep engine determinism across
// worker counts, sink well-formedness, and the bench registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "runner/engine.h"
#include "runner/registry.h"
#include "runner/sink.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "workloads/suites.h"

namespace grs::runner {
namespace {

/// RunOptions with just a worker count (cache off, no progress callback).
RunOptions with_threads(unsigned n) {
  RunOptions o;
  o.threads = n;
  return o;
}

/// A small but non-trivial grid: 2 variants x 3 kernels, shrunk so one point
/// simulates in milliseconds.
SweepSpec tiny_spec() {
  SweepSpec s;
  const std::vector<ConfigVariant> variants = {
      ConfigVariant::of(configs::unshared()),
      ConfigVariant::of(configs::shared_owf_unroll_dyn(Resource::kRegisters))};
  std::vector<KernelInfo> kernels = workloads::set1();
  kernels.resize(3);
  for (KernelInfo& k : kernels) k.grid_blocks = 6;
  s.add_grid(variants, kernels);
  return s;
}

std::string csv_of(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.begin();
  for (const SweepRow& r : rows) sink.add("tiny", r);
  sink.end();
  return out.str();
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::size_t count_fields(const std::string& csv_line) {
  return static_cast<std::size_t>(std::count(csv_line.begin(), csv_line.end(), ',')) + 1;
}

// --- thread pool --------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobAndIsReusableAfterWait) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPool, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, RethrowsFirstJobExceptionAndStaysUsable) {
  // A throwing job used to std::terminate the whole process inside the
  // worker thread; wait() must surface it to the submitting caller instead.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i)
    pool.submit([&ran] {
      ++ran;
      throw std::runtime_error("job failed");
    });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20) << "remaining jobs must still run";

  // The error is consumed: the pool remains usable afterwards.
  pool.submit([&ran] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 21);
}

TEST(Engine, RethrowsWorkerExceptionToCaller) {
  RunOptions options;
  options.threads = 4;
  options.progress = [](std::size_t done, std::size_t) {
    if (done == 2) throw std::runtime_error("sweep point failed");
  };
  EXPECT_THROW((void)run_sweep(tiny_spec(), options), std::runtime_error);
}

TEST(Engine, SerialPathPropagatesExceptionsToo) {
  RunOptions options;
  options.threads = 1;
  options.progress = [](std::size_t, std::size_t) {
    throw std::runtime_error("serial failure");
  };
  EXPECT_THROW((void)run_sweep(tiny_spec(), options), std::runtime_error);
}

// --- sweep spec ---------------------------------------------------------------

TEST(SweepSpec, GridIsVariantMajorKernelMinor) {
  const SweepSpec s = tiny_spec();
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s.points[0].variant, "Unshared-LRR");
  EXPECT_EQ(s.points[0].kernel.name, s.points[3].kernel.name);
  EXPECT_EQ(s.points[3].variant, "Shared-OWF-Unroll-Dyn");
}

TEST(SweepSpec, FilterIsCaseInsensitiveSubstring) {
  SweepSpec s = tiny_spec();
  const std::string first = s.points[0].kernel.name;
  std::string shouty = first;
  for (char& c : shouty) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  s.filter_kernels(shouty);
  ASSERT_EQ(s.size(), 2u);  // one kernel, both variants
  for (const SweepPoint& p : s.points) EXPECT_EQ(p.kernel.name, first);

  SweepSpec all = tiny_spec();
  all.filter_kernels("");
  EXPECT_EQ(all.size(), 6u);

  SweepSpec none = tiny_spec();
  none.filter_kernels("no-such-kernel");
  EXPECT_TRUE(none.empty());
}

// --- engine -------------------------------------------------------------------

TEST(Engine, EmptySweepIsGracefullyEmpty) {
  const std::vector<SweepRow> rows = run_sweep(SweepSpec{}, with_threads(8));
  EXPECT_TRUE(rows.empty());

  // Sinks stay well-formed with zero rows.
  std::ostringstream csv_out;
  CsvSink csv(csv_out);
  csv.begin();
  csv.end();
  EXPECT_EQ(split_lines(csv_out.str()).size(), 1u);  // header only

  std::ostringstream json_out;
  JsonSink json(json_out);
  json.begin();
  json.end();
  EXPECT_EQ(json_out.str(), "[\n\n]\n");
}

TEST(Engine, ResultsArriveInSubmissionOrder) {
  const SweepSpec spec = tiny_spec();
  const std::vector<SweepRow> rows = run_sweep(spec, with_threads(4));
  ASSERT_EQ(rows.size(), spec.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].point.variant, spec.points[i].variant);
    EXPECT_EQ(rows[i].point.kernel.name, spec.points[i].kernel.name);
    EXPECT_GT(rows[i].result.stats.cycles, 0u);
  }
}

TEST(Engine, ByteIdenticalAcrossThreadCounts) {
  const SweepSpec spec = tiny_spec();
  const std::string csv1 = csv_of(run_sweep(spec, with_threads(1)));
  const std::string csv4 = csv_of(run_sweep(spec, with_threads(4)));
  const std::string csv8 = csv_of(run_sweep(spec, with_threads(8)));
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(csv1, csv8);
}

TEST(Engine, ProgressReachesTotal) {
  const SweepSpec spec = tiny_spec();
  std::size_t calls = 0, last_done = 0, total = 0;
  RunOptions options;
  options.threads = 4;
  options.progress = [&](std::size_t done, std::size_t n) {
    ++calls;
    if (done > last_done) last_done = done;
    total = n;
  };
  (void)run_sweep(spec, options);
  EXPECT_EQ(calls, spec.size());
  EXPECT_EQ(last_done, spec.size());
  EXPECT_EQ(total, spec.size());
}

// --- sinks --------------------------------------------------------------------

TEST(Sinks, CsvIsRectangular) {
  const std::vector<SweepRow> rows = run_sweep(tiny_spec(), with_threads(2));
  const std::string csv = csv_of(rows);
  EXPECT_EQ(csv.find('"'), std::string::npos);  // nothing needed quoting
  const std::vector<std::string> lines = split_lines(csv);
  ASSERT_EQ(lines.size(), rows.size() + 1);
  const std::size_t width = result_columns().size();
  for (const std::string& line : lines) EXPECT_EQ(count_fields(line), width);
}

TEST(Sinks, JsonIsStructurallySound) {
  const std::vector<SweepRow> rows = run_sweep(tiny_spec(), with_threads(2));
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin();
  for (const SweepRow& r : rows) sink.add("tiny", r);
  sink.end();
  const std::string json = out.str();

  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  long depth = 0;
  std::size_t objects = 0;
  for (char c : json) {
    if (c == '{') {
      ++depth;
      ++objects;
    } else if (c == '}') {
      --depth;
    }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(objects, rows.size());

  std::size_t kernels = 0;
  for (std::size_t pos = 0; (pos = json.find("\"kernel\": ", pos)) != std::string::npos;
       ++pos)
    ++kernels;
  EXPECT_EQ(kernels, rows.size());
}

TEST(Sinks, CellsMatchColumns) {
  const std::vector<SweepRow> rows = run_sweep(tiny_spec(), with_threads(2));
  ASSERT_FALSE(rows.empty());
  const auto cells = result_cells("tiny", rows[0]);
  EXPECT_EQ(cells.size(), result_columns().size());
  EXPECT_EQ(cells[0], "tiny");
  EXPECT_EQ(cells[1], rows[0].point.variant);
  EXPECT_EQ(cells[2], rows[0].point.kernel.name);
}

// --- registry -----------------------------------------------------------------

TEST(Registry, RegisterFindAndSortedListing) {
  register_bench({"ztest_registry_b", "later", [] { return SweepSpec{}; }, nullptr});
  register_bench({"ztest_registry_a", "earlier", [] { return SweepSpec{}; }, nullptr});

  const BenchDef* b = find_bench("ztest_registry_b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->title, "later");
  EXPECT_TRUE(b->build().empty());
  EXPECT_EQ(find_bench("no-such-bench"), nullptr);

  const std::vector<const BenchDef*> all = all_benches();
  ASSERT_GE(all.size(), 2u);
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(Registry, BenchViewFindAndKernelOrder) {
  const std::vector<SweepRow> rows = run_sweep(tiny_spec(), with_threads(2));
  const BenchView view(rows);
  const std::vector<std::string> kernels = view.kernels();
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_EQ(kernels[0], rows[0].point.kernel.name);

  const SimResult* r = view.find("Unshared-LRR", kernels[1]);
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->stats.cycles, 0u);
  EXPECT_EQ(view.find("Unshared-LRR", "no-such-kernel"), nullptr);
  EXPECT_EQ(view.find("no-such-variant", kernels[0]), nullptr);
}

}  // namespace
}  // namespace grs::runner
