// PairLockState: the shared-resource locking rules of paper §III, including
// the Fig. 5 deadlock scenario and the §IV-A ownership entitlement.
#include <gtest/gtest.h>

#include "core/locks.h"

namespace grs {
namespace {

TEST(RegLocks, FreshPairEitherSideMayAcquire) {
  PairLockState p(4);
  EXPECT_TRUE(p.reg_can_acquire(0, 0));
  EXPECT_TRUE(p.reg_can_acquire(1, 0));
}

TEST(RegLocks, HolderKeepsAccessIdempotently) {
  PairLockState p(4);
  p.reg_acquire(0, 1);
  EXPECT_TRUE(p.reg_held(0, 1));
  EXPECT_TRUE(p.reg_can_acquire(0, 1));
  p.reg_acquire(0, 1);  // idempotent
  EXPECT_EQ(p.reg_locks_held(0), 1u);
}

TEST(RegLocks, PartnerWarpBlockedOnHeldPosition) {
  PairLockState p(4);
  p.reg_acquire(0, 2);
  EXPECT_FALSE(p.reg_can_acquire(1, 2));
}

TEST(RegLocks, SideExclusionBlocksOtherPositionsToo) {
  // The Fig. 5 rule: while side 0 holds ANY lock, side 1 may acquire NONE —
  // not even a free position.
  PairLockState p(4);
  p.reg_acquire(0, 0);
  for (std::uint32_t pos = 0; pos < 4; ++pos) {
    EXPECT_FALSE(p.reg_can_acquire(1, pos)) << "pos " << pos;
  }
  // Side 0's other warps keep going.
  EXPECT_TRUE(p.reg_can_acquire(0, 3));
}

TEST(RegLocks, Fig5ScenarioDoesNotDeadlock) {
  // TB1{w1,w2}, TB2{w3,w4}; positions: (w1,w3)=0, (w2,w4)=1.
  // w2 (side 0) acquires lock 1 first. In the naive scheme w3 (side 1) could
  // take lock 0 and the barrier in each block would deadlock the pair.
  PairLockState p(2);
  p.reg_acquire(0, 1);                  // w2 holds its pool
  EXPECT_FALSE(p.reg_can_acquire(1, 0));  // w3 is denied (paper's resolution)
  EXPECT_TRUE(p.reg_can_acquire(0, 0));   // w1 proceeds
  p.reg_acquire(0, 0);
  // TB1 finishes: both warps release.
  p.reg_release_on_warp_finish(0, 0);
  p.reg_release_on_warp_finish(0, 1);
  p.on_block_finish(0);
  // Now TB2 can make progress.
  EXPECT_TRUE(p.reg_can_acquire(1, 0));
  EXPECT_TRUE(p.reg_can_acquire(1, 1));
}

TEST(RegLocks, RuleBWaitsForAllHoldersToFinish) {
  // Two side-1 warps hold locks; side 0 unblocks only when BOTH finish.
  PairLockState p(3);
  p.reg_acquire(1, 0);
  p.reg_acquire(1, 2);
  EXPECT_FALSE(p.reg_can_acquire(0, 1));
  p.reg_release_on_warp_finish(1, 0);
  EXPECT_FALSE(p.reg_can_acquire(0, 1)) << "one holder still live";
  p.reg_release_on_warp_finish(1, 2);
  EXPECT_TRUE(p.reg_can_acquire(0, 1));
}

TEST(RegLocks, ReleaseByNonHolderIsNoOp) {
  PairLockState p(2);
  p.reg_acquire(0, 0);
  p.reg_release_on_warp_finish(1, 0);  // not the holder
  EXPECT_TRUE(p.reg_held(0, 0));
  EXPECT_EQ(p.reg_locks_held(0), 1u);
}

TEST(RegLocks, LockedSideReportsHolder) {
  PairLockState p(2);
  EXPECT_EQ(p.locked_side(), PairLockState::kNoSide);
  p.reg_acquire(1, 0);
  EXPECT_EQ(p.locked_side(), 1);
  p.reg_release_on_warp_finish(1, 0);
  EXPECT_EQ(p.locked_side(), PairLockState::kNoSide);
}

TEST(SmemLock, FirstBlockToAccessOwnsUntilFinish) {
  PairLockState p(1);
  EXPECT_TRUE(p.smem_can_acquire(0));
  EXPECT_TRUE(p.smem_can_acquire(1));
  p.smem_acquire(1);
  EXPECT_EQ(p.smem_holder(), 1);
  EXPECT_TRUE(p.smem_can_acquire(1));   // holder re-enters freely
  EXPECT_FALSE(p.smem_can_acquire(0));  // partner busy-waits
  p.on_block_finish(1);
  EXPECT_TRUE(p.smem_can_acquire(0));
}

TEST(Entitlement, BarsTheOtherSideEvenWithNoLocksHeld) {
  PairLockState p(2);
  p.set_entitled(0);
  EXPECT_FALSE(p.reg_can_acquire(1, 0));
  EXPECT_FALSE(p.smem_can_acquire(1));
  EXPECT_TRUE(p.reg_can_acquire(0, 0));
  EXPECT_TRUE(p.smem_can_acquire(0));
}

TEST(Entitlement, ClearsWhenEntitledBlockFinishes) {
  PairLockState p(2);
  p.set_entitled(0);
  p.on_block_finish(0);
  EXPECT_TRUE(p.reg_can_acquire(1, 0));
}

TEST(Entitlement, SmemLockReleasedWithEntitlementOnFinish) {
  PairLockState p(1);
  p.smem_acquire(0);
  p.set_entitled(0);
  p.on_block_finish(0);
  EXPECT_EQ(p.smem_holder(), PairLockState::kNoSide);
  EXPECT_TRUE(p.smem_can_acquire(1));
}

using LockDeathTest = ::testing::Test;

TEST(LockDeathTest, IllegalRegisterAcquisitionAborts) {
  PairLockState p(2);
  p.reg_acquire(0, 0);
  EXPECT_DEATH(p.reg_acquire(1, 1), "illegal register lock acquisition");
}

TEST(LockDeathTest, IllegalScratchpadAcquisitionAborts) {
  PairLockState p(1);
  p.smem_acquire(0);
  EXPECT_DEATH(p.smem_acquire(1), "illegal scratchpad lock acquisition");
}

TEST(LockDeathTest, BlockFinishWithLiveLocksAborts) {
  PairLockState p(2);
  p.reg_acquire(0, 0);
  EXPECT_DEATH(p.on_block_finish(0), "live warp register locks");
}

}  // namespace
}  // namespace grs
