// StreamingMultiprocessor unit tests: manual stepping of a single SM with
// hand-built kernels — barrier semantics, scoreboard timing, exits, sharing
// locks and ownership transfer.
#include <gtest/gtest.h>

#include <memory>

#include "common/config.h"
#include "core/occupancy.h"
#include "isa/builder.h"
#include "memory/memsys.h"
#include "sm/sm.h"

namespace grs {
namespace {

struct SmHarness {
  SmHarness(const GpuConfig& cfg_in, const Program& prog_in, const KernelResources& res)
      : cfg(cfg_in),
        program(prog_in),
        occ(compute_occupancy(cfg, res)),
        memsys(cfg),
        dyn(cfg.sharing, cfg.num_sms),
        sm(0, cfg, program, res, occ, 32, memsys, &dyn) {}

  Cycle run_until_drained(Cycle limit = 1'000'000) {
    Cycle now = 0;
    while (!sm.drained()) {
      ++now;
      sm.step(now);
      if (now > limit) ADD_FAILURE() << "SM did not drain";
      if (now > limit) break;
    }
    return now;
  }

  GpuConfig cfg;
  Program program;
  Occupancy occ;
  MemorySystem memsys;
  DynThrottle dyn;
  StreamingMultiprocessor sm;
};

GpuConfig one_sm(const GpuConfig& base = configs::unshared()) {
  GpuConfig c = base;
  c.num_sms = 1;
  return c;
}

// --- basic execution ----------------------------------------------------------

TEST(Sm, SingleWarpRunsToCompletion) {
  ProgramBuilder b(4);
  b.alu(0).alu(1, 0).alu(2, 1).alu(3, 2);
  SmHarness h(one_sm(), b.build(), KernelResources{32, 4, 0});
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().warp_instructions, 5u);  // 4 alu + exit
  EXPECT_EQ(h.sm.stats().thread_instructions, 5u * 32);
  EXPECT_EQ(h.sm.stats().blocks_finished, 1u);
}

TEST(Sm, DependentAluChainTakesLatencyPerLink) {
  // 4 dependent ALU ops: each must wait alu_latency for its predecessor.
  ProgramBuilder b(4);
  b.alu(0).alu(1, 0).alu(2, 1).alu(3, 2);
  GpuConfig cfg = one_sm();
  SmHarness h(cfg, b.build(), KernelResources{32, 4, 0});
  h.sm.launch_block(0, 0);
  const Cycle end = h.run_until_drained();
  // Lower bound: 3 dependency waits of alu_latency each.
  EXPECT_GE(end, 3 * cfg.alu_latency);
  EXPECT_LE(end, 3 * cfg.alu_latency + 16);
}

TEST(Sm, IndependentOpsPipelineEveryCycle) {
  ProgramBuilder b(8);
  for (RegNum r = 0; r < 8; ++r) b.alu(r);  // no dependencies
  SmHarness h(one_sm(), b.build(), KernelResources{32, 8, 0});
  h.sm.launch_block(0, 0);
  const Cycle end = h.run_until_drained();
  // 8 independent issues + exit drain: well under serial time.
  EXPECT_LE(end, 8 + h.cfg.alu_latency + 4);
}

TEST(Sm, ExitWaitsForInflightInstructions) {
  ProgramBuilder b(2);
  b.ld_global(0, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
  // No consumer of r0: only the exit's inflight==0 rule orders the drain.
  SmHarness h(one_sm(), b.build(), KernelResources{32, 2, 0});
  h.sm.launch_block(0, 0);
  const Cycle end = h.run_until_drained();
  EXPECT_GT(end, h.cfg.l1_hit_latency) << "exit must not overtake the load";
}

TEST(Sm, PartialLastWarpGetsReducedLanes) {
  ProgramBuilder b(2);
  b.alu(0).alu(1, 0);
  // 40 threads = warp of 32 + warp of 8.
  SmHarness h(one_sm(), b.build(), KernelResources{40, 2, 0});
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().thread_instructions, 3u * 32 + 3u * 8);
}

// --- barriers -------------------------------------------------------------------

TEST(Sm, BarrierHoldsUntilAllWarpsArrive) {
  // Two warps; warp timing skewed by dependent ALU chains before the barrier.
  ProgramBuilder b(4);
  b.alu(0).alu(1, 0).alu(2, 1);
  b.barrier();
  b.alu(3, 2);
  SmHarness h(one_sm(), b.build(), KernelResources{64, 4, 0});
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().blocks_finished, 1u);
  EXPECT_EQ(h.sm.stats().warp_instructions, 2u * 6);
}

TEST(Sm, SingleWarpBarrierReleasesImmediately) {
  ProgramBuilder b(2);
  b.alu(0);
  b.barrier();
  b.alu(1, 0);
  SmHarness h(one_sm(), b.build(), KernelResources{32, 2, 0});
  h.sm.launch_block(0, 0);
  const Cycle end = h.run_until_drained();
  EXPECT_LE(end, 3 * h.cfg.alu_latency + 8) << "1-warp barrier must not block";
}

TEST(Sm, RepeatedBarriersInLoop) {
  ProgramBuilder b(2);
  b.loop(5, [](ProgramBuilder& l) {
    l.alu(0);
    l.barrier();
  });
  SmHarness h(one_sm(), b.build(), KernelResources{128, 2, 0});
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().blocks_finished, 1u);
}

// --- block refill callback --------------------------------------------------------

TEST(Sm, BlockFinishCallbackFiresWithSlot) {
  ProgramBuilder b(2);
  b.alu(0);
  SmHarness h(one_sm(), b.build(), KernelResources{32, 2, 0});
  int calls = 0;
  BlockSlot seen = kInvalidSlot;
  h.sm.set_block_finish_callback([&](SmId sm, BlockSlot slot) {
    ++calls;
    seen = slot;
    EXPECT_EQ(sm, 0u);
  });
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 0u);
}

TEST(Sm, RelaunchIntoFreedSlot) {
  ProgramBuilder b(2);
  b.alu(0).alu(1, 0);
  SmHarness h(one_sm(), b.build(), KernelResources{32, 2, 0});
  std::uint64_t launched = 1;
  h.sm.set_block_finish_callback([&](SmId, BlockSlot slot) {
    if (launched < 3) h.sm.launch_block(slot, launched++);
  });
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().blocks_finished, 3u);
}

// --- register sharing on the SM ---------------------------------------------------

/// Kernel where all warps immediately touch a shared register: the non-owner
/// block can make no progress past its private prefix.
TEST(Sm, NonOwnerBlocksAtSharedRegisterUntilOwnerFinishes) {
  ProgramBuilder b(10);
  b.alu(0).alu(0, 0);          // private prefix (regs < 1? floor(10*0.1)=1)
  b.loop(4, [](ProgramBuilder& l) { l.alu(9, 9); });  // shared register 9
  // One block = 1 warp; Rtb = 10*32 = 320 regs. Shrink the SM so D=1, M=2.
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kRegisters, 0.1));
  cfg.registers_per_sm = 480;  // D = 1, Eq.4 extra = 160/32 = 5 -> capped to 2
  cfg.max_threads_per_sm = 1536;
  SmHarness h(cfg, b.build(), KernelResources{32, 10, 0});
  ASSERT_EQ(h.occ.total_blocks, 2u);
  ASSERT_EQ(h.occ.shared_pairs, 1u);
  h.sm.launch_block(0, 0);
  h.sm.launch_block(1, 1);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().blocks_finished, 2u);
  EXPECT_GT(h.sm.stats().lock_wait_cycles, 0u) << "non-owner must have waited";
  EXPECT_GT(h.sm.stats().lock_acquisitions, 0u);
}

TEST(Sm, OwnershipTransfersWhenOwnerFinishes) {
  ProgramBuilder b(10);
  b.alu(0);
  b.loop(3, [](ProgramBuilder& l) { l.alu(9, 9); });
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kRegisters, 0.1));
  cfg.registers_per_sm = 480;
  SmHarness h(cfg, b.build(), KernelResources{32, 10, 0});
  h.sm.launch_block(0, 0);
  h.sm.launch_block(1, 1);
  // Side 0 launched first -> provisional owner.
  EXPECT_EQ(h.sm.pair_owner_side(0), 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().ownership_transfers, 1u);
}

TEST(Sm, UnsharedBlocksNeverTakeLocks) {
  ProgramBuilder b(10);
  b.loop(4, [](ProgramBuilder& l) { l.alu(9, 9); });
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kRegisters, 0.1));
  // Plenty of registers: no sharing activates.
  SmHarness h(cfg, b.build(), KernelResources{32, 10, 0});
  ASSERT_EQ(h.occ.shared_pairs, 0u);
  h.sm.launch_block(0, 0);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().lock_acquisitions, 0u);
  EXPECT_EQ(h.sm.stats().lock_wait_cycles, 0u);
}

// --- scratchpad sharing on the SM ---------------------------------------------------

TEST(Sm, ScratchpadLockBlocksPartnerBlock) {
  ProgramBuilder b(4);
  b.alu(0);
  b.loop(3, [](ProgramBuilder& l) { l.ld_shared(1, 900); });  // shared region
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kScratchpad, 0.1));
  cfg.scratchpad_per_sm = 1536;  // Rtb=1024 -> D=1; pair fits (1.1*1024=1126)
  SmHarness h(cfg, b.build(), KernelResources{32, 4, 1024});
  ASSERT_EQ(h.occ.total_blocks, 2u);
  ASSERT_EQ(h.occ.unshared_smem_bytes, 102u);  // floor(1024*0.1)
  h.sm.launch_block(0, 0);
  h.sm.launch_block(1, 1);
  h.run_until_drained();
  EXPECT_EQ(h.sm.stats().blocks_finished, 2u);
  EXPECT_GT(h.sm.stats().lock_wait_cycles, 0u);
}

TEST(Sm, PrivateScratchpadNeedsNoLock) {
  ProgramBuilder b(4);
  b.loop(3, [](ProgramBuilder& l) { l.ld_shared(1, 50); });  // < 102B: private
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kScratchpad, 0.1));
  cfg.scratchpad_per_sm = 1536;
  SmHarness h(cfg, b.build(), KernelResources{32, 4, 1024});
  ASSERT_EQ(h.occ.total_blocks, 2u);
  h.sm.launch_block(0, 0);
  h.sm.launch_block(1, 1);
  const Cycle end = h.run_until_drained();
  EXPECT_EQ(h.sm.stats().lock_acquisitions, 0u);
  EXPECT_EQ(h.sm.stats().lock_wait_cycles, 0u);
  // Both blocks ran concurrently: far less than 2x the serial time.
  EXPECT_LT(end, 2 * 3 * (h.cfg.scratchpad_latency + 2));
}

// Regression for the paper's Fig. 5: shared pair with barriers must drain.
TEST(Sm, BarrierPlusRegisterLocksDoNotDeadlock) {
  ProgramBuilder b(10);
  b.alu(0);
  b.loop(3, [](ProgramBuilder& l) {
    l.alu(9, 9);   // shared register access (lock)
    l.barrier();   // barrier right next to it
  });
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kRegisters, 0.1));
  cfg.registers_per_sm = 1440;  // Rtb = 10*64(2 warps)=640 -> D=2... use 2-warp blocks
  SmHarness h(cfg, b.build(), KernelResources{64, 10, 0});
  ASSERT_GE(h.occ.shared_pairs, 1u);
  for (BlockSlot s = 0; s < h.occ.total_blocks; ++s) h.sm.launch_block(s, s);
  h.run_until_drained();  // ADD_FAILURE inside if it hangs
  EXPECT_EQ(h.sm.stats().blocks_finished, h.occ.total_blocks);
}

TEST(Sm, ClassifyReflectsPairRoles) {
  ProgramBuilder b(10);
  b.alu(0);
  b.loop(3, [](ProgramBuilder& l) { l.alu(9, 9); });
  GpuConfig cfg = one_sm(configs::shared_noopt(Resource::kRegisters, 0.1));
  cfg.registers_per_sm = 480;
  SmHarness h(cfg, b.build(), KernelResources{32, 10, 0});
  h.sm.launch_block(0, 0);
  h.sm.launch_block(1, 1);
  EXPECT_EQ(h.sm.classify(h.sm.warp(0)), WarpClass::kSharedOwner);
  EXPECT_EQ(h.sm.classify(h.sm.warp(1)), WarpClass::kSharedNonOwner);
}

}  // namespace
}  // namespace grs
