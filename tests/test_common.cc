// Common substrate: config factories & validation, stats, PRNG, table writer,
// and the §V hardware-cost formulas.
#include <gtest/gtest.h>

#include "common/config.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/hardware_cost.h"

namespace grs {
namespace {

// --- config -------------------------------------------------------------------

TEST(Config, DefaultsMatchPaperTableI) {
  const GpuConfig c;
  EXPECT_EQ(c.num_sms, 14u);
  EXPECT_EQ(c.max_blocks_per_sm, 8u);
  EXPECT_EQ(c.max_threads_per_sm, 1536u);
  EXPECT_EQ(c.registers_per_sm, 32768u);
  EXPECT_EQ(c.scratchpad_per_sm, 16u * 1024);
  EXPECT_EQ(c.num_schedulers, 2u);
  EXPECT_EQ(c.scheduler, SchedulerKind::kLrr);
  EXPECT_EQ(c.l1.size_bytes, 16u * 1024);
  EXPECT_EQ(c.l2.size_bytes, 768u * 1024);
  EXPECT_EQ(c.max_warps_per_sm(), 48u);
}

TEST(Config, ExecModeDefaultsToEventAndRoundTrips) {
  EXPECT_EQ(GpuConfig{}.exec_mode, ExecMode::kEvent);
  EXPECT_STREQ(to_string(ExecMode::kCycle), "cycle");
  EXPECT_STREQ(to_string(ExecMode::kEvent), "event");
}

TEST(Config, LineLabelsMatchPaperFigureLegends) {
  EXPECT_EQ(configs::unshared().line_label(), "Unshared-LRR");
  EXPECT_EQ(configs::unshared(SchedulerKind::kGto).line_label(), "Unshared-GTO");
  EXPECT_EQ(configs::shared_noopt(Resource::kRegisters).line_label(), "Shared-LRR");
  EXPECT_EQ(configs::shared_unroll(Resource::kRegisters).line_label(),
            "Shared-LRR-Unroll");
  EXPECT_EQ(configs::shared_unroll_dyn(Resource::kRegisters).line_label(),
            "Shared-LRR-Unroll-Dyn");
  EXPECT_EQ(configs::shared_owf_unroll_dyn(Resource::kRegisters).line_label(),
            "Shared-OWF-Unroll-Dyn");
  EXPECT_EQ(configs::shared_owf(Resource::kScratchpad).line_label(), "Shared-OWF");
}

TEST(Config, FactoriesEncodeThePaperKnobs) {
  const GpuConfig c = configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.3);
  EXPECT_TRUE(c.sharing.enabled);
  EXPECT_TRUE(c.sharing.owf);
  EXPECT_TRUE(c.sharing.unroll_registers);
  EXPECT_TRUE(c.sharing.dynamic_warp_execution);
  EXPECT_DOUBLE_EQ(c.sharing.threshold_t, 0.3);
  EXPECT_NEAR(c.sharing.sharing_percent(), 70.0, 1e-9);
  EXPECT_EQ(c.sharing.dyn_period, 1000u);     // paper §IV-C
  EXPECT_DOUBLE_EQ(c.sharing.dyn_step, 0.1);  // paper §IV-C
}

TEST(ConfigDeath, InvalidThresholdRejected) {
  GpuConfig c = configs::shared_noopt(Resource::kRegisters);
  c.sharing.threshold_t = 0.0;
  EXPECT_DEATH(c.validate(), "threshold");
  c.sharing.threshold_t = 1.5;
  EXPECT_DEATH(c.validate(), "threshold");
}

TEST(ConfigDeath, MismatchedLineSizesRejected) {
  GpuConfig c;
  c.l1.line_bytes = 64;
  EXPECT_DEATH(c.validate(), "line_bytes");
}

// Regression: MemorySystem::access computes (l2_hit_latency - 40) / 2 on an
// unsigned Cycle, so a sweep point with l2_hit_latency < 40 used to wrap to
// ~2^63 and destroy the simulation instead of being rejected here.
TEST(ConfigDeath, L2HitLatencyBelowPipelineRejected) {
  GpuConfig c;
  c.l2_hit_latency = 39;
  EXPECT_DEATH(c.validate(), "L2 pipeline");
  c.l2_hit_latency = 0;
  EXPECT_DEATH(c.validate(), "L2 pipeline");
}

TEST(ConfigDeath, OddL2TransitRejected) {
  GpuConfig c;
  c.l2_hit_latency = kL2PipeLatency + 3;  // transit cannot split evenly
  EXPECT_DEATH(c.validate(), "even");
}

TEST(Config, L2HitLatencyAtPipelineFloorIsAccepted) {
  GpuConfig c;
  c.l2_hit_latency = kL2PipeLatency;  // zero-cycle interconnect is legal
  c.validate();
}

TEST(ConfigDeath, FractionalL2SetSplitRejected) {
  GpuConfig c;
  c.l2.size_bytes = 768 * 1024 + 512;  // not a whole number of sets
  EXPECT_DEATH(c.validate(), "whole number of sets");
}

TEST(ConfigDeath, TooFewL2MshrEntriesForBankSplitRejected) {
  GpuConfig c;
  c.l2.mshr_entries = c.dram.num_channels - 1;  // some bank would get zero
  EXPECT_DEATH(c.validate(), "MSHR entry per DRAM channel");
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, MergeSumsCountersAndMaxesResidency) {
  SmStats a, b;
  a.issued_cycles = 10;
  a.max_resident_blocks = 3;
  a.l1_misses = 7;
  b.issued_cycles = 5;
  b.max_resident_blocks = 6;
  b.l1_misses = 1;
  a.merge(b);
  EXPECT_EQ(a.issued_cycles, 15u);
  EXPECT_EQ(a.max_resident_blocks, 6u);
  EXPECT_EQ(a.l1_misses, 8u);
}

TEST(Stats, IpcUsesThreadInstructions) {
  GpuStats g;
  g.cycles = 100;
  g.sm_total.thread_instructions = 3200;
  g.sm_total.warp_instructions = 100;
  EXPECT_DOUBLE_EQ(g.ipc(), 32.0);
  EXPECT_DOUBLE_EQ(g.warp_ipc(), 1.0);
}

TEST(Stats, RatesHandleZeroDenominators) {
  GpuStats g;
  EXPECT_DOUBLE_EQ(g.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(g.l1_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(g.l2_miss_rate(), 0.0);
}

TEST(Stats, PercentHelpers) {
  EXPECT_DOUBLE_EQ(percent_improvement(100, 124), 24.0);
  EXPECT_DOUBLE_EQ(percent_improvement(200, 190), -5.0);
  EXPECT_DOUBLE_EQ(percent_decrease(200, 150), 25.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0, 50), 0.0);
}

// --- prng ----------------------------------------------------------------------

TEST(Prng, Mix64IsDeterministicAndNontrivial) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  EXPECT_NE(mix64(0), 0u);
}

TEST(Prng, UnitDoubleInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, NextBelowBounds) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Prng, StreamsWithDifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// --- table ----------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  TextTable t({"app", "IPC"});
  t.add_row({"hotspot", "489.50"});
  t.add_row({"x", "1.00"});
  const std::string out = t.render();
  EXPECT_NE(out.find("hotspot"), std::string::npos);
  EXPECT_NE(out.find("489.50"), std::string::npos);
  // Both rows end at the same column (right alignment of numeric column).
  const auto l1_end = out.find('\n', out.find("hotspot"));
  const auto l2_end = out.find('\n', out.find("x "));
  EXPECT_EQ(l1_end - out.rfind('\n', l1_end - 1), l2_end - out.rfind('\n', l2_end - 1));
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(24.136, 2), "+24.14%");
  EXPECT_EQ(TextTable::pct(-0.72, 2), "-0.72%");
}

TEST(TableDeath, ArityMismatchRejected) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

// --- hardware cost (paper §V) -----------------------------------------------------

TEST(HwCost, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  EXPECT_EQ(ceil_log2(48), 6u);
}

TEST(HwCost, RegisterSharingFormulaAtTableIShape) {
  // T=8, W=48, N=14: per SM = 1 + 8*ceil(log2 9) + 2*48 + 24*ceil(log2 48)
  //                         = 1 + 32 + 96 + 144 = 273 bits.
  const HardwareCostParams p{8, 48, 14};
  EXPECT_EQ(register_sharing_bits(p), 273u * 14);
}

TEST(HwCost, ScratchpadSharingFormulaAtTableIShape) {
  // per SM = 1 + 32 + 48 + 4*3 = 93 bits.
  const HardwareCostParams p{8, 48, 14};
  EXPECT_EQ(scratchpad_sharing_bits(p), 93u * 14);
}

TEST(HwCost, ScalesLinearlyInSmCount) {
  HardwareCostParams a{8, 48, 1}, b{8, 48, 10};
  EXPECT_EQ(register_sharing_bits(b), 10 * register_sharing_bits(a));
  EXPECT_EQ(scratchpad_sharing_bits(b), 10 * scratchpad_sharing_bits(a));
}

TEST(HwCost, OverheadIsTiny) {
  // The paper's point: a few hundred bits per SM vs a 128KB register file.
  const HardwareCostParams p{8, 48, 14};
  const double per_sm_bits = static_cast<double>(register_sharing_bits(p)) / 14;
  EXPECT_LT(per_sm_bits / (32768.0 * 32.0), 0.001);
}

}  // namespace
}  // namespace grs
