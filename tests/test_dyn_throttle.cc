// Dynamic warp execution controller (paper §IV-C).
#include <gtest/gtest.h>

#include "core/dyn_throttle.h"

namespace grs {
namespace {

SharingConfig dyn_cfg() {
  SharingConfig c;
  c.enabled = true;
  c.dynamic_warp_execution = true;
  return c;
}

TEST(Dyn, DisabledControllerAllowsEverything) {
  SharingConfig c;
  c.dynamic_warp_execution = false;
  DynThrottle d(c, 4);
  EXPECT_TRUE(d.allow(0, 123, 7));
  EXPECT_TRUE(d.allow(3, 456, 9));
}

TEST(Dyn, Sm0AlwaysDisabled) {
  DynThrottle d(dyn_cfg(), 4);
  EXPECT_DOUBLE_EQ(d.probability(0), 0.0);
  for (Cycle t = 0; t < 100; ++t) EXPECT_FALSE(d.allow(0, t, t * 31));
}

TEST(Dyn, OtherSmsStartFullyEnabled) {
  DynThrottle d(dyn_cfg(), 4);
  for (SmId i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(d.probability(i), 1.0);
    EXPECT_TRUE(d.allow(i, 42, 7));
  }
}

TEST(Dyn, MoreStallsThanSm0DecreasesProbability) {
  DynThrottle d(dyn_cfg(), 3);
  d.on_period_end({100, 150, 50});
  EXPECT_DOUBLE_EQ(d.probability(1), 0.9);  // stalled more than SM0
  EXPECT_DOUBLE_EQ(d.probability(2), 1.0);  // fewer stalls: stays saturated
}

TEST(Dyn, EqualStallsCountAsNotWorse) {
  // Paper: decrease only when stalls exceed SM0's.
  DynThrottle d(dyn_cfg(), 2);
  d.on_period_end({100, 100});
  EXPECT_DOUBLE_EQ(d.probability(1), 1.0);
}

TEST(Dyn, ProbabilitySaturatesAtZeroAndOne) {
  DynThrottle d(dyn_cfg(), 2);
  for (int i = 0; i < 20; ++i) d.on_period_end({0, 100});
  EXPECT_DOUBLE_EQ(d.probability(1), 0.0);
  for (int i = 0; i < 20; ++i) d.on_period_end({100, 0});
  EXPECT_DOUBLE_EQ(d.probability(1), 1.0);
}

TEST(Dyn, RecoversInStepsOfP) {
  DynThrottle d(dyn_cfg(), 2);
  d.on_period_end({0, 100});
  d.on_period_end({0, 100});
  EXPECT_DOUBLE_EQ(d.probability(1), 0.8);
  d.on_period_end({100, 0});
  EXPECT_DOUBLE_EQ(d.probability(1), 0.9);
}

TEST(Dyn, IntermediateProbabilityGatesFractionally) {
  DynThrottle d(dyn_cfg(), 2);
  for (int i = 0; i < 5; ++i) d.on_period_end({0, 100});  // p = 0.5
  EXPECT_DOUBLE_EQ(d.probability(1), 0.5);
  int allowed = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (d.allow(1, static_cast<Cycle>(i), static_cast<std::uint64_t>(i) * 977))
      ++allowed;
  }
  EXPECT_NEAR(static_cast<double>(allowed) / kTrials, 0.5, 0.05);
}

TEST(Dyn, GateIsDeterministic) {
  DynThrottle d(dyn_cfg(), 2);
  for (int i = 0; i < 5; ++i) d.on_period_end({0, 100});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.allow(1, 17, 3), d.allow(1, 17, 3));
  }
}

TEST(Dyn, PeriodComesFromConfig) {
  SharingConfig c = dyn_cfg();
  c.dyn_period = 2500;
  DynThrottle d(c, 2);
  EXPECT_EQ(d.period(), 2500u);
}

TEST(Dyn, CustomStepSize) {
  SharingConfig c = dyn_cfg();
  c.dyn_step = 0.25;
  DynThrottle d(c, 2);
  d.on_period_end({0, 10});
  EXPECT_DOUBLE_EQ(d.probability(1), 0.75);
}

}  // namespace
}  // namespace grs
