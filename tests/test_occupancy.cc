// Occupancy calculator: baseline residency, wastage, and the Eq. 1-4 sharing
// plan — validated against every cell of the paper's Tables VI and VIII and
// the Fig. 1 motivation numbers.
#include <gtest/gtest.h>

#include <tuple>

#include "common/config.h"
#include "core/occupancy.h"
#include "workloads/suites.h"

namespace grs {
namespace {

GpuConfig sharing_cfg(Resource res, double pct_sharing) {
  return configs::shared_noopt(res, 1.0 - pct_sharing / 100.0);
}

// ---------------------------------------------------------------------------
// Baseline residency & wastage (paper Fig. 1, §I motivation)
// ---------------------------------------------------------------------------

TEST(OccupancyBaseline, HotspotMotivationNumbersFromPaper) {
  // §I-A: 36 regs x 256 threads = 9216/block; ⌊32768/9216⌋ = 3 blocks;
  // 5120 registers per SM wasted.
  const Occupancy o =
      compute_occupancy(configs::unshared(), KernelResources{256, 36, 0});
  EXPECT_EQ(o.baseline_blocks, 3u);
  EXPECT_EQ(o.limiter, Resource::kRegisters);
  EXPECT_NEAR(o.baseline_waste_percent, 100.0 * 5120.0 / 32768.0, 1e-9);
}

TEST(OccupancyBaseline, LavaMdMotivationNumbersFromPaper) {
  // §I-A: 7200B/block, 16384B per SM -> 2 blocks, 1984B wasted.
  const Occupancy o =
      compute_occupancy(configs::unshared(), KernelResources{128, 20, 7200});
  EXPECT_EQ(o.baseline_blocks, 2u);
  EXPECT_EQ(o.limiter, Resource::kScratchpad);
  EXPECT_NEAR(o.baseline_waste_percent, 100.0 * 1984.0 / 16384.0, 1e-9);
}

struct BaselineCase {
  const char* name;
  std::uint32_t expect_blocks;
  Resource expect_limiter;
};

class BaselineResidency : public ::testing::TestWithParam<BaselineCase> {};

// Paper Fig. 1(a): Set-1 resident blocks; Fig. 1(c): Set-2; Table IV limits.
INSTANTIATE_TEST_SUITE_P(
    PaperFig1, BaselineResidency,
    ::testing::Values(
        BaselineCase{"backprop", 5, Resource::kRegisters},
        BaselineCase{"b+tree", 2, Resource::kRegisters},
        BaselineCase{"hotspot", 3, Resource::kRegisters},
        BaselineCase{"LIB", 4, Resource::kRegisters},
        BaselineCase{"MUM", 4, Resource::kRegisters},
        BaselineCase{"mri-q", 5, Resource::kRegisters},
        BaselineCase{"sgemm", 5, Resource::kRegisters},
        BaselineCase{"stencil", 2, Resource::kRegisters},
        BaselineCase{"CONV1", 6, Resource::kScratchpad},
        BaselineCase{"CONV2", 3, Resource::kScratchpad},
        BaselineCase{"lavaMD", 2, Resource::kScratchpad},
        BaselineCase{"NW1", 7, Resource::kScratchpad},
        BaselineCase{"NW2", 7, Resource::kScratchpad},
        BaselineCase{"SRAD1", 2, Resource::kScratchpad},
        BaselineCase{"SRAD2", 3, Resource::kScratchpad},
        BaselineCase{"backprop-L", 6, Resource::kThreads},
        BaselineCase{"BFS", 3, Resource::kThreads},
        BaselineCase{"gaussian", 8, Resource::kBlocks},
        BaselineCase{"NN", 8, Resource::kBlocks}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_P(BaselineResidency, MatchesPaper) {
  const KernelInfo k = workloads::by_name(GetParam().name);
  const Occupancy o = compute_occupancy(configs::unshared(), k.resources);
  EXPECT_EQ(o.baseline_blocks, GetParam().expect_blocks);
  EXPECT_EQ(o.limiter, GetParam().expect_limiter);
}

// ---------------------------------------------------------------------------
// Table VI: resident blocks vs register-sharing percentage — every cell.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* name;
  std::array<std::uint32_t, 6> blocks;  // at 0/10/30/50/70/90 % sharing
};

class TableVI : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    PaperTableVI, TableVI,
    ::testing::Values(SweepCase{"backprop", {5, 5, 5, 5, 6, 6}},
                      SweepCase{"b+tree", {2, 2, 2, 3, 3, 3}},
                      SweepCase{"hotspot", {3, 3, 3, 4, 4, 6}},
                      SweepCase{"LIB", {4, 4, 5, 5, 6, 8}},
                      SweepCase{"MUM", {4, 4, 4, 5, 5, 6}},
                      SweepCase{"mri-q", {5, 5, 5, 5, 6, 6}},
                      SweepCase{"sgemm", {5, 5, 5, 5, 6, 8}},
                      SweepCase{"stencil", {2, 2, 2, 2, 2, 3}}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_P(TableVI, EveryCellMatchesPaper) {
  const KernelInfo k = workloads::by_name(GetParam().name);
  const double pct[] = {0, 10, 30, 50, 70, 90};
  for (int i = 0; i < 6; ++i) {
    const Occupancy o =
        compute_occupancy(sharing_cfg(Resource::kRegisters, pct[i]), k.resources);
    EXPECT_EQ(o.total_blocks, GetParam().blocks[i])
        << k.name << " at " << pct[i] << "% sharing";
  }
}

// ---------------------------------------------------------------------------
// Table VIII: resident blocks vs scratchpad-sharing percentage — every cell.
// ---------------------------------------------------------------------------

class TableVIII : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    PaperTableVIII, TableVIII,
    ::testing::Values(SweepCase{"CONV1", {6, 6, 6, 6, 7, 8}},
                      SweepCase{"CONV2", {3, 3, 3, 3, 3, 4}},
                      SweepCase{"lavaMD", {2, 2, 2, 2, 2, 4}},
                      SweepCase{"NW1", {7, 7, 7, 8, 8, 8}},
                      SweepCase{"NW2", {7, 7, 7, 8, 8, 8}},
                      SweepCase{"SRAD1", {2, 2, 2, 3, 4, 4}},
                      SweepCase{"SRAD2", {3, 3, 3, 3, 3, 5}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(TableVIII, EveryCellMatchesPaper) {
  const KernelInfo k = workloads::by_name(GetParam().name);
  const double pct[] = {0, 10, 30, 50, 70, 90};
  for (int i = 0; i < 6; ++i) {
    const Occupancy o =
        compute_occupancy(sharing_cfg(Resource::kScratchpad, pct[i]), k.resources);
    EXPECT_EQ(o.total_blocks, GetParam().blocks[i])
        << k.name << " at " << pct[i] << "% sharing";
  }
}

// ---------------------------------------------------------------------------
// Structural invariants of the sharing plan (Eq. 1-4), swept over kernels
// and thresholds.
// ---------------------------------------------------------------------------

class PlanInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllThresholds, PlanInvariants,
    ::testing::Combine(::testing::ValuesIn(workloads::all_names()),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 1.0)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_t" +
                      std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
      return n;
    });

TEST_P(PlanInvariants, Eq1Through4Hold) {
  const KernelInfo k = workloads::by_name(std::get<0>(GetParam()));
  const double t = std::get<1>(GetParam());
  for (const Resource res : {Resource::kRegisters, Resource::kScratchpad}) {
    GpuConfig cfg = configs::shared_noopt(res, t);
    const Occupancy o = compute_occupancy(cfg, k.resources);

    // Eq. 3: M = U + 2S.
    EXPECT_EQ(o.total_blocks, o.unshared_blocks + 2 * o.shared_pairs);
    // Eq. 1: effective blocks preserved.
    EXPECT_EQ(o.effective_blocks(), o.baseline_blocks);
    EXPECT_GE(o.effective_blocks(), o.baseline_blocks);
    // Pairing bound.
    EXPECT_LE(o.total_blocks, 2 * o.baseline_blocks);
    // Residency caps.
    const std::uint32_t warps = k.resources.warps_per_block(cfg.warp_size);
    EXPECT_LE(o.total_blocks * warps, cfg.max_warps_per_sm());
    EXPECT_LE(o.total_blocks, cfg.max_blocks_per_sm);
    // Eq. 2: capacity of the shared resource.
    if (o.sharing_active && res == Resource::kRegisters) {
      const std::uint64_t rtb = k.resources.regs_per_block();
      const std::uint64_t used =
          o.unshared_blocks * rtb +
          o.shared_pairs * (rtb + static_cast<std::uint64_t>(rtb * t));
      EXPECT_LE(used, cfg.registers_per_sm);
    }
    // Sharing never activates on a non-limiting resource.
    if (res != o.limiter) {
      EXPECT_FALSE(o.sharing_active);
    }
    // t = 1.0 (0% sharing) never adds blocks.
    if (t == 1.0) {
      EXPECT_EQ(o.total_blocks, o.baseline_blocks);
    }
  }
}

TEST(OccupancyMonotonic, BlocksNonDecreasingAsSharingGrows) {
  for (const auto& name : workloads::all_names()) {
    const KernelInfo k = workloads::by_name(name);
    for (const Resource res : {Resource::kRegisters, Resource::kScratchpad}) {
      std::uint32_t prev = 0;
      for (const double pct : {0.0, 10.0, 30.0, 50.0, 70.0, 90.0}) {
        const Occupancy o = compute_occupancy(sharing_cfg(res, pct), k.resources);
        EXPECT_GE(o.total_blocks, prev) << name << " " << pct;
        prev = o.total_blocks;
      }
    }
  }
}

TEST(OccupancyThresholds, PrivatePartitionMatchesFig3And4) {
  // hotspot at 90% sharing: floor(36 * 0.1) = 3 private registers/thread.
  const Occupancy reg = compute_occupancy(sharing_cfg(Resource::kRegisters, 90),
                                          KernelResources{256, 36, 0});
  EXPECT_TRUE(reg.sharing_active);
  EXPECT_EQ(reg.unshared_regs_per_thread, 3u);

  // SRAD1 at 50% sharing: floor(6144 * 0.5) = 3072 private bytes.
  const Occupancy smem = compute_occupancy(sharing_cfg(Resource::kScratchpad, 50),
                                           KernelResources{256, 16, 6144});
  EXPECT_TRUE(smem.sharing_active);
  EXPECT_EQ(smem.unshared_smem_bytes, 3072u);
}

TEST(OccupancyEdge, KernelWithNoSmemNeverScratchpadLimited) {
  const Occupancy o =
      compute_occupancy(configs::unshared(), KernelResources{256, 20, 0});
  EXPECT_NE(o.limiter, Resource::kScratchpad);
}

TEST(OccupancyEdge, SingleWarpBlocks) {
  // 32-thread blocks, tiny demand: blocks cap (8) binds.
  const Occupancy o =
      compute_occupancy(configs::unshared(), KernelResources{32, 4, 0});
  EXPECT_EQ(o.baseline_blocks, 8u);
  EXPECT_EQ(o.limiter, Resource::kBlocks);
}

TEST(OccupancyEdge, OtherResourceCapsSharedBlocks) {
  // Register-limited kernel whose scratchpad use caps the extra blocks:
  // regs: 36*256=9216 -> D=3, Eq.4 at t=0.1 -> 6; but 4096B scratchpad/block
  // allows only 4 blocks, so M = 4.
  const Occupancy o = compute_occupancy(sharing_cfg(Resource::kRegisters, 90),
                                        KernelResources{256, 36, 4096});
  EXPECT_EQ(o.limiter, Resource::kRegisters);
  EXPECT_EQ(o.baseline_blocks, 3u);
  EXPECT_EQ(o.total_blocks, 4u);
}

TEST(OccupancyEdge, DoubledRegistersDoubleBaseline) {
  GpuConfig cfg = configs::unshared();
  cfg.registers_per_sm = 65536;
  const Occupancy o = compute_occupancy(cfg, KernelResources{256, 36, 0});
  EXPECT_EQ(o.baseline_blocks, 6u);  // paper Fig. 11(a) baseline
}

}  // namespace
}  // namespace grs
