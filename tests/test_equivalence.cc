// Cross-mode equivalence: exec_mode = kEvent must produce statistics
// bit-identical to the naive exec_mode = kCycle loop — same cycles, same
// per-class scheduler accounting, same per-warp blocked counters, same
// L1/L2/DRAM traffic — across kernels, schedulers, and sharing runtimes.
// This is the contract that lets every bench default to the fast loop.
#include <gtest/gtest.h>

#include <string>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

namespace grs {
namespace {

KernelInfo shrink(KernelInfo k, std::uint32_t blocks) {
  k.grid_blocks = blocks;
  return k;
}

/// Run `kernel` under both execution modes and assert identical stats.
void expect_equivalent(GpuConfig cfg, const KernelInfo& kernel,
                       const std::string& what) {
  cfg.exec_mode = ExecMode::kCycle;
  const SimResult naive = simulate(cfg, kernel);
  cfg.exec_mode = ExecMode::kEvent;
  const SimResult event = simulate(cfg, kernel);

  EXPECT_TRUE(naive.stats == event.stats) << what;
  // On mismatch, name the first diverging headline counters for diagnosis.
  EXPECT_EQ(naive.stats.cycles, event.stats.cycles) << what;
  EXPECT_EQ(naive.stats.sm_total.issued_cycles, event.stats.sm_total.issued_cycles)
      << what;
  EXPECT_EQ(naive.stats.sm_total.stall_cycles, event.stats.sm_total.stall_cycles)
      << what;
  EXPECT_EQ(naive.stats.sm_total.idle_cycles, event.stats.sm_total.idle_cycles) << what;
  EXPECT_EQ(naive.stats.sm_total.lock_wait_cycles, event.stats.sm_total.lock_wait_cycles)
      << what;
  EXPECT_EQ(naive.stats.sm_total.dyn_throttled_issues,
            event.stats.sm_total.dyn_throttled_issues)
      << what;
  EXPECT_EQ(naive.stats.l2_accesses, event.stats.l2_accesses) << what;
  EXPECT_EQ(naive.stats.dram_requests, event.stats.dram_requests) << what;
}

GpuConfig sharing_line(SchedulerKind sched, int line) {
  GpuConfig c;
  switch (line) {
    case 0: c = configs::unshared(); break;
    case 1: c = configs::shared_noopt(Resource::kRegisters, 0.1); break;
    case 2: c = configs::shared_noopt(Resource::kScratchpad, 0.1); break;
    case 3: c = configs::shared_unroll_dyn(Resource::kRegisters, 0.1); break;
  }
  c.scheduler = sched;
  c.sharing.owf = c.sharing.enabled && sched == SchedulerKind::kOwf;
  return c;
}

constexpr const char* kLineNames[] = {"unshared", "shared-reg", "shared-smem",
                                      "shared-reg-unroll-dyn"};

// The ISSUE grid: kernels x {LRR, GTO, two-level, OWF} x {no sharing,
// register sharing, scratchpad sharing, +dyn}. Kernels cover one per paper
// set (register-limited, scratchpad-limited, thread/block-limited) at a
// shrunken grid so one point simulates in milliseconds.
TEST(Equivalence, KernelsBySchedulersBySharing) {
  const KernelInfo kernels[] = {shrink(workloads::hotspot(), 8),
                                shrink(workloads::lavamd(), 8),
                                shrink(workloads::bfs(), 8)};
  const SchedulerKind scheds[] = {SchedulerKind::kLrr, SchedulerKind::kGto,
                                  SchedulerKind::kTwoLevel, SchedulerKind::kOwf};
  for (const KernelInfo& k : kernels) {
    for (const SchedulerKind sched : scheds) {
      for (int line = 0; line < 4; ++line) {
        const GpuConfig cfg = sharing_line(sched, line);
        expect_equivalent(cfg, k,
                          k.name + " / " + to_string(sched) + " / " + kLineNames[line]);
      }
    }
  }
}

// Full-size memory-bound kernel: long idle windows, deep sleep/jump paths.
TEST(Equivalence, FullSizeMemoryBoundKernel) {
  expect_equivalent(configs::unshared(), workloads::btree(), "b+tree full grid");
}

// Full-size Dyn line: fractional gate probabilities pin SMs to single
// stepping and monitoring boundaries bound every idle window.
TEST(Equivalence, FullSizeDynThrottledKernel) {
  expect_equivalent(configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1),
                    shrink(workloads::btree(), 84), "b+tree shared-owf-unroll-dyn");
}

// The max_cycles cap must land on the same cycle in both modes, including
// when it strikes in the middle of an idle window or clock jump.
TEST(Equivalence, MaxCyclesCapMidWindow) {
  for (const Cycle cap : {100u, 1234u, 54002u}) {
    GpuConfig cfg = configs::unshared();
    cfg.max_cycles = cap;
    expect_equivalent(cfg, shrink(workloads::btree(), 56),
                      "b+tree capped at " + std::to_string(cap));
    GpuConfig dyn_cfg = configs::shared_unroll_dyn(Resource::kRegisters, 0.1);
    dyn_cfg.max_cycles = cap;
    expect_equivalent(dyn_cfg, shrink(workloads::btree(), 56),
                      "b+tree dyn capped at " + std::to_string(cap));
  }
}

}  // namespace
}  // namespace grs
