// Kernel IR: builder, program validation, cursor semantics, and the
// unroll/reorder pass (paper §IV-B).
#include <gtest/gtest.h>

#include "isa/analysis.h"
#include "isa/builder.h"
#include "isa/program.h"
#include "isa/reorder.h"
#include "workloads/suites.h"

namespace grs {
namespace {

Program small_program() {
  ProgramBuilder b(8);
  b.alu(0).alu(1, 0);
  b.loop(3, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.alu(3, 2, 1);
  });
  b.st_global(3, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  return b.build();
}

// --- builder / program ----------------------------------------------------

TEST(Builder, AppendsExitAndValidates) {
  const Program p = small_program();
  EXPECT_EQ(p.segments().back().instrs.back().op, Op::kExit);
  EXPECT_EQ(p.num_regs(), 8);
}

TEST(Builder, DynamicLengthCountsLoopIterations) {
  const Program p = small_program();
  // 2 (prologue) + 3 iterations x 2 + 1 (store) + 1 (exit) = 10.
  EXPECT_EQ(p.dynamic_length(), 10u);
  EXPECT_EQ(p.static_length(), 6u);
}

TEST(Builder, LoopsBecomeTheirOwnSegments) {
  const Program p = small_program();
  ASSERT_EQ(p.segments().size(), 3u);
  EXPECT_EQ(p.segments()[0].iterations, 1u);
  EXPECT_EQ(p.segments()[1].iterations, 3u);
  EXPECT_EQ(p.segments()[2].iterations, 1u);
}

TEST(Builder, AluChainCyclesThroughRing) {
  ProgramBuilder b(4);
  b.alu_chain(6, {0, 1, 2});
  const Program p = b.build();
  EXPECT_EQ(p.dynamic_length(), 7u);  // 6 + exit
}

TEST(BuilderDeath, NestedLoopsRejected) {
  ProgramBuilder b(4);
  EXPECT_DEATH(b.loop(2, [](ProgramBuilder& outer) {
    outer.loop(2, [](ProgramBuilder& inner) { inner.alu(0); });
  }),
               "nested loops");
}

TEST(BuilderDeath, EmptyLoopBodyRejected) {
  ProgramBuilder b(4);
  EXPECT_DEATH(b.loop(2, [](ProgramBuilder&) {}), "empty loop body");
}

TEST(ProgramDeath, RegisterOutOfRangeRejected) {
  ProgramBuilder b(4);
  b.alu(5);  // register 5 with num_regs 4
  EXPECT_DEATH((void)b.build(), "register number out of range");
}

TEST(Instruction, MaxRegConsidersAllOperands) {
  Instruction i;
  i.dst = 3;
  i.src0 = 7;
  i.src1 = 1;
  EXPECT_EQ(i.max_reg(), 7);
  Instruction bar;
  bar.op = Op::kBarrier;
  EXPECT_EQ(bar.max_reg(), kNoReg);
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(is_global_mem(Op::kLdGlobal));
  EXPECT_TRUE(is_global_mem(Op::kStGlobal));
  EXPECT_TRUE(is_shared_mem(Op::kLdShared));
  EXPECT_FALSE(is_global_mem(Op::kLdShared));
  EXPECT_TRUE(is_mem(Op::kStShared));
  EXPECT_FALSE(is_mem(Op::kAlu));
  EXPECT_TRUE(is_load(Op::kLdGlobal));
  EXPECT_FALSE(is_load(Op::kStGlobal));
}

TEST(Opcode, TransactionsPerPattern) {
  EXPECT_EQ(transactions_per_access(MemPattern::kCoalesced), 1u);
  EXPECT_EQ(transactions_per_access(MemPattern::kStrided2), 2u);
  EXPECT_EQ(transactions_per_access(MemPattern::kStrided4), 4u);
  EXPECT_EQ(transactions_per_access(MemPattern::kScatter8), 8u);
  EXPECT_EQ(transactions_per_access(MemPattern::kScatter32), 32u);
}

// --- cursor -----------------------------------------------------------------

TEST(Cursor, WalksExactlyDynamicLength) {
  const Program p = small_program();
  ProgramCursor c(p);
  std::uint64_t n = 0;
  while (c.peek(p) != nullptr) {
    c.advance(p);
    ++n;
  }
  EXPECT_EQ(n, p.dynamic_length());
  EXPECT_TRUE(c.done(p));
  EXPECT_EQ(c.consumed(), n);
}

TEST(Cursor, LoopBodyRepeatsInOrder) {
  ProgramBuilder b(4);
  b.loop(2, [](ProgramBuilder& l) { l.alu(0).alu(1, 0); });
  const Program p = b.build();
  ProgramCursor c(p);
  // iteration 1
  EXPECT_EQ(c.peek(p)->dst, 0);
  c.advance(p);
  EXPECT_EQ(c.peek(p)->dst, 1);
  c.advance(p);
  // iteration 2
  EXPECT_EQ(c.peek(p)->dst, 0);
  c.advance(p);
  EXPECT_EQ(c.peek(p)->dst, 1);
  c.advance(p);
  EXPECT_EQ(c.peek(p)->op, Op::kExit);
}

// --- unroll/reorder pass -----------------------------------------------------

TEST(Reorder, PermutationIsBijective) {
  for (const auto& name : workloads::all_names()) {
    const Program p = workloads::by_name(name).program;
    const std::vector<RegNum> map = first_use_permutation(p);
    std::vector<bool> seen(p.num_regs(), false);
    for (RegNum r : map) {
      ASSERT_LT(r, p.num_regs());
      EXPECT_FALSE(seen[r]) << name;
      seen[r] = true;
    }
  }
}

TEST(Reorder, FirstUseOrderIsMonotonicAfterPass) {
  for (const auto& name : workloads::all_names()) {
    const Program p = reorder_registers_by_first_use(workloads::by_name(name).program);
    RegNum next_expected = 0;
    for (const auto& s : p.segments()) {
      for (const auto& i : s.instrs) {
        for (RegNum r : {i.src0, i.src1, i.dst}) {
          if (r == kNoReg) continue;
          if (r == next_expected) ++next_expected;
          EXPECT_LE(r, next_expected) << name << ": register " << r
                                      << " first used before " << next_expected;
        }
      }
    }
  }
}

TEST(Reorder, IdempotentOnReorderedPrograms) {
  const Program p = reorder_registers_by_first_use(workloads::hotspot().program);
  const Program q = reorder_registers_by_first_use(p);
  ASSERT_EQ(p.segments().size(), q.segments().size());
  for (std::size_t s = 0; s < p.segments().size(); ++s) {
    ASSERT_EQ(p.segments()[s].instrs.size(), q.segments()[s].instrs.size());
    for (std::size_t i = 0; i < p.segments()[s].instrs.size(); ++i) {
      EXPECT_EQ(p.segments()[s].instrs[i].dst, q.segments()[s].instrs[i].dst);
      EXPECT_EQ(p.segments()[s].instrs[i].src0, q.segments()[s].instrs[i].src0);
    }
  }
}

TEST(Reorder, PreservesEverythingExceptRegisterNumbers) {
  const Program p = workloads::sgemm().program;
  const Program q = reorder_registers_by_first_use(p);
  EXPECT_EQ(p.dynamic_length(), q.dynamic_length());
  ASSERT_EQ(p.segments().size(), q.segments().size());
  for (std::size_t s = 0; s < p.segments().size(); ++s) {
    EXPECT_EQ(p.segments()[s].iterations, q.segments()[s].iterations);
    for (std::size_t i = 0; i < p.segments()[s].instrs.size(); ++i) {
      const Instruction& a = p.segments()[s].instrs[i];
      const Instruction& b = q.segments()[s].instrs[i];
      EXPECT_EQ(a.op, b.op);
      EXPECT_EQ(a.pattern, b.pattern);
      EXPECT_EQ(a.locality, b.locality);
      EXPECT_EQ(a.region, b.region);
      EXPECT_EQ(a.smem_offset, b.smem_offset);
      EXPECT_EQ(a.dst == kNoReg, b.dst == kNoReg);
    }
  }
}

TEST(Reorder, NeverShortensTheUnsharedPrefix) {
  // The pass exists to let non-owner warps run further before their first
  // shared-register access (paper §IV-B); it must never make things worse.
  for (const auto& name : workloads::all_names()) {
    const KernelInfo k = workloads::by_name(name);
    const Program reordered = reorder_registers_by_first_use(k.program);
    for (const double t : {0.1, 0.3, 0.5}) {
      const auto thresh = static_cast<RegNum>(k.resources.regs_per_thread * t);
      if (thresh == 0) continue;
      EXPECT_GE(instructions_before_shared_reg(reordered, thresh),
                instructions_before_shared_reg(k.program, thresh))
          << name << " t=" << t;
    }
  }
}

// --- analysis ----------------------------------------------------------------

TEST(Analysis, MixSummaryCounts) {
  const MixSummary m = summarize_mix(small_program());
  EXPECT_EQ(m.alu, 2u + 3u);
  EXPECT_EQ(m.global_mem, 3u + 1u);
  EXPECT_EQ(m.total, 10u);
  EXPECT_NEAR(m.mem_fraction(), 0.4, 1e-9);
}

TEST(Analysis, SharedRegDepthFullLengthWhenNoSharedAccess) {
  ProgramBuilder b(8);
  b.alu(0).alu(1, 0);
  const Program p = b.build();
  EXPECT_EQ(instructions_before_shared_reg(p, 2), p.dynamic_length());
  EXPECT_EQ(instructions_before_shared_reg(p, 1), 1u);  // blocked at alu(1,..)
}

TEST(Analysis, SharedSmemDepthHonoursThreshold) {
  ProgramBuilder b(4);
  b.ld_shared(0, 100);
  b.ld_shared(1, 900);
  const Program p = b.build();
  EXPECT_EQ(instructions_before_shared_smem(p, 1000), p.dynamic_length());
  EXPECT_EQ(instructions_before_shared_smem(p, 500), 1u);
  EXPECT_EQ(instructions_before_shared_smem(p, 50), 0u);
}

TEST(Analysis, LavaMdNeverTouchesSharedRegionAt90Percent) {
  // Paper §VI-B: no lavaMD scratchpad access falls into the shared region.
  const KernelInfo k = workloads::lavamd();
  const std::uint32_t private_bytes =
      static_cast<std::uint32_t>(k.resources.smem_per_block * 0.1);
  EXPECT_EQ(instructions_before_shared_smem(k.program, private_bytes),
            k.program.dynamic_length());
}

}  // namespace
}  // namespace grs
