// Sharing-study engine (src/study/): plan construction, aggregation over
// hand-built result grids with known peaks, emitter goldens, and byte-identity
// of the generated reports across worker counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/engine.h"
#include "study/aggregate.h"
#include "study/plan.h"
#include "study/report.h"
#include "workloads/gen/generator.h"
#include "workloads/gen/profile.h"

namespace grs {
namespace {

using study::CellSeries;
using study::FamilyAggregation;
using study::StudyAggregation;
using study::StudyGrid;
using study::StudyPlan;
using workloads::gen::StudyAxes;

// --- axis-parameterized profiles ------------------------------------------------

TEST(StudyProfile, PinsEveryAxisValue) {
  for (std::uint32_t regs : {16u, 28u, 36u, 44u}) {
    for (std::uint32_t smem : {0u, 3072u, 6144u}) {
      for (std::uint32_t mem : {0u, 1u, 2u}) {
        for (std::uint32_t lanes : {32u, 16u, 8u}) {
          const StudyAxes axes{regs, smem, mem, lanes};
          const KernelInfo k = workloads::gen::generate(workloads::gen::study_profile(axes), 1);
          k.validate();
          EXPECT_EQ(k.resources.regs_per_thread, regs);
          EXPECT_EQ(k.resources.smem_per_block, smem);
          EXPECT_EQ(k.resources.threads_per_block, 256u);
          EXPECT_EQ(k.active_lanes, lanes);
          EXPECT_EQ(k.grid_blocks, 84u);
          EXPECT_EQ(k.name, "gen-study-" + axes.tag() + "-1");
        }
      }
    }
  }
}

TEST(StudyProfile, TagIsAddressableThroughProfileByName) {
  const StudyAxes axes{44, 0, 2, 32};
  const auto p = workloads::gen::profile_by_name("study-r44-sm0-m2-l32");
  EXPECT_EQ(p.name, workloads::gen::study_profile(axes).name);
  EXPECT_THROW(workloads::gen::profile_by_name("study-r44-sm0-m9-l32"), std::runtime_error);
  EXPECT_THROW(workloads::gen::profile_by_name("study-r44"), std::runtime_error);
  EXPECT_THROW(workloads::gen::profile_by_name("study-r44-sm04-m2-l32"), std::runtime_error);
}

// --- plan ------------------------------------------------------------------------

StudyGrid tiny_grid() {
  StudyGrid g;
  g.regs = {16, 44};
  g.staging = {0};
  g.memory = {1};
  g.lanes = {32};
  g.percents = {0, 50, 90};
  g.seed = 1;
  return g;
}

TEST(StudyPlanTest, CellOrderAndSweepShape) {
  const StudyPlan plan = study::build_plan(tiny_grid(), "");
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cells[0].axes.regs_per_thread, 16u);
  EXPECT_EQ(plan.cells[1].axes.regs_per_thread, 44u);
  EXPECT_TRUE(plan.corpus.empty());

  const runner::SweepSpec spec = study::to_sweep_spec(plan);
  // No cell declares scratchpad, so only the register family is planned.
  ASSERT_EQ(spec.size(), 2u * 3u);
  EXPECT_EQ(spec.points[0].variant, "reg 0%");
  EXPECT_EQ(spec.points[2].variant, "reg 90%");
  EXPECT_EQ(spec.points[0].config.sharing.resource, Resource::kRegisters);
  EXPECT_DOUBLE_EQ(spec.points[0].config.sharing.threshold_t, 1.0);
  EXPECT_NEAR(spec.points[2].config.sharing.threshold_t, 0.1, 1e-12);
}

TEST(StudyPlanTest, ScratchpadFamilyOnlyForStagingCells) {
  StudyGrid g = tiny_grid();
  g.staging = {0, 3072};
  const StudyPlan plan = study::build_plan(g, "");
  const runner::SweepSpec spec = study::to_sweep_spec(plan);
  // 4 cells x 3 register percents + 2 staging cells x 3 scratchpad percents.
  EXPECT_EQ(spec.size(), 4u * 3u + 2u * 3u);
  EXPECT_EQ(study::variant_label(Resource::kScratchpad, 90), "smem 90%");
}

// --- aggregation over a hand-built result grid -----------------------------------

/// A fake completed sweep: one row per (variant, kernel) with the given IPC
/// (as thread instructions over 1000 cycles) and resident block count.
runner::SweepRow fake_row(const std::string& variant, const KernelInfo& kernel, double ipc,
                          std::uint32_t blocks) {
  runner::SweepRow row;
  row.point.variant = variant;
  row.point.kernel = kernel;
  row.result.stats.cycles = 1000;
  row.result.stats.sm_total.thread_instructions = static_cast<std::uint64_t>(ipc * 1000.0);
  row.result.occupancy.total_blocks = blocks;
  return row;
}

TEST(StudyAggregate, DetectsKnownPeaksAndMarginals) {
  const StudyPlan plan = study::build_plan(tiny_grid(), "");
  std::vector<runner::SweepRow> rows;
  // regs=16 cell: flat at 100 — no gain, peak stays at the 0% baseline.
  rows.push_back(fake_row("reg 0%", plan.cells[0].kernel, 100, 6));
  rows.push_back(fake_row("reg 50%", plan.cells[0].kernel, 100, 6));
  rows.push_back(fake_row("reg 90%", plan.cells[0].kernel, 100, 6));
  // regs=44 cell: flat then +30% at 90% with two extra blocks.
  rows.push_back(fake_row("reg 0%", plan.cells[1].kernel, 100, 2));
  rows.push_back(fake_row("reg 50%", plan.cells[1].kernel, 100, 2));
  rows.push_back(fake_row("reg 90%", plan.cells[1].kernel, 130, 4));

  const StudyAggregation agg = study::aggregate(plan, runner::BenchView(rows));
  const FamilyAggregation& fam = agg.registers;
  ASSERT_EQ(fam.cells.size(), 2u);
  EXPECT_EQ(fam.skipped, 0u);

  EXPECT_DOUBLE_EQ(fam.cells[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(fam.cells[0].peak_percent, 0.0);
  EXPECT_DOUBLE_EQ(fam.cells[1].speedup, 1.3);
  EXPECT_DOUBLE_EQ(fam.cells[1].peak_percent, 90.0);
  EXPECT_EQ(fam.cells[1].baseline_blocks, 2u);
  EXPECT_EQ(fam.cells[1].peak_blocks, 4u);

  // Marginals: one row per regs level, means over exactly one cell each.
  ASSERT_EQ(fam.by_regs.size(), 2u);
  EXPECT_EQ(fam.by_regs[0].level, "16");
  EXPECT_DOUBLE_EQ(fam.by_regs[0].mean_speedup, 1.0);
  EXPECT_DOUBLE_EQ(fam.by_regs[1].mean_speedup, 1.3);
  EXPECT_DOUBLE_EQ(fam.by_regs[1].mean_extra_blocks, 2.0);
  EXPECT_DOUBLE_EQ(fam.by_regs[1].mean_peak_percent, 90.0);

  // Peak histogram: one cell at 0%, one at 90%.
  ASSERT_EQ(fam.peak_histogram.size(), 3u);
  EXPECT_EQ(fam.peak_histogram[0], 1u);
  EXPECT_EQ(fam.peak_histogram[1], 0u);
  EXPECT_EQ(fam.peak_histogram[2], 1u);

  // Surface: regs rows x one memory column.
  ASSERT_EQ(fam.surface.size(), 2u);
  ASSERT_EQ(fam.surface[0].size(), 1u);
  EXPECT_DOUBLE_EQ(fam.surface[0][0], 1.0);
  EXPECT_DOUBLE_EQ(fam.surface[1][0], 1.3);

  // The scratchpad family has no applicable kernels at all.
  EXPECT_TRUE(agg.scratchpad.cells.empty());
  EXPECT_EQ(agg.scratchpad.skipped, 0u);
}

TEST(StudyAggregate, IncompleteSeriesAreSkippedNotInvented) {
  const StudyPlan plan = study::build_plan(tiny_grid(), "");
  std::vector<runner::SweepRow> rows;
  rows.push_back(fake_row("reg 0%", plan.cells[0].kernel, 100, 6));  // 50%/90% missing
  rows.push_back(fake_row("reg 0%", plan.cells[1].kernel, 100, 2));
  rows.push_back(fake_row("reg 50%", plan.cells[1].kernel, 100, 2));
  rows.push_back(fake_row("reg 90%", plan.cells[1].kernel, 130, 4));
  const StudyAggregation agg = study::aggregate(plan, runner::BenchView(rows));
  ASSERT_EQ(agg.registers.cells.size(), 1u);
  EXPECT_EQ(agg.registers.cells[0].axes.regs_per_thread, 44u);
  EXPECT_EQ(agg.registers.skipped, 1u);
}

TEST(StudyAggregate, TiesResolveToLowestPercent) {
  const StudyPlan plan = study::build_plan(tiny_grid(), "");
  std::vector<runner::SweepRow> rows;
  for (const study::StudyCell& cell : plan.cells) {
    rows.push_back(fake_row("reg 0%", cell.kernel, 100, 2));
    rows.push_back(fake_row("reg 50%", cell.kernel, 120, 3));
    rows.push_back(fake_row("reg 90%", cell.kernel, 120, 4));
  }
  const StudyAggregation agg = study::aggregate(plan, runner::BenchView(rows));
  EXPECT_DOUBLE_EQ(agg.registers.cells[0].peak_percent, 50.0);
  EXPECT_EQ(agg.registers.cells[0].peak_blocks, 3u);
}

// --- emitter goldens -------------------------------------------------------------

StudyAggregation golden_aggregation() {
  const StudyPlan plan = study::build_plan(tiny_grid(), "");
  std::vector<runner::SweepRow> rows;
  rows.push_back(fake_row("reg 0%", plan.cells[0].kernel, 100, 6));
  rows.push_back(fake_row("reg 50%", plan.cells[0].kernel, 100, 6));
  rows.push_back(fake_row("reg 90%", plan.cells[0].kernel, 100, 6));
  rows.push_back(fake_row("reg 0%", plan.cells[1].kernel, 100, 2));
  rows.push_back(fake_row("reg 50%", plan.cells[1].kernel, 100, 2));
  rows.push_back(fake_row("reg 90%", plan.cells[1].kernel, 130, 4));
  return study::aggregate(plan, runner::BenchView(rows));
}

TEST(StudyReport, FamilyCsvGolden) {
  const StudyAggregation agg = golden_aggregation();
  const std::string expected =
      "kernel,regs_per_thread,staging_bytes,memory,lanes,percent,ipc,blocks,speedup_vs_0\n"
      "gen-study-r16-sm0-m1-l32-1,16,0,medium,32,0,100.0000,6,1.0000\n"
      "gen-study-r16-sm0-m1-l32-1,16,0,medium,32,50,100.0000,6,1.0000\n"
      "gen-study-r16-sm0-m1-l32-1,16,0,medium,32,90,100.0000,6,1.0000\n"
      "gen-study-r44-sm0-m1-l32-1,44,0,medium,32,0,100.0000,2,1.0000\n"
      "gen-study-r44-sm0-m1-l32-1,44,0,medium,32,50,100.0000,2,1.0000\n"
      "gen-study-r44-sm0-m1-l32-1,44,0,medium,32,90,130.0000,4,1.3000\n";
  EXPECT_EQ(study::family_csv(agg.registers, agg.grid), expected);
}

TEST(StudyReport, FamilyMarkdownContainsTheStory) {
  const StudyAggregation agg = golden_aggregation();
  const std::string md = study::family_markdown(agg.registers, agg.grid);
  EXPECT_NE(md.find("# Register-sharing study"), std::string::npos);
  EXPECT_NE(md.find("**2 cells**"), std::string::npos);
  // Peak histogram rows.
  EXPECT_NE(md.find("| 0% | 1 |"), std::string::npos);
  EXPECT_NE(md.find("| 90% | 1 |"), std::string::npos);
  // Marginal row for the pressured level and the top-cells entry.
  EXPECT_NE(md.find("| 44 | 1 | 1.30 | 1.30 | 90 | 2.0 |"), std::string::npos);
  EXPECT_NE(md.find("| gen-study-r44-sm0-m1-l32-1 | 44 | 0 | medium | 32 |"),
            std::string::npos);
  EXPECT_NE(md.find("2→4"), std::string::npos);
  // No skipped-cells warning on a complete run.
  EXPECT_EQ(md.find("Warning"), std::string::npos);
}

TEST(StudyReport, IndexMarkdownTrendRows) {
  const StudyAggregation agg = golden_aggregation();
  const std::string md = study::index_markdown(agg);
  EXPECT_NE(md.find("## Trend checks vs the paper"), std::string::npos);
  EXPECT_NE(md.find("regs/thread 16 1.00 → 44 1.30"), std::string::npos);
  // The only block-gaining cell is medium: conditional memory trend shows it.
  EXPECT_NE(md.find("cells that gained blocks: medium 1.30"), std::string::npos);
}

TEST(StudyReport, WriteReportsIsRerunnableByteIdentically) {
  const StudyAggregation agg = golden_aggregation();
  const std::string dir = testing::TempDir() + "/grs_study_report_test";
  const std::vector<std::string> names = study::write_reports(agg, dir);
  ASSERT_EQ(names.size(), 7u);
  std::vector<std::string> first;
  for (const std::string& name : names) {
    std::ifstream f(dir + "/" + name, std::ios::binary);
    ASSERT_TRUE(f.good()) << name;
    std::ostringstream ss;
    ss << f.rdbuf();
    first.push_back(ss.str());
    EXPECT_FALSE(first.back().empty()) << name;
  }
  (void)study::write_reports(agg, dir);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::ifstream f(dir + "/" + names[i], std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), first[i]) << names[i];
  }
}

// --- end-to-end determinism across worker counts ---------------------------------

TEST(StudyDeterminism, ReportsAreByteIdenticalAcrossThreadCounts) {
  StudyGrid g;
  g.regs = {44};
  g.staging = {0};
  g.memory = {0};
  g.lanes = {32};
  g.percents = {0, 90};
  g.seed = 1;
  const StudyPlan plan = study::build_plan(g, "");
  const runner::SweepSpec spec = study::to_sweep_spec(plan);
  ASSERT_EQ(spec.size(), 2u);

  std::string outputs[2];
  for (unsigned threads = 1; threads <= 2; ++threads) {
    runner::RunOptions options;
    options.threads = threads;
    const std::vector<runner::SweepRow> rows = runner::run_sweep(spec, options);
    const StudyAggregation agg = study::aggregate(plan, runner::BenchView(rows));
    outputs[threads - 1] = study::index_markdown(agg) +
                           study::family_markdown(agg.registers, agg.grid) +
                           study::family_csv(agg.registers, agg.grid) +
                           study::corpus_markdown(agg) + study::corpus_csv(agg);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  // A real simulation ran: the 90% column must differ structurally from a
  // trivially-empty result (the cell gains blocks at this pressure).
  EXPECT_NE(outputs[0].find("2→4"), std::string::npos);
}

}  // namespace
}  // namespace grs
