// End-to-end smoke: every paper kernel runs to completion under the baseline
// config and produces sane statistics.
#include <gtest/gtest.h>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

namespace grs {
namespace {

class SmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SmokeTest, BaselineRunsToCompletion) {
  const KernelInfo k = workloads::by_name(GetParam());
  GpuConfig cfg = configs::unshared();
  cfg.max_cycles = 5'000'000;  // far above any sane runtime: a hang trips this
  const SimResult r = simulate(cfg, k);

  EXPECT_GT(r.stats.cycles, 0u);
  EXPECT_LT(r.stats.cycles, cfg.max_cycles) << "kernel did not drain";
  // Every block executed, and instruction totals are consistent.
  EXPECT_EQ(r.stats.sm_total.blocks_launched, k.grid_blocks);
  EXPECT_EQ(r.stats.sm_total.blocks_finished, k.grid_blocks);
  const std::uint64_t expected_warp_instrs =
      static_cast<std::uint64_t>(k.grid_blocks) *
      k.resources.warps_per_block(cfg.warp_size) * k.program.dynamic_length();
  EXPECT_EQ(r.stats.sm_total.warp_instructions, expected_warp_instrs);
  EXPECT_GT(r.stats.ipc(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SmokeTest,
                         ::testing::ValuesIn(workloads::all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

}  // namespace
}  // namespace grs
