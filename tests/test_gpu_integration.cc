// Whole-GPU integration properties: determinism, conservation, and the
// paper's structural equivalences (Set-3 untouched, 0%-sharing == baseline,
// effective blocks preserved).
#include <gtest/gtest.h>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

namespace grs {
namespace {

KernelInfo shrink(KernelInfo k, std::uint32_t blocks) {
  k.grid_blocks = blocks;
  return k;
}

TEST(GpuIntegration, DeterministicAcrossRuns) {
  const KernelInfo k = shrink(workloads::hotspot(), 56);
  for (const GpuConfig& cfg :
       {configs::unshared(), configs::shared_owf_unroll_dyn(Resource::kRegisters)}) {
    const SimResult a = simulate(cfg, k);
    const SimResult b = simulate(cfg, k);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.sm_total.thread_instructions, b.stats.sm_total.thread_instructions);
    EXPECT_EQ(a.stats.sm_total.stall_cycles, b.stats.sm_total.stall_cycles);
    EXPECT_EQ(a.stats.sm_total.idle_cycles, b.stats.sm_total.idle_cycles);
    EXPECT_EQ(a.stats.l2_misses, b.stats.l2_misses);
    EXPECT_EQ(a.stats.dram_requests, b.stats.dram_requests);
  }
}

TEST(GpuIntegration, InstructionCountConservedAcrossConfigs) {
  // Every config must execute exactly grid * warps * program instructions.
  const KernelInfo k = shrink(workloads::conv2(), 42);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(k.grid_blocks) * k.resources.warps_per_block(32) *
      k.program.dynamic_length();
  for (const GpuConfig& cfg :
       {configs::unshared(SchedulerKind::kLrr), configs::unshared(SchedulerKind::kGto),
        configs::unshared(SchedulerKind::kTwoLevel),
        configs::shared_owf(Resource::kScratchpad),
        configs::shared_noopt(Resource::kScratchpad)}) {
    EXPECT_EQ(simulate(cfg, k).stats.sm_total.warp_instructions, expected)
        << cfg.line_label();
  }
}

TEST(GpuIntegration, ZeroPercentSharingIsBitIdenticalToBaseline) {
  // t = 1.0 admits no extra blocks; the runtime must take the unshared path
  // (paper §VI-B.1: "all the thread blocks in the unsharing mode").
  for (const char* name : {"hotspot", "lavaMD", "sgemm"}) {
    const KernelInfo k = shrink(workloads::by_name(name), 56);
    const Resource res = k.set == "set2" ? Resource::kScratchpad : Resource::kRegisters;
    const SimResult base = simulate(configs::unshared(), k);
    const SimResult s = simulate(configs::shared_noopt(res, 1.0), k);
    EXPECT_EQ(base.stats.cycles, s.stats.cycles) << name;
    EXPECT_EQ(base.stats.sm_total.idle_cycles, s.stats.sm_total.idle_cycles) << name;
  }
}

TEST(GpuIntegration, Set3KernelsUntouchedBySharing) {
  // Paper Fig. 12: thread/block-limited kernels launch nothing extra, so the
  // sharing runtime (same scheduler) is bit-identical to the baseline.
  for (const auto& k0 : workloads::set3()) {
    const KernelInfo k = shrink(k0, 56);
    for (const Resource res : {Resource::kRegisters, Resource::kScratchpad}) {
      const SimResult base = simulate(configs::unshared(), k);
      const SimResult s = simulate(configs::shared_noopt(res, 0.1), k);
      EXPECT_EQ(base.stats.cycles, s.stats.cycles) << k.name;
      EXPECT_EQ(s.occupancy.shared_pairs, 0u) << k.name;
      EXPECT_EQ(s.stats.sm_total.lock_acquisitions, 0u) << k.name;
    }
  }
}

TEST(GpuIntegration, SharingLaunchesThePaperBlockCounts) {
  // Fig. 8(a)/(b) headline residency at 90% sharing.
  struct Case {
    const char* name;
    Resource res;
    std::uint32_t blocks;
  };
  for (const Case c : {Case{"hotspot", Resource::kRegisters, 6},
                       Case{"LIB", Resource::kRegisters, 8},
                       Case{"stencil", Resource::kRegisters, 3},
                       Case{"lavaMD", Resource::kScratchpad, 4},
                       Case{"NW1", Resource::kScratchpad, 8}}) {
    // Grid large enough to fill every SM to the plan (8 blocks x 14 SMs).
    const KernelInfo k = shrink(workloads::by_name(c.name), 112);
    GpuConfig cfg = configs::shared_noopt(c.res, 0.1);
    const SimResult r = simulate(cfg, k);
    EXPECT_EQ(r.occupancy.total_blocks, c.blocks) << c.name;
    EXPECT_EQ(r.stats.sm_total.max_resident_blocks, c.blocks) << c.name;
  }
}

TEST(GpuIntegration, UnrollPassChangesNothingButRegisterNumbers) {
  // Same dynamic instruction count, same block counts; cycles may differ.
  const KernelInfo k = shrink(workloads::sgemm(), 70);
  const SimResult plain = simulate(configs::shared_noopt(Resource::kRegisters), k);
  const SimResult unrolled = simulate(configs::shared_unroll(Resource::kRegisters), k);
  EXPECT_EQ(plain.stats.sm_total.warp_instructions,
            unrolled.stats.sm_total.warp_instructions);
  EXPECT_EQ(plain.occupancy.total_blocks, unrolled.occupancy.total_blocks);
}

TEST(GpuIntegration, DynThrottleOnlyActsOnSharedNonOwners) {
  // Without sharing pairs there are no non-owner warps: Dyn is a no-op.
  const KernelInfo k = shrink(workloads::bfs(), 42);
  const SimResult s = simulate(configs::shared_unroll_dyn(Resource::kRegisters), k);
  EXPECT_EQ(s.stats.sm_total.dyn_throttled_issues, 0u);
}

TEST(GpuIntegration, MaxCyclesCapStopsRunawaySimulations) {
  KernelInfo k = shrink(workloads::hotspot(), 56);
  GpuConfig cfg = configs::unshared();
  cfg.max_cycles = 100;
  const SimResult r = simulate(cfg, k);
  EXPECT_EQ(r.stats.cycles, 100u);
  EXPECT_LT(r.stats.sm_total.blocks_finished, k.grid_blocks);
}

TEST(GpuIntegration, SchedulerCycleAccountingIsExhaustive) {
  // issued + stall + idle must equal schedulers * SMs * cycles.
  const KernelInfo k = shrink(workloads::srad2(), 42);
  for (const GpuConfig& cfg :
       {configs::unshared(), configs::shared_owf(Resource::kScratchpad)}) {
    const SimResult r = simulate(cfg, k);
    EXPECT_EQ(r.stats.sm_total.scheduler_cycles(),
              static_cast<std::uint64_t>(r.stats.cycles) * cfg.num_sms * cfg.num_schedulers)
        << cfg.line_label();
  }
}

TEST(GpuIntegration, SharingReducesIdleCycles) {
  // The paper's Fig. 9(c)/(d) headline: extra resident blocks cut idle cycles.
  const KernelInfo k = workloads::hotspot();
  const SimResult base = simulate(configs::unshared(), k);
  const SimResult s = simulate(configs::shared_owf_unroll_dyn(Resource::kRegisters), k);
  EXPECT_LT(s.stats.sm_total.idle_cycles, base.stats.sm_total.idle_cycles);
}

TEST(GpuIntegration, OwnershipTransfersHappenOncePerPairGeneration) {
  const KernelInfo k = shrink(workloads::lavamd(), 112);
  const SimResult s = simulate(configs::shared_owf(Resource::kScratchpad), k);
  // 2 pairs/SM x 14 SMs = 28 pairs; each block generation past the first
  // transfers once. Transfers must be positive and bounded by grid size.
  EXPECT_GT(s.stats.sm_total.ownership_transfers, 0u);
  EXPECT_LT(s.stats.sm_total.ownership_transfers, k.grid_blocks);
}

TEST(GpuIntegration, L2StatisticsAreConsistent) {
  const KernelInfo k = shrink(workloads::stencil(), 28);
  const SimResult r = simulate(configs::unshared(), k);
  EXPECT_LE(r.stats.l2_misses, r.stats.l2_accesses);
  EXPECT_LE(r.stats.dram_row_hits, r.stats.dram_requests);
  // Every counted L2 miss reaches DRAM; heavy streaming can additionally
  // bypass a full L2 MSHR straight to DRAM (those are not counted as misses),
  // so DRAM requests bound the misses from above.
  EXPECT_GE(r.stats.dram_requests, r.stats.l2_misses);
  // L2 sees only L1 misses.
  EXPECT_LE(r.stats.l2_accesses, r.stats.sm_total.l1_misses);
}

TEST(GpuIntegration, SmallerL1RaisesMissRate) {
  const KernelInfo k = shrink(workloads::mriq(), 70);
  GpuConfig big = configs::unshared();
  GpuConfig small = configs::unshared();
  small.l1.size_bytes = 4 * 1024;
  EXPECT_GT(simulate(small, k).stats.l1_miss_rate(),
            simulate(big, k).stats.l1_miss_rate());
}

TEST(GpuIntegration, MoreSmsFinishFaster) {
  // Compute-bound kernel: doubling the SMs must cut the makespan (memory-
  // saturated kernels can invert this through shared L2/DRAM queueing).
  const KernelInfo k = shrink(workloads::mriq(), 140);
  GpuConfig few = configs::unshared();
  few.num_sms = 7;
  GpuConfig many = configs::unshared();
  many.num_sms = 14;
  EXPECT_LT(simulate(many, k).stats.cycles, simulate(few, k).stats.cycles);
}

}  // namespace
}  // namespace grs
