// Cross-configuration property sweeps: invariants that must hold for every
// (kernel, scheduler, sharing) combination — the simulator-wide contracts.
#include <gtest/gtest.h>

#include <tuple>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

namespace grs {
namespace {

KernelInfo shrink(KernelInfo k, std::uint32_t blocks) {
  k.grid_blocks = blocks;
  return k;
}

/// The sharing resource that can actually bind for this kernel.
Resource sharing_resource(const KernelInfo& k) {
  return k.set == "set2" ? Resource::kScratchpad : Resource::kRegisters;
}

// ---------------------------------------------------------------------------
// Property 1: every (kernel, scheduler) pair drains, conserves instructions,
// and keeps the scheduler-cycle accounting exhaustive.
// ---------------------------------------------------------------------------

class KernelSchedulerSweep
    : public ::testing::TestWithParam<std::tuple<std::string, SchedulerKind>> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, KernelSchedulerSweep,
    ::testing::Combine(::testing::Values("hotspot", "MUM", "lavaMD", "NW1", "BFS",
                                         "sgemm", "SRAD1"),
                       ::testing::Values(SchedulerKind::kLrr, SchedulerKind::kGto,
                                         SchedulerKind::kTwoLevel, SchedulerKind::kOwf)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + std::string("_") +
                      to_string(std::get<1>(info.param));
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_P(KernelSchedulerSweep, DrainsAndConserves) {
  const KernelInfo k = shrink(workloads::by_name(std::get<0>(GetParam())), 42);
  GpuConfig cfg = configs::unshared(std::get<1>(GetParam()));
  cfg.max_cycles = 3'000'000;
  const SimResult r = simulate(cfg, k);
  ASSERT_LT(r.stats.cycles, cfg.max_cycles) << "did not drain";
  EXPECT_EQ(r.stats.sm_total.blocks_finished, k.grid_blocks);
  EXPECT_EQ(r.stats.sm_total.warp_instructions,
            static_cast<std::uint64_t>(k.grid_blocks) *
                k.resources.warps_per_block(cfg.warp_size) * k.program.dynamic_length());
  EXPECT_EQ(r.stats.sm_total.scheduler_cycles(),
            static_cast<std::uint64_t>(r.stats.cycles) * cfg.num_sms * cfg.num_schedulers);
}

// ---------------------------------------------------------------------------
// Property 2: every (kernel, sharing line) drains without deadlock and never
// loses effective blocks. This is the paper's central safety claim (§III-C).
// ---------------------------------------------------------------------------

class KernelSharingSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

INSTANTIATE_TEST_SUITE_P(
    AllKernelsThresholds, KernelSharingSweep,
    ::testing::Combine(::testing::ValuesIn(workloads::all_names()),
                       ::testing::Values(0.1, 0.5, 0.9)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_t" +
                      std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
      return n;
    });

TEST_P(KernelSharingSweep, SharingNeverDeadlocksOrLosesWork) {
  const KernelInfo k = shrink(workloads::by_name(std::get<0>(GetParam())), 42);
  const double t = std::get<1>(GetParam());
  GpuConfig cfg = configs::shared_owf_unroll_dyn(sharing_resource(k), t);
  cfg.max_cycles = 3'000'000;
  const SimResult r = simulate(cfg, k);
  ASSERT_LT(r.stats.cycles, cfg.max_cycles)
      << "sharing config deadlocked or diverged";
  EXPECT_EQ(r.stats.sm_total.blocks_finished, k.grid_blocks);
  EXPECT_GE(r.occupancy.effective_blocks(), r.occupancy.baseline_blocks);
}

// ---------------------------------------------------------------------------
// Property 3: determinism across every experiment line the benches use.
// ---------------------------------------------------------------------------

TEST(Properties, EveryExperimentLineIsDeterministic) {
  const KernelInfo k = shrink(workloads::srad2(), 28);
  for (const GpuConfig& cfg :
       {configs::unshared(SchedulerKind::kLrr), configs::unshared(SchedulerKind::kGto),
        configs::unshared(SchedulerKind::kTwoLevel),
        configs::shared_noopt(Resource::kScratchpad),
        configs::shared_owf(Resource::kScratchpad)}) {
    const SimResult a = simulate(cfg, k);
    const SimResult b = simulate(cfg, k);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << cfg.line_label();
    EXPECT_EQ(a.stats.sm_total.stall_cycles, b.stats.sm_total.stall_cycles)
        << cfg.line_label();
    EXPECT_EQ(a.stats.dram_requests, b.stats.dram_requests) << cfg.line_label();
  }
}

// ---------------------------------------------------------------------------
// Property 4: latency knobs move results in the physically sensible direction.
// ---------------------------------------------------------------------------

TEST(Properties, HigherAluLatencySlowsComputeKernels) {
  const KernelInfo k = shrink(workloads::mriq(), 70);
  GpuConfig fast = configs::unshared();
  GpuConfig slow = configs::unshared();
  slow.alu_latency = 24;
  EXPECT_LT(simulate(fast, k).stats.cycles, simulate(slow, k).stats.cycles);
}

TEST(Properties, HigherDramLatencySlowsMemoryKernels) {
  const KernelInfo k = shrink(workloads::mum(), 56);
  GpuConfig fast = configs::unshared();
  GpuConfig slow = configs::unshared();
  slow.dram.base_latency = 600;
  EXPECT_LT(simulate(fast, k).stats.cycles, simulate(slow, k).stats.cycles);
}

TEST(Properties, TinyMshrThrottlesMemoryParallelism) {
  // Latency-bound scattered loads live on memory-level parallelism across
  // warps; choking the MSHR must hurt. (A bandwidth-saturated kernel can
  // paradoxically *benefit* from a small MSHR — less DRAM queueing — so this
  // property is asserted on MUM, not on a streaming kernel.)
  const KernelInfo k = shrink(workloads::mum(), 28);
  GpuConfig wide = configs::unshared();
  GpuConfig narrow = configs::unshared();
  narrow.l1.mshr_entries = 4;
  EXPECT_LT(simulate(wide, k).stats.cycles, simulate(narrow, k).stats.cycles);
}

TEST(Properties, MoreSchedulersIssueMore) {
  const KernelInfo k = shrink(workloads::hotspot(), 42);
  GpuConfig one = configs::unshared();
  one.num_schedulers = 1;
  GpuConfig two = configs::unshared();
  EXPECT_LE(simulate(two, k).stats.cycles, simulate(one, k).stats.cycles);
}

// ---------------------------------------------------------------------------
// Property 5: sharing percentage and residency interact per Tables V-VIII —
// IPC is flat while the block count is flat.
// ---------------------------------------------------------------------------

TEST(Properties, IpcFlatWhileResidencyFlat) {
  // lavaMD's block count stays 2 from 0% to 70% sharing (Table VIII), so the
  // runtime launches everything unshared and IPC must be bit-identical.
  const KernelInfo k = shrink(workloads::lavamd(), 56);
  const SimResult at0 = simulate(configs::shared_owf(Resource::kScratchpad, 1.0), k);
  for (const double t : {0.9, 0.7, 0.5, 0.3}) {
    const SimResult r = simulate(configs::shared_owf(Resource::kScratchpad, t), k);
    ASSERT_EQ(r.occupancy.total_blocks, at0.occupancy.total_blocks) << t;
    EXPECT_EQ(r.stats.cycles, at0.stats.cycles) << "t=" << t;
  }
}

TEST(Properties, Sm0NonOwnersFullyGatedUnderDyn) {
  // Under Dyn, SM0 never lets a non-owner issue a global-memory instruction;
  // the run must still drain (ownership transfer unblocks them).
  KernelInfo k = shrink(workloads::mum(), 56);
  GpuConfig cfg = configs::shared_unroll_dyn(Resource::kRegisters);
  cfg.max_cycles = 3'000'000;
  const SimResult r = simulate(cfg, k);
  ASSERT_LT(r.stats.cycles, cfg.max_cycles);
  EXPECT_EQ(r.stats.sm_total.blocks_finished, k.grid_blocks);
  EXPECT_GT(r.stats.sm_total.dyn_throttled_issues, 0u);
}

}  // namespace
}  // namespace grs
