// Warp scheduler policies: LRR rotation, GTO greediness/age, Two-Level
// grouping, OWF class priority and its GTO degeneration (paper §IV-A, §VI).
#include <gtest/gtest.h>

#include "sm/scheduler.h"

namespace grs {
namespace {

SchedCandidate c(std::uint32_t slot, std::uint64_t age,
                 WarpClass cls = WarpClass::kUnshared) {
  return SchedCandidate{slot, age, cls};
}

TEST(Lrr, RotatesThroughCandidates) {
  WarpScheduler s(SchedulerKind::kLrr, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 0), c(2, 1), c(4, 2), c(6, 3)};
  EXPECT_EQ(cands[s.select(cands)].slot, 0u);  // nothing issued yet: lowest slot
  EXPECT_EQ(cands[s.select(cands)].slot, 2u);
  EXPECT_EQ(cands[s.select(cands)].slot, 4u);
  EXPECT_EQ(cands[s.select(cands)].slot, 6u);
  EXPECT_EQ(cands[s.select(cands)].slot, 0u);  // wraps
  EXPECT_EQ(cands[s.select(cands)].slot, 2u);
}

// Regression for the last_slot_ = 0 initial state: warp slot 0 could never
// win the very first selection ("strictly after the last issued slot"), a
// permanent fairness bias against the first warp of every SM. All four
// policies must be able to pick slot 0 on their first call.
TEST(FirstPick, Lrr) {
  WarpScheduler s(SchedulerKind::kLrr, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 0), c(1, 1), c(2, 2)};
  EXPECT_EQ(cands[s.select(cands)].slot, 0u);
}

TEST(FirstPick, Gto) {
  // No greedy warp yet: oldest (smallest dynamic id) wins, slot 0 included.
  WarpScheduler s(SchedulerKind::kGto, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 0), c(1, 1), c(2, 2)};
  EXPECT_EQ(cands[s.select(cands)].slot, 0u);
}

TEST(FirstPick, TwoLevel) {
  // Active group 0, round-robin start: lowest slot of the group.
  WarpScheduler s(SchedulerKind::kTwoLevel, 16, 8);
  const std::vector<SchedCandidate> cands{c(0, 0), c(1, 1), c(9, 2)};
  EXPECT_EQ(cands[s.select(cands)].slot, 0u);
}

TEST(FirstPick, Owf) {
  // All-unshared degenerates to GTO: oldest wins, slot 0 included.
  WarpScheduler s(SchedulerKind::kOwf, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 0), c(1, 1), c(2, 2)};
  EXPECT_EQ(cands[s.select(cands)].slot, 0u);
}

TEST(Lrr, SkipsMissingSlots) {
  WarpScheduler s(SchedulerKind::kLrr, 8, 8);
  (void)s.select({c(5, 0)});  // last = 5
  const std::vector<SchedCandidate> cands{c(1, 0), c(3, 1)};
  EXPECT_EQ(cands[s.select(cands)].slot, 1u);  // wrap past 5
}

TEST(Gto, StaysGreedyWhileCandidateRemains) {
  WarpScheduler s(SchedulerKind::kGto, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 5), c(2, 1), c(4, 9)};
  const std::uint32_t first = cands[s.select(cands)].slot;
  EXPECT_EQ(first, 2u);  // oldest (age 1) picked initially
  // Greedy: keeps picking slot 2 while present.
  EXPECT_EQ(cands[s.select(cands)].slot, 2u);
  EXPECT_EQ(cands[s.select(cands)].slot, 2u);
}

TEST(Gto, FallsBackToOldestWhenGreedyStalls) {
  WarpScheduler s(SchedulerKind::kGto, 8, 8);
  (void)s.select({c(2, 1)});  // greedy = 2
  const std::vector<SchedCandidate> without2{c(0, 5), c(4, 3)};
  EXPECT_EQ(without2[s.select(without2)].slot, 4u);  // oldest of the rest
}

TEST(TwoLevel, PrefersActiveGroup) {
  WarpScheduler s(SchedulerKind::kTwoLevel, 16, 8);  // groups {0-7}, {8-15}
  const std::vector<SchedCandidate> cands{c(1, 0), c(9, 1)};
  EXPECT_EQ(cands[s.select(cands)].slot, 1u);  // group 0 active initially
  // The active group keeps priority while it has issuable warps (group
  // switches happen only when the group has nothing to issue).
  EXPECT_EQ(cands[s.select(cands)].slot, 1u);
}

TEST(TwoLevel, SwitchesGroupWhenActiveGroupEmpty) {
  WarpScheduler s(SchedulerKind::kTwoLevel, 16, 8);
  const std::vector<SchedCandidate> only_high{c(10, 0), c(12, 1)};
  EXPECT_EQ(only_high[s.select(only_high)].slot, 10u);
  // Group 1 is now active; a group-0 candidate appearing does not preempt.
  const std::vector<SchedCandidate> mixed{c(1, 2), c(12, 1)};
  EXPECT_EQ(mixed[s.select(mixed)].slot, 12u);
}

TEST(Owf, StrictClassPriority) {
  WarpScheduler s(SchedulerKind::kOwf, 8, 8);
  const std::vector<SchedCandidate> cands{
      c(0, 0, WarpClass::kSharedNonOwner),
      c(2, 1, WarpClass::kUnshared),
      c(4, 2, WarpClass::kSharedOwner)};
  // Owner beats unshared beats non-owner, regardless of age.
  EXPECT_EQ(cands[s.select(cands)].slot, 4u);
}

TEST(Owf, UnsharedBeatsNonOwner) {
  WarpScheduler s(SchedulerKind::kOwf, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 0, WarpClass::kSharedNonOwner),
                                          c(2, 9, WarpClass::kUnshared)};
  EXPECT_EQ(cands[s.select(cands)].slot, 2u);
}

TEST(Owf, NonOwnerRunsWhenAlone) {
  WarpScheduler s(SchedulerKind::kOwf, 8, 8);
  const std::vector<SchedCandidate> cands{c(6, 3, WarpClass::kSharedNonOwner)};
  EXPECT_EQ(cands[s.select(cands)].slot, 6u);
}

TEST(Owf, DegeneratesToGtoWhenAllUnshared) {
  // Paper §VI-B.2: with no shared blocks resident, OWF orders by dynamic
  // warp id and behaves like GTO.
  WarpScheduler owf(SchedulerKind::kOwf, 8, 8);
  WarpScheduler gto(SchedulerKind::kGto, 8, 8);
  const std::vector<SchedCandidate> cands{c(0, 7), c(2, 3), c(4, 5)};
  for (int step = 0; step < 5; ++step) {
    EXPECT_EQ(owf.select(cands), gto.select(cands)) << "step " << step;
  }
}

TEST(Owf, GreedyWithinClass) {
  WarpScheduler s(SchedulerKind::kOwf, 8, 8);
  const std::vector<SchedCandidate> owners{c(0, 5, WarpClass::kSharedOwner),
                                           c(2, 1, WarpClass::kSharedOwner)};
  EXPECT_EQ(owners[s.select(owners)].slot, 2u);  // oldest first
  EXPECT_EQ(owners[s.select(owners)].slot, 2u);  // then greedy on it
}

TEST(OwfRank, OrderingConstants) {
  EXPECT_LT(owf_rank(WarpClass::kSharedOwner), owf_rank(WarpClass::kUnshared));
  EXPECT_LT(owf_rank(WarpClass::kUnshared), owf_rank(WarpClass::kSharedNonOwner));
}

}  // namespace
}  // namespace grs
