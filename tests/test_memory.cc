// Memory hierarchy: cache tags + MSHR, DRAM timing, L2 composition, and the
// coalescer's address-synthesis properties.
#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "memory/cache.h"
#include "memory/coalescer.h"
#include "memory/dram.h"
#include "memory/memsys.h"

namespace grs {
namespace {

// --- Cache -------------------------------------------------------------------

TEST(Cache, MissThenFillThenHit) {
  Cache c(CacheConfig{});
  auto r = c.lookup(0x1000, 10);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.mshr_merge);
  c.fill_inflight(0x1000, 100);

  r = c.lookup(0x1000, 50);  // data still in flight
  EXPECT_TRUE(r.mshr_merge);
  EXPECT_EQ(r.ready, 100u);

  r = c.lookup(0x1000, 101);  // delivered
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.inflight(), 0u);
}

TEST(Cache, MergeDoesNotCreateSecondFill) {
  Cache c(CacheConfig{});
  (void)c.lookup(0x80, 0);
  c.fill_inflight(0x80, 50);
  (void)c.lookup(0x80, 1);
  (void)c.lookup(0x80, 2);
  EXPECT_EQ(c.merges, 2u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.inflight(), 1u);
}

TEST(Cache, MshrFullRejectsWithoutCounting) {
  CacheConfig cfg;
  cfg.mshr_entries = 2;
  Cache c(cfg);
  for (Addr a = 0; a < 2 * 128; a += 128) {
    (void)c.lookup(a, 0);
    c.fill_inflight(a, 1000);
  }
  const std::uint64_t accesses_before = c.accesses;
  const auto r = c.lookup(0x10000, 1);
  EXPECT_TRUE(r.mshr_full);
  EXPECT_EQ(c.accesses, accesses_before) << "structural reject must not count";
}

TEST(Cache, ExplicitDrainInstallsReadyLines) {
  CacheConfig cfg;
  cfg.mshr_entries = 1;
  Cache c(cfg);
  (void)c.lookup(0, 0);
  c.fill_inflight(0, 10);
  // Without drain, the MSHR stays full and blocks forever (the livelock this
  // API exists to prevent).
  c.drain(11);
  EXPECT_EQ(c.inflight(), 0u);
  EXPECT_TRUE(c.lookup(0, 12).hit);
}

TEST(Cache, LruEvictsOldestWay) {
  CacheConfig cfg;
  cfg.size_bytes = 4 * 128;  // 1 set x 4 ways? sets = size/(line*ways) = 1
  cfg.ways = 4;
  cfg.line_bytes = 128;
  Cache c(cfg);
  auto install = [&](Addr a, Cycle t) {
    (void)c.lookup(a, t);
    c.fill_inflight(a, t);
    c.drain(t + 1);
  };
  for (int i = 0; i < 4; ++i) install(i * 128, i);
  EXPECT_TRUE(c.lookup(0, 10).hit);  // touch line 0: now line 1 is LRU
  install(4 * 128, 20);              // evicts line 1
  EXPECT_TRUE(c.lookup(0, 21).hit);
  EXPECT_FALSE(c.lookup(128, 22).hit) << "LRU way should have been evicted";
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache c(CacheConfig{});  // 16KB, 4-way, 32 sets
  auto install = [&](Addr a, Cycle t) {
    (void)c.lookup(a, t);
    c.fill_inflight(a, t);
    c.drain(t + 1);
  };
  // 32 lines mapping to 32 distinct sets; all must coexist.
  for (Addr i = 0; i < 32; ++i) install(i * 128, i);
  for (Addr i = 0; i < 32; ++i) EXPECT_TRUE(c.lookup(i * 128, 100).hit) << i;
}

TEST(Cache, NextReadyTracksEarliestInflightMiss) {
  Cache c(CacheConfig{});
  EXPECT_EQ(c.next_ready(), kNeverCycle);
  (void)c.lookup(0, 0);
  c.fill_inflight(0, 120);
  (void)c.lookup(128, 0);
  c.fill_inflight(128, 80);
  EXPECT_EQ(c.next_ready(), 80u);
  c.drain(80);
  EXPECT_EQ(c.next_ready(), 120u);
  c.drain(120);
  EXPECT_EQ(c.next_ready(), kNeverCycle);
}

TEST(Cache, BatchDrainInstallsInReadyOrder) {
  // A drain covering several cycles at once (event-driven wakeup) must stamp
  // LRU recency in ready order, exactly as a cycle-by-cycle drain would.
  CacheConfig cfg;
  cfg.size_bytes = 2 * 128;  // one set, two ways
  cfg.ways = 2;
  cfg.line_bytes = 128;
  Cache c(cfg);
  (void)c.lookup(0, 0);
  c.fill_inflight(0, 20);  // ready late
  (void)c.lookup(128, 0);
  c.fill_inflight(128, 10);  // ready early
  c.drain(25);  // one batch: must install line 128 (ready 10) before line 0
  (void)c.lookup(256, 30);  // third line: evicts the LRU way
  c.fill_inflight(256, 30);
  c.drain(31);
  EXPECT_TRUE(c.lookup(0, 40).hit) << "most-recently-installed line evicted";
  EXPECT_FALSE(c.lookup(128, 41).hit) << "LRU (earliest-ready) line kept";
}

// --- DRAM ---------------------------------------------------------------------

TEST(Dram, RowHitCheaperThanRowMiss) {
  const DramConfig cfg;
  Dram d(cfg, 128);
  const Cycle first = d.request(0, 0);            // row miss (cold)
  const Cycle second = d.request(128 * 6, first); // same bank (channel 0), same row
  EXPECT_EQ(d.row_hits, 1u);
  EXPECT_LT(second - first, first - 0) << "row hit should be serviced faster";
}

TEST(Dram, BusyBankQueuesRequests) {
  Dram d(DramConfig{}, 128);
  const Cycle t1 = d.request(0, 0);
  const Cycle t2 = d.request(0, 0);  // same line, same instant: must queue
  EXPECT_GT(t2, t1);
}

TEST(Dram, DifferentChannelsServeInParallel) {
  Dram d(DramConfig{}, 128);
  const Cycle t1 = d.request(0, 0);
  const Cycle t2 = d.request(128, 0);  // adjacent line -> different channel
  EXPECT_EQ(t1, t2);
}

TEST(Dram, RowWindowModelsFrFcfsReordering) {
  DramConfig cfg;
  cfg.row_window = 2;
  Dram d(cfg, 128);
  Cycle now = 0;
  (void)d.request(0, now);                       // row A (channel 0, bank 0)
  // Same-bank different row: row bits above row_bytes with same channel.
  // channel = line % 6; row = addr / 2048. Use addr = 6*2048*k to stay on
  // channel 0 while switching rows.
  (void)d.request(6 * 2048, now);                // row B, same channel
  (void)d.request(0, now + 100);                 // row A again: still in window
  EXPECT_EQ(d.row_hits, 1u);
  (void)d.request(2 * 6 * 2048, now + 200);      // row C: evicts A (LRU)
  (void)d.request(6 * 2048, now + 300);          // row B: still present
  EXPECT_EQ(d.row_hits, 2u);
}

TEST(Dram, LatencyIncludesBaseTransit) {
  const DramConfig cfg;
  Dram d(cfg, 128);
  const Cycle t = d.request(0, 1000);
  EXPECT_GE(t, 1000 + cfg.base_latency + cfg.row_miss_service);
}

// --- MemorySystem ---------------------------------------------------------------

TEST(MemSys, L2HitMatchesConfiguredLatency) {
  const GpuConfig cfg;
  MemorySystem m(cfg);
  const Cycle miss = m.access(0x4000, 0);
  EXPECT_GT(miss, cfg.l2_hit_latency);  // first touch goes to DRAM
  const Cycle hit = m.access(0x4000, miss + 10);
  EXPECT_EQ(hit - (miss + 10), cfg.l2_hit_latency);
  EXPECT_EQ(m.l2_misses(), 1u);
  EXPECT_EQ(m.l2_accesses(), 2u);
}

TEST(MemSys, ConcurrentMissesToSameLineMerge) {
  MemorySystem m(GpuConfig{});
  (void)m.access(0x8000, 0);
  (void)m.access(0x8000, 1);  // in flight: merged, no 2nd DRAM request
  EXPECT_EQ(m.dram_requests(), 1u);
}

TEST(MemSys, DistinctLinesReachDram) {
  MemorySystem m(GpuConfig{});
  (void)m.access(0, 0);
  (void)m.access(1 << 20, 0);
  EXPECT_EQ(m.dram_requests(), 2u);
}

// Regression: the bank split used to integer-divide size_bytes and
// mshr_entries by num_channels, silently shrinking total L2 capacity and
// MSHRs whenever the division had a remainder (the default 256 MSHRs over 6
// channels lost 4 entries). The per-bank sums must reconstruct the
// configured totals exactly.
TEST(MemSys, BankSplitReconstructsConfiguredTotals) {
  GpuConfig cfg;
  cfg.dram.num_channels = 5;          // 768 sets -> 153*5 + 3 remainder
  cfg.l2.mshr_entries = 257;          // 51*5 + 2 remainder
  MemorySystem m(cfg);
  ASSERT_EQ(m.num_banks(), 5u);
  std::uint64_t sum_bytes = 0, sum_mshr = 0;
  for (std::uint32_t b = 0; b < m.num_banks(); ++b) {
    const CacheConfig& bank = m.bank_config(b);
    EXPECT_GE(bank.num_sets(), 1u) << "bank " << b;
    // Low banks take the remainder, so per-bank capacity never increases.
    if (b > 0) {
      EXPECT_LE(bank.size_bytes, m.bank_config(b - 1).size_bytes);
      EXPECT_LE(bank.mshr_entries, m.bank_config(b - 1).mshr_entries);
    }
    sum_bytes += bank.size_bytes;
    sum_mshr += bank.mshr_entries;
  }
  EXPECT_EQ(sum_bytes, cfg.l2.size_bytes);
  EXPECT_EQ(sum_mshr, cfg.l2.mshr_entries);
}

TEST(MemSys, DefaultConfigBankSplitIsExact) {
  const GpuConfig cfg;  // 768KB / 6 channels, 256 MSHRs / 6 channels
  MemorySystem m(cfg);
  std::uint64_t sum_bytes = 0, sum_mshr = 0;
  for (std::uint32_t b = 0; b < m.num_banks(); ++b) {
    sum_bytes += m.bank_config(b).size_bytes;
    sum_mshr += m.bank_config(b).mshr_entries;
  }
  EXPECT_EQ(sum_bytes, cfg.l2.size_bytes);
  EXPECT_EQ(sum_mshr, cfg.l2.mshr_entries);
}

// --- Coalescer --------------------------------------------------------------------

Instruction gmem(MemPattern p, Locality l, std::uint8_t region, std::uint32_t fp) {
  Instruction i;
  i.op = Op::kLdGlobal;
  i.dst = 0;
  i.pattern = p;
  i.locality = l;
  i.region = region;
  i.footprint_lines = fp;
  return i;
}

TEST(Coalescer, TransactionCountMatchesPattern) {
  Coalescer co(128);
  std::vector<Addr> out;
  for (const MemPattern p : {MemPattern::kCoalesced, MemPattern::kStrided2,
                             MemPattern::kStrided4, MemPattern::kScatter8,
                             MemPattern::kScatter32}) {
    out.clear();
    co.expand(gmem(p, Locality::kStreaming, 1, 0), MemAccessContext{1, 0, 0}, out);
    EXPECT_EQ(out.size(), transactions_per_access(p));
  }
}

TEST(Coalescer, RegionsAreDisjoint) {
  Coalescer co(128);
  std::vector<Addr> a, b;
  co.expand(gmem(MemPattern::kCoalesced, Locality::kStreaming, 1, 0),
            MemAccessContext{7, 3, 5}, a);
  co.expand(gmem(MemPattern::kCoalesced, Locality::kStreaming, 2, 0),
            MemAccessContext{7, 3, 5}, b);
  EXPECT_NE(a[0] >> 36, b[0] >> 36);
}

TEST(Coalescer, StreamingNeverRepeatsLines) {
  Coalescer co(128);
  std::set<Addr> seen;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    std::vector<Addr> out;
    co.expand(gmem(MemPattern::kStrided2, Locality::kStreaming, 1, 0),
              MemAccessContext{9, 2, seq}, out);
    for (Addr a : out) {
      EXPECT_TRUE(seen.insert(a).second) << "streaming line repeated";
    }
  }
}

TEST(Coalescer, StreamingStripesPerWarpAreDisjoint) {
  Coalescer co(128);
  std::vector<Addr> w1, w2;
  co.expand(gmem(MemPattern::kCoalesced, Locality::kStreaming, 1, 0),
            MemAccessContext{1, 0, 5}, w1);
  co.expand(gmem(MemPattern::kCoalesced, Locality::kStreaming, 1, 0),
            MemAccessContext{2, 0, 5}, w2);
  EXPECT_NE(w1[0], w2[0]);
}

TEST(Coalescer, GridSharedIsWarpIndependent) {
  // A lookup-table read at the same program position touches the same line
  // from every warp (broadcast reuse).
  Coalescer co(128);
  std::vector<Addr> w1, w2;
  co.expand(gmem(MemPattern::kCoalesced, Locality::kGridShared, 1, 512),
            MemAccessContext{10, 1, 33}, w1);
  co.expand(gmem(MemPattern::kCoalesced, Locality::kGridShared, 1, 512),
            MemAccessContext{99, 7, 33}, w2);
  EXPECT_EQ(w1[0], w2[0]);
}

TEST(Coalescer, BlockLocalStaysWithinFootprint) {
  Coalescer co(128);
  const std::uint32_t fp = 16;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    std::vector<Addr> out;
    co.expand(gmem(MemPattern::kCoalesced, Locality::kBlockLocal, 3, fp),
              MemAccessContext{4, 2, seq}, out);
    const std::uint64_t base = (2ull << 24) * 128 + (3ull << 36);
    EXPECT_GE(out[0], base);
    EXPECT_LT(out[0], base + fp * 128);
  }
}

TEST(Coalescer, DeterministicAcrossCalls) {
  Coalescer co(128);
  std::vector<Addr> a, b;
  const Instruction i = gmem(MemPattern::kScatter8, Locality::kRandom, 5, 4096);
  co.expand(i, MemAccessContext{11, 4, 77}, a);
  co.expand(i, MemAccessContext{11, 4, 77}, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace grs
