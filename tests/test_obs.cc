// Observability contracts (src/obs, docs/observability.md):
//  * determinism — trace JSON and timeline CSV are byte-identical across
//    exec_mode cycle/event (transition slices + catch-up samples) and across
//    run_sweep worker counts (buffered post-sweep writes);
//  * zero cost when off — a null/disabled observer leaves GpuStats
//    bit-identical to a plain simulate() and produces no output;
//  * shape — trace events carry ph/pid/tid/ts with timestamps monotone per
//    (pid, tid) track, the format Perfetto requires;
//  * telemetry — RunManifest renders the documented v1 schema.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "gpu/simulator.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runner/engine.h"
#include "runner/manifest.h"
#include "workloads/suites.h"

namespace grs {
namespace {

KernelInfo shrink(KernelInfo k, std::uint32_t blocks) {
  k.grid_blocks = blocks;
  return k;
}

struct ObsRun {
  SimResult result;
  std::string trace;
  std::string timeline;
};

ObsRun run_observed(GpuConfig cfg, const KernelInfo& kernel, const obs::ObsOptions& opts) {
  obs::SimObserver observer(opts);
  ObsRun r;
  r.result = simulate(cfg, kernel, &observer);
  r.trace = observer.trace_json();
  r.timeline = observer.timeline_csv();
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

// The configurations whose hook streams exercise every event family: plain,
// register sharing (locks + releases), and the unroll+dyn runtime (ownership
// transfers, dyn gating).
std::vector<std::pair<std::string, GpuConfig>> trace_configs() {
  return {{"unshared", configs::unshared()},
          {"shared-reg", configs::shared_noopt(Resource::kRegisters, 0.1)},
          {"shared-reg-unroll-dyn", configs::shared_unroll_dyn(Resource::kRegisters, 0.1)}};
}

// --- determinism across execution modes ------------------------------------

TEST(ObsTrace, ByteIdenticalAcrossExecModes) {
  const KernelInfo kernels[] = {shrink(workloads::hotspot(), 8),
                                shrink(workloads::btree(), 8)};
  obs::ObsOptions opts;
  opts.trace = true;
  for (const KernelInfo& k : kernels) {
    for (const auto& [name, base] : trace_configs()) {
      GpuConfig cfg = base;
      cfg.exec_mode = ExecMode::kCycle;
      const ObsRun naive = run_observed(cfg, k, opts);
      cfg.exec_mode = ExecMode::kEvent;
      const ObsRun event = run_observed(cfg, k, opts);
      EXPECT_TRUE(naive.result.stats == event.result.stats) << k.name << " / " << name;
      EXPECT_EQ(naive.trace, event.trace) << k.name << " / " << name;
      EXPECT_FALSE(naive.trace.empty()) << k.name << " / " << name;
    }
  }
}

TEST(ObsTimeline, ByteIdenticalAcrossExecModes) {
  // Memory-bound kernel: the event loop sleeps through long idle windows, so
  // a small interval forces catch-up samples inside sleep/jump regions.
  const KernelInfo k = shrink(workloads::btree(), 12);
  for (const Cycle interval : {50u, 1000u}) {
    obs::ObsOptions opts;
    opts.timeline_interval = interval;
    GpuConfig cfg = configs::unshared();
    cfg.exec_mode = ExecMode::kCycle;
    const ObsRun naive = run_observed(cfg, k, opts);
    cfg.exec_mode = ExecMode::kEvent;
    const ObsRun event = run_observed(cfg, k, opts);
    EXPECT_TRUE(naive.result.stats == event.result.stats) << interval;
    EXPECT_EQ(naive.timeline, event.timeline) << "interval " << interval;
    EXPECT_NE(naive.timeline.find("cycle,sm,issued,stall,idle"), std::string::npos);
    EXPECT_NE(naive.timeline.find(",gpu,"), std::string::npos)
        << "timeline should carry gpu pseudo-rows";
  }
}

TEST(ObsTimeline, DynThrottledLineAcrossExecModes) {
  const KernelInfo k = shrink(workloads::btree(), 12);
  obs::ObsOptions opts;
  opts.timeline_interval = 128;
  GpuConfig cfg = configs::shared_unroll_dyn(Resource::kRegisters, 0.1);
  cfg.exec_mode = ExecMode::kCycle;
  const ObsRun naive = run_observed(cfg, k, opts);
  cfg.exec_mode = ExecMode::kEvent;
  const ObsRun event = run_observed(cfg, k, opts);
  EXPECT_EQ(naive.timeline, event.timeline);
}

// --- zero cost when off -----------------------------------------------------

TEST(ObsOff, StatsIdenticalWithTracingOnOrOff) {
  const KernelInfo k = shrink(workloads::hotspot(), 8);
  for (const auto& [name, cfg] : trace_configs()) {
    const SimResult plain = simulate(cfg, k);
    const SimResult with_null = simulate(cfg, k, nullptr);
    obs::ObsOptions opts;
    opts.trace = true;
    opts.timeline_interval = 100;
    const ObsRun observed = run_observed(cfg, k, opts);
    EXPECT_TRUE(plain.stats == with_null.stats) << name;
    EXPECT_TRUE(plain.stats == observed.result.stats) << name;
    EXPECT_EQ(plain.occupancy.total_blocks, observed.result.occupancy.total_blocks) << name;
  }
}

TEST(ObsOff, DisabledObserverProducesNoOutput) {
  const obs::ObsOptions off;  // trace=false, timeline off
  EXPECT_FALSE(off.any());
  obs::SimObserver observer(off);
  EXPECT_FALSE(observer.trace_enabled());
  const SimResult r = simulate(configs::unshared(), shrink(workloads::hotspot(), 4),
                               &observer);
  EXPECT_GT(r.stats.cycles, 0u);
  EXPECT_TRUE(observer.trace_json().empty());
  EXPECT_TRUE(observer.timeline_csv().empty());
}

TEST(ObsOff, ExternalNullSinkCountsEventsButKeepsJsonEmpty) {
  obs::ObsOptions opts;
  obs::NullTraceSink sink;
  obs::SimObserver observer(opts, &sink);  // external sink implies tracing
  EXPECT_TRUE(observer.trace_enabled());
  (void)simulate(configs::unshared(), shrink(workloads::hotspot(), 4), &observer);
  EXPECT_GT(sink.events(), 0u);
  EXPECT_TRUE(observer.trace_json().empty());  // the sink is not owned
}

// --- trace shape ------------------------------------------------------------

/// Extract `"key":<number>` from a one-event JSON line; -1 when absent.
std::int64_t json_num(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(line.c_str() + at + needle.size(), nullptr, 10);
}

TEST(ObsTrace, EventsCarryCoordinatesAndMonotoneTimestampsPerTrack) {
  obs::ObsOptions opts;
  opts.trace = true;
  const ObsRun run = run_observed(configs::shared_unroll_dyn(Resource::kRegisters, 0.1),
                                  shrink(workloads::btree(), 8), opts);
  ASSERT_EQ(run.trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(run.trace.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"otherData\""), std::string::npos);

  std::istringstream lines(run.trace);
  std::string line;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> last_ts;
  std::size_t events = 0, meta = 0;
  while (std::getline(lines, line)) {
    const std::size_t ph_at = line.find("\"ph\":\"");
    if (ph_at == std::string::npos) continue;
    const char ph = line[ph_at + 6];
    const std::int64_t pid = json_num(line, "pid");
    const std::int64_t tid = json_num(line, "tid");
    ASSERT_GE(pid, 0) << line;
    ASSERT_GE(tid, 0) << line;
    if (ph == 'M') {
      ++meta;
      continue;  // metadata records carry no timestamp
    }
    ++events;
    const std::int64_t ts = json_num(line, "ts");
    ASSERT_GE(ts, 0) << line;
    if (ph == 'X') {
      ASSERT_GE(json_num(line, "dur"), 0) << line;
    }
    auto [it, fresh] = last_ts.emplace(std::make_pair(pid, tid), ts);
    if (!fresh) {
      ASSERT_LE(it->second, ts) << "ts regressed on track (" << pid << "," << tid
                                << "): " << line;
      it->second = ts;
    }
  }
  EXPECT_GT(meta, 0u);
  EXPECT_GT(events, 0u);
}

// --- engine integration -----------------------------------------------------

runner::SweepSpec small_spec() {
  runner::SweepSpec spec;
  const KernelInfo k = shrink(workloads::hotspot(), 6);
  for (const auto& [name, cfg] : trace_configs()) spec.add(name, cfg, k);
  return spec;
}

TEST(ObsEngine, SweepFilesByteIdenticalAcrossThreadCounts) {
  namespace fs = std::filesystem;
  const std::string root = testing::TempDir() + "/grs_obs_threads";
  fs::remove_all(root);
  const runner::SweepSpec spec = small_spec();
  std::vector<std::vector<runner::SweepRow>> all_rows;
  for (const unsigned threads : {1u, 8u}) {
    const std::string dir = root + "/t" + std::to_string(threads);
    fs::create_directories(dir);
    runner::RunOptions options;
    options.threads = threads;
    options.trace_path = dir + "/trace.json";
    options.timeline_path = dir + "/timeline.csv";
    options.timeline_interval = 200;
    all_rows.push_back(runner::run_sweep(spec, options));
  }
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    const std::string suffix = "." + std::to_string(i);
    EXPECT_EQ(slurp(root + "/t1/trace" + suffix + ".json"),
              slurp(root + "/t8/trace" + suffix + ".json"))
        << i;
    EXPECT_EQ(slurp(root + "/t1/timeline" + suffix + ".csv"),
              slurp(root + "/t8/timeline" + suffix + ".csv"))
        << i;
    EXPECT_TRUE(all_rows[0][i].result.stats == all_rows[1][i].result.stats) << i;
  }
}

TEST(ObsEngine, ObservedRunsBypassTheResultCache) {
  namespace fs = std::filesystem;
  const std::string root = testing::TempDir() + "/grs_obs_cache_bypass";
  fs::remove_all(root);
  fs::create_directories(root + "/out");
  runner::RunOptions options;
  options.threads = 1;
  options.cache_dir = root + "/cache";
  options.cache_mode = cache::CacheMode::kReadWrite;
  options.trace_path = root + "/out/trace.json";
  const std::vector<runner::SweepRow> rows = runner::run_sweep(small_spec(), options);
  for (const runner::SweepRow& row : rows) {
    EXPECT_FALSE(row.from_cache);
  }
  // The cache is bypassed entirely: never even opened, so nothing on disk.
  EXPECT_FALSE(fs::exists(root + "/cache"));
}

TEST(ObsEngine, PointPathNaming) {
  EXPECT_EQ(runner::obs_point_path("trace.json", 3, 1), "trace.json");
  EXPECT_EQ(runner::obs_point_path("trace.json", 3, 5), "trace.3.json");
  EXPECT_EQ(runner::obs_point_path("a/b.json", 2, 5), "a/b.2.json");
  EXPECT_EQ(runner::obs_point_path("noext", 2, 5), "noext.2");
  EXPECT_EQ(runner::obs_point_path("dir.d/file", 2, 5), "dir.d/file.2");
}

TEST(ObsEngine, RowsCarryWallClockTelemetry) {
  runner::RunOptions options;
  options.threads = 1;
  const std::vector<runner::SweepRow> rows = runner::run_sweep(small_spec(), options);
  for (const runner::SweepRow& row : rows) {
    EXPECT_GE(row.wall_ms, 0.0);
    EXPECT_FALSE(row.from_cache);
  }
}

// --- run manifest -----------------------------------------------------------

TEST(ObsManifest, RendersV1SchemaWithSweepsAndCache) {
  const std::vector<runner::SweepRow> rows = runner::run_sweep(small_spec(), {});
  runner::RunManifest manifest("test-tool");
  manifest.add_sweep("unit", rows, 0.5, 2);
  cache::CacheStats stats;
  stats.hits = 3;
  stats.misses = 1;
  manifest.set_cache_stats(stats);
  const std::string json = manifest.to_json();
  for (const char* key :
       {"\"schema\":\"grs-run-manifest-v1\"", "\"tool\":\"test-tool\"", "\"host\"",
        "\"hardware_threads\"", "\"cache\"", "\"hits\":3", "\"sweeps\"",
        "\"name\":\"unit\"", "\"threads\":2", "\"sims_per_second\"",
        "\"pool_utilization\"", "\"cells\"", "\"config_fingerprint\"", "\"wall_ms\"",
        "\"from_cache\"", "\"cycles\"", "\"ipc\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Every cell records the 64-hex config fingerprint the cache keys on.
  EXPECT_NE(json.find(rows[0].point.config.fingerprint()), std::string::npos);

  const std::string path = testing::TempDir() + "/grs_obs_manifest.json";
  manifest.write(path);
  EXPECT_EQ(slurp(path), json);
}

TEST(ObsManifest, WriteFailureThrows) {
  runner::RunManifest manifest("test-tool");
  EXPECT_THROW(manifest.write("/nonexistent-dir-xyz/manifest.json"), std::runtime_error);
}

// --- host clock -------------------------------------------------------------

TEST(ObsClock, MonotonicAndNonNegative) {
  const double a = monotonic_seconds();
  const double b = monotonic_seconds();
  EXPECT_LE(a, b);
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.restart();
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace grs
