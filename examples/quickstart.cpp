// Quickstart: run one kernel on the baseline GPU and on the same GPU with
// register sharing enabled, and compare.
//
//   $ ./quickstart [kernel-name]      (default: hotspot)
//
// This is the 10-line introduction to the library's public API:
//   1. pick a GpuConfig (configs:: helpers name the paper's experiment lines)
//   2. pick a KernelInfo (workloads:: has all 19 paper kernels, or build your
//      own with ProgramBuilder)
//   3. simulate() and read GpuStats.
#include <cstdio>
#include <string>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

int main(int argc, char** argv) {
  using namespace grs;
  const std::string name = argc > 1 ? argv[1] : "hotspot";
  const KernelInfo kernel = workloads::by_name(name);

  const GpuConfig baseline = configs::unshared(SchedulerKind::kLrr);
  const GpuConfig sharing = configs::shared_owf_unroll_dyn(Resource::kRegisters);

  std::printf("kernel %s: %u threads/block, %u regs/thread, %uB scratchpad, %u blocks\n",
              kernel.name.c_str(), kernel.resources.threads_per_block,
              kernel.resources.regs_per_thread, kernel.resources.smem_per_block,
              kernel.grid_blocks);

  const SimResult base = simulate(baseline, kernel);
  std::printf("\n--- %s ---\n%s\n", baseline.line_label().c_str(),
              base.stats.summary().c_str());
  std::printf("resident blocks/SM: %u (limited by %s)\n", base.occupancy.total_blocks,
              to_string(base.occupancy.limiter));

  const SimResult shared = simulate(sharing, kernel);
  std::printf("\n--- %s ---\n%s\n", sharing.line_label().c_str(),
              shared.stats.summary().c_str());
  std::printf("resident blocks/SM: %u (U=%u unshared + S=%u pairs)\n",
              shared.occupancy.total_blocks, shared.occupancy.unshared_blocks,
              shared.occupancy.shared_pairs);

  std::printf("\nIPC improvement: %+.2f%%\n",
              percent_improvement(base.stats.ipc(), shared.stats.ipc()));
  return 0;
}
