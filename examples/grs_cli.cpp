// grs_cli — run any paper kernel under any configuration from the command
// line; the Swiss-army knife for exploring the simulator.
//
//   grs_cli --kernel hotspot --share registers --t 0.1 --sched owf
//           [--unroll] [--dyn] [--grid N] [--compare]
//
//   --kernel SPEC     a built-in kernel name (default hotspot), a .gkd file
//                     path, gen:<profile>:<seed>, or trace:<file>
//                     (see src/runner/kernel_source.h)
//   --load FILE       load the kernel from a .gkd file (always treated as a
//                     file path, whatever it is named)
//   --gen SEED        generate the kernel from a seed (workloads/gen)
//   --profile NAME    generator profile for --gen (default balanced)
//   --import-trace F  import an address trace (pc,tid,addr,size CSV or a
//                     memory log; see src/workloads/trace/trace_reader.h)
//                     into a histogram-profiled kernel; combine with --dump
//                     to save it as .gkd
//   --validate FILE   lint FILE as .gkd against the configured GPU without
//                     simulating; prints file:line diagnostics and exits 2
//                     when anything is wrong
//   --dump FILE       write the resolved kernel as .gkd to FILE and exit
//   --share RES       registers | scratchpad | none        (default none)
//   --t X             sharing threshold in [0.001, 1]      (default 0.1)
//   --sched S         lrr | gto | twolevel | owf           (default lrr)
//   --unroll          enable register-declaration reordering
//   --dyn             enable dynamic warp execution
//   --grid N          override grid size (>= 1)
//   --compare         also run Unshared-LRR and print the delta
//   --exec-mode M     cycle | event (default event; bit-identical stats, the
//                     event loop skips cycles in which no SM can issue)
//   --list            list built-in kernels and exit
//   --list-profiles   list generator profiles and exit
//
// Sweep mode (runs the configured line over *all* kernels in parallel via the
// experiment engine, src/runner/):
//
//   grs_cli --sweep [--threads N] [--out results.csv] [--share ... --sched ...]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/parse.h"
#include "gpu/simulator.h"
#include "runner/engine.h"
#include "runner/kernel_source.h"
#include "runner/sink.h"
#include "workloads/format/gkd.h"
#include "workloads/gen/generator.h"
#include "workloads/suites.h"
#include "workloads/trace/import.h"
#include "workloads/validate.h"

using namespace grs;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n(see the header of examples/grs_cli.cpp)\n", msg.c_str());
  std::exit(2);
}

SchedulerKind parse_sched(const std::string& s) {
  if (s == "lrr") return SchedulerKind::kLrr;
  if (s == "gto") return SchedulerKind::kGto;
  if (s == "twolevel") return SchedulerKind::kTwoLevel;
  if (s == "owf") return SchedulerKind::kOwf;
  usage("unknown scheduler");
}

ExecMode parse_exec_mode(const std::string& s) {
  if (s == "cycle") return ExecMode::kCycle;
  if (s == "event") return ExecMode::kEvent;
  usage("unknown --exec-mode (cycle | event)");
}

/// Strict numeric parsing (common/parse.h): the whole argument must be a
/// number in range — no silent atoi()-style "garbage reads as 0".
std::uint64_t arg_u64(const std::string& flag, const std::string& value) {
  const auto v = parse_u64(value);
  if (!v.has_value()) usage(flag + " expects a non-negative integer, got '" + value + "'");
  return *v;
}

std::uint32_t arg_u32(const std::string& flag, const std::string& value) {
  const auto v = parse_u32(value);
  if (!v.has_value()) usage(flag + " expects a non-negative integer, got '" + value + "'");
  return *v;
}

double arg_double(const std::string& flag, const std::string& value) {
  const auto v = parse_finite_double(value);
  if (!v.has_value()) usage(flag + " expects a number, got '" + value + "'");
  return *v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_spec = "hotspot";
  std::string share = "none";
  std::string out_csv, dump_file, profile_name = "balanced";
  bool profile_set = false;
  double t = 0.1;
  SchedulerKind sched = SchedulerKind::kLrr;
  ExecMode exec_mode = ExecMode::kEvent;
  bool unroll = false, dyn = false, compare = false, sweep = false;
  bool kernel_set = false, load_set = false, gen_set = false, trace_set = false;
  std::string validate_file;
  std::uint64_t gen_seed = 0;
  std::uint32_t grid = 0;
  unsigned threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    if (a == "--kernel") {
      kernel_spec = next();
      kernel_set = true;
    } else if (a == "--load") {
      kernel_spec = next();
      load_set = true;
    } else if (a == "--gen") {
      gen_seed = arg_u64(a, next());
      gen_set = true;
    } else if (a == "--profile") {
      profile_name = next();
      profile_set = true;
    } else if (a == "--import-trace") {
      kernel_spec = next();
      trace_set = true;
    } else if (a == "--validate") {
      validate_file = next();
    } else if (a == "--dump") {
      dump_file = next();
    } else if (a == "--share") {
      share = next();
    } else if (a == "--t") {
      t = arg_double(a, next());
      if (!(t >= 0.001 && t <= 1.0)) usage("--t must be in [0.001, 1]");
    } else if (a == "--sched") {
      sched = parse_sched(next());
    } else if (a == "--exec-mode") {
      exec_mode = parse_exec_mode(next());
    } else if (a == "--unroll") {
      unroll = true;
    } else if (a == "--dyn") {
      dyn = true;
    } else if (a == "--grid") {
      grid = arg_u32(a, next());
      if (grid == 0) usage("--grid must be >= 1");
    } else if (a == "--compare") {
      compare = true;
    } else if (a == "--sweep") {
      sweep = true;
    } else if (a == "--threads") {
      threads = arg_u32(a, next());
    } else if (a == "--out") {
      out_csv = next();
    } else if (a == "--list") {
      for (const auto& n : workloads::all_names()) std::printf("%s\n", n.c_str());
      return 0;
    } else if (a == "--list-profiles") {
      for (const auto& p : workloads::gen::all_profiles()) std::printf("%s\n", p.name.c_str());
      return 0;
    } else {
      usage("unknown flag " + a);
    }
  }
  if (static_cast<int>(kernel_set) + static_cast<int>(load_set) + static_cast<int>(gen_set) +
          static_cast<int>(trace_set) >
      1)
    usage("--kernel, --load, --gen and --import-trace are mutually exclusive");
  if (profile_set && !gen_set) usage("--profile only applies together with --gen");

  GpuConfig cfg = configs::unshared(sched);
  cfg.exec_mode = exec_mode;
  if (share != "none") {
    cfg.sharing.enabled = true;
    cfg.sharing.resource =
        share == "scratchpad" ? Resource::kScratchpad : Resource::kRegisters;
    if (share != "registers" && share != "scratchpad") usage("bad --share");
    cfg.sharing.threshold_t = t;
    cfg.sharing.unroll_registers = unroll;
    cfg.sharing.dynamic_warp_execution = dyn;
    cfg.sharing.owf = sched == SchedulerKind::kOwf;
  }
  cfg.validate();

  if (!validate_file.empty()) {
    if (kernel_set || load_set || gen_set || trace_set || sweep || compare ||
        !dump_file.empty()) {
      usage("--validate lints one file; kernel-selection/--dump/--sweep/--compare "
            "do not apply");
    }
    const std::vector<std::string> diags = workloads::lint_gkd_file(validate_file, cfg);
    for (const std::string& d : diags) std::fprintf(stderr, "%s\n", d.c_str());
    if (!diags.empty()) {
      std::fprintf(stderr, "error: %zu problem(s) in %s\n", diags.size(),
                   validate_file.c_str());
      return 2;
    }
    std::printf("OK: %s lints clean against %s\n", validate_file.c_str(),
                cfg.line_label().c_str());
    return 0;
  }

  KernelInfo kernel;
  try {
    if (gen_set) {
      kernel = workloads::gen::generate(workloads::gen::profile_by_name(profile_name), gen_seed);
    } else if (load_set) {
      kernel = workloads::gkd::load_file(kernel_spec);  // always a file, whatever its name
    } else if (trace_set) {
      kernel = workloads::trace::import_trace_file(kernel_spec);
    } else {
      kernel = runner::resolve_kernel(kernel_spec);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (grid != 0) kernel.grid_blocks = grid;

  if (!dump_file.empty()) {
    try {
      workloads::gkd::dump_file(kernel, dump_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("wrote %s (%zu static instructions) to %s\n", kernel.name.c_str(),
                kernel.program.static_length(), dump_file.c_str());
    return 0;
  }

  // A .gkd file can describe a kernel the SM cannot host at all; report that
  // as a clean error here rather than aborting inside compute_occupancy().
  const KernelResources& res = kernel.resources;
  if (res.warps_per_block(cfg.warp_size) > cfg.max_warps_per_sm() ||
      res.regs_per_block() > cfg.registers_per_sm ||
      res.smem_per_block > cfg.scratchpad_per_sm) {
    std::fprintf(stderr,
                 "error: kernel '%s' does not fit on one SM (%u threads, %u regs/thread, "
                 "%u smem bytes vs limits %u threads, %u regs, %u bytes)\n",
                 kernel.name.c_str(), res.threads_per_block, res.regs_per_thread,
                 res.smem_per_block, cfg.max_threads_per_sm, cfg.registers_per_sm,
                 cfg.scratchpad_per_sm);
    return 2;
  }

  if (sweep) {
    if (kernel_set || load_set || gen_set || trace_set || grid != 0 || compare)
      usage("--sweep runs every kernel; "
            "--kernel/--load/--gen/--import-trace/--grid/--compare do not apply");
    runner::SweepSpec spec;
    for (const auto& name : workloads::all_names())
      spec.add(cfg.line_label(), cfg, workloads::by_name(name));

    runner::RunOptions options;
    options.threads = threads;
    const auto rows = runner::run_sweep(spec, options);

    runner::ConsoleTableSink console;
    console.begin();
    for (const auto& row : rows) console.add(cfg.line_label(), row);
    console.end();

    if (!out_csv.empty()) {
      std::ofstream f(out_csv);
      if (!f) usage("cannot open " + out_csv);
      runner::CsvSink csv(f);
      csv.begin();
      for (const auto& row : rows) csv.add(cfg.line_label(), row);
      csv.end();
      std::printf("wrote %zu rows to %s\n", rows.size(), out_csv.c_str());
    }
    return 0;
  }

  const SimResult r = simulate(cfg, kernel);
  std::printf("%s on %s (%u blocks of %u threads)\n", cfg.line_label().c_str(),
              kernel.name.c_str(), kernel.grid_blocks,
              kernel.resources.threads_per_block);
  std::printf("%s\n", r.stats.summary().c_str());
  std::printf("occupancy: %u blocks/SM (baseline %u, limiter %s, U=%u, S=%u)\n",
              r.occupancy.total_blocks, r.occupancy.baseline_blocks,
              to_string(r.occupancy.limiter), r.occupancy.unshared_blocks,
              r.occupancy.shared_pairs);

  if (compare) {
    GpuConfig base_cfg = configs::unshared();
    base_cfg.exec_mode = exec_mode;
    const SimResult base = simulate(base_cfg, kernel);
    std::printf("\nvs Unshared-LRR: IPC %.2f -> %.2f (%+.2f%%)\n", base.stats.ipc(),
                r.stats.ipc(), percent_improvement(base.stats.ipc(), r.stats.ipc()));
  }
  return 0;
}
