// grs_cli — run any paper kernel under any configuration from the command
// line; the Swiss-army knife for exploring the simulator.
//
//   grs_cli --kernel hotspot --share registers --t 0.1 --sched owf
//           [--unroll] [--dyn] [--grid N] [--compare]
//   grs_cli --sweep [--threads N] [--out results.csv]   # all kernels, one line
//   grs_cli --study [--threads N]     # sharing study -> docs/study ($GRS_STUDY_DIR)
//   grs_cli --import-trace dump.csv --dump kernel.gkd   # trace -> .gkd
//   grs_cli --validate kernel.gkd                       # lint, exit 2 on problems
//
// `grs_cli --help` documents every flag (print_help() below is the single
// source of truth; scripts/check_docs.sh keeps the docs in sync with it).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "common/parse.h"
#include "gpu/simulator.h"
#include "prof/prof.h"
#include "runner/cli_options.h"
#include "runner/engine.h"
#include "runner/kernel_source.h"
#include "runner/manifest.h"
#include "runner/progress.h"
#include "runner/sink.h"
#include "runner/thread_pool.h"
#include "study/study.h"
#include "workloads/format/gkd.h"
#include "workloads/gen/generator.h"
#include "workloads/suites.h"
#include "workloads/trace/import.h"
#include "workloads/validate.h"

using namespace grs;

namespace {

/// The shared flags this binary accepts (runner/cli_options.h).
constexpr runner::CommonFlagSet kFlags{/*filter=*/false, /*json=*/false};

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n(grs_cli --help lists the flags)\n", msg.c_str());
  std::exit(2);
}

void print_help() {
  std::printf(
      "usage: grs_cli [options]\n"
      "\n"
      "Run one kernel under one configuration; the Swiss-army knife for\n"
      "exploring the simulator (docs/architecture.md maps the pieces).\n"
      "\n"
      "Kernel selection (mutually exclusive):\n"
      "  --kernel SPEC     built-in name (default hotspot), a .gkd file path,\n"
      "                    gen:<profile>:<seed>, or trace:<file>\n"
      "  --load FILE       load a .gkd file (always treated as a path)\n"
      "  --gen SEED        generate from a seed (with --profile NAME,\n"
      "                    default balanced)\n"
      "  --import-trace F  import an address trace (CSV or memory log)\n"
      "\n"
      "Actions:\n"
      "  --dump FILE       write the resolved kernel as .gkd and exit\n"
      "  --validate FILE   lint FILE as .gkd against the configured GPU;\n"
      "                    file:line diagnostics, exit 2 on problems\n"
      "  --sweep           run the configured line over all built-in kernels\n"
      "                    in parallel (--threads N, --out results.csv)\n"
      "  --study           run the full sharing study and write its reports\n"
      "                    into docs/study (or $GRS_STUDY_DIR); same engine\n"
      "                    as `grs_bench study`\n"
      "  --list            list built-in kernels and exit\n"
      "  --list-profiles   list generator profiles and exit\n"
      "  --help            this text\n"
      "\n"
      "Configuration:\n"
      "  --share RES       registers | scratchpad | none      (default none)\n"
      "  --t X             sharing threshold in [0.001, 1]    (default 0.1)\n"
      "  --sched S         lrr | gto | twolevel | owf         (default lrr)\n"
      "  --unroll          register-declaration reordering\n"
      "  --dyn             dynamic warp execution\n"
      "  --grid N          override grid size (>= 1)\n"
      "  --compare         also run Unshared-LRR and print the delta\n"
      "  --exec-mode M     cycle | event (default event; bit-identical stats)\n"
      "%s",
      runner::common_options_help(kFlags).c_str());
}

SchedulerKind parse_sched(const std::string& s) {
  if (s == "lrr") return SchedulerKind::kLrr;
  if (s == "gto") return SchedulerKind::kGto;
  if (s == "twolevel") return SchedulerKind::kTwoLevel;
  if (s == "owf") return SchedulerKind::kOwf;
  usage("unknown scheduler");
}

ExecMode parse_exec_mode(const std::string& s) {
  if (s == "cycle") return ExecMode::kCycle;
  if (s == "event") return ExecMode::kEvent;
  usage("unknown --exec-mode (cycle | event)");
}

/// Strict numeric parsing (common/parse.h): the whole argument must be a
/// number in range — no silent atoi()-style "garbage reads as 0".
std::uint64_t arg_u64(const std::string& flag, const std::string& value) {
  const auto v = parse_u64(value);
  if (!v.has_value()) usage(flag + " expects a non-negative integer, got '" + value + "'");
  return *v;
}

std::uint32_t arg_u32(const std::string& flag, const std::string& value) {
  const auto v = parse_u32(value);
  if (!v.has_value()) usage(flag + " expects a non-negative integer, got '" + value + "'");
  return *v;
}

double arg_double(const std::string& flag, const std::string& value) {
  const auto v = parse_finite_double(value);
  if (!v.has_value()) usage(flag + " expects a number, got '" + value + "'");
  return *v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_spec = "hotspot";
  std::string share = "none";
  std::string dump_file, profile_name = "balanced";
  bool profile_set = false;
  double t = 0.1;
  SchedulerKind sched = SchedulerKind::kLrr;
  ExecMode exec_mode = ExecMode::kEvent;
  bool unroll = false, dyn = false, compare = false, sweep = false, study = false;
  bool kernel_set = false, load_set = false, gen_set = false, trace_set = false;
  bool sched_set = false, t_set = false, exec_set = false;
  std::string validate_file;
  std::uint64_t gen_seed = 0;
  std::uint32_t grid = 0;
  runner::CommonOptions opts;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage("missing value for " + a);
        return argv[++i];
      };
      if (parse_common_flag(opts, kFlags, a, next)) {
        continue;
      } else if (a == "--kernel") {
        kernel_spec = next();
        kernel_set = true;
      } else if (a == "--load") {
        kernel_spec = next();
        load_set = true;
      } else if (a == "--gen") {
        gen_seed = arg_u64(a, next());
        gen_set = true;
      } else if (a == "--profile") {
        profile_name = next();
        profile_set = true;
      } else if (a == "--import-trace") {
        kernel_spec = next();
        trace_set = true;
      } else if (a == "--validate") {
        validate_file = next();
      } else if (a == "--dump") {
        dump_file = next();
      } else if (a == "--share") {
        share = next();
      } else if (a == "--t") {
        t = arg_double(a, next());
        if (!(t >= 0.001 && t <= 1.0)) usage("--t must be in [0.001, 1]");
        t_set = true;
      } else if (a == "--sched") {
        sched = parse_sched(next());
        sched_set = true;
      } else if (a == "--exec-mode") {
        exec_mode = parse_exec_mode(next());
        exec_set = true;
      } else if (a == "--unroll") {
        unroll = true;
      } else if (a == "--dyn") {
        dyn = true;
      } else if (a == "--grid") {
        grid = arg_u32(a, next());
        if (grid == 0) usage("--grid must be >= 1");
      } else if (a == "--compare") {
        compare = true;
      } else if (a == "--sweep") {
        sweep = true;
      } else if (a == "--study") {
        study = true;
      } else if (a == "--help" || a == "-h") {
        print_help();
        return 0;
      } else if (a == "--list") {
        for (const auto& n : workloads::all_names()) std::printf("%s\n", n.c_str());
        return 0;
      } else if (a == "--list-profiles") {
        for (const auto& p : workloads::gen::all_profiles())
          std::printf("%s\n", p.name.c_str());
        return 0;
      } else {
        usage("unknown flag " + a);
      }
    }
    opts.finalize();
  } catch (const runner::UsageError& e) {
    usage(e.what());
  }
  if (static_cast<int>(kernel_set) + static_cast<int>(load_set) + static_cast<int>(gen_set) +
          static_cast<int>(trace_set) >
      1)
    usage("--kernel, --load, --gen and --import-trace are mutually exclusive");
  if (profile_set && !gen_set) usage("--profile only applies together with --gen");

  GpuConfig cfg = configs::unshared(sched);
  cfg.exec_mode = exec_mode;
  if (share != "none") {
    cfg.sharing.enabled = true;
    cfg.sharing.resource =
        share == "scratchpad" ? Resource::kScratchpad : Resource::kRegisters;
    if (share != "registers" && share != "scratchpad") usage("bad --share");
    cfg.sharing.threshold_t = t;
    cfg.sharing.unroll_registers = unroll;
    cfg.sharing.dynamic_warp_execution = dyn;
    cfg.sharing.owf = sched == SchedulerKind::kOwf;
  }
  cfg.validate();

  if (!validate_file.empty()) {
    if (kernel_set || load_set || gen_set || trace_set || sweep || study || compare ||
        !dump_file.empty()) {
      usage("--validate lints one file; kernel-selection/--dump/--sweep/--study/--compare "
            "do not apply");
    }
    const std::vector<std::string> diags = workloads::lint_gkd_file(validate_file, cfg);
    for (const std::string& d : diags) std::fprintf(stderr, "%s\n", d.c_str());
    if (!diags.empty()) {
      std::fprintf(stderr, "error: %zu problem(s) in %s\n", diags.size(),
                   validate_file.c_str());
      return 2;
    }
    std::printf("OK: %s lints clean against %s\n", validate_file.c_str(),
                cfg.line_label().c_str());
    return 0;
  }

  if (study) {
    // The study fixes its own kernels and configuration lines; reject every
    // flag it would otherwise silently ignore.
    if (kernel_set || load_set || gen_set || trace_set || sweep || compare || grid != 0 ||
        !dump_file.empty() || !opts.out_csv.empty() || share != "none" || sched_set ||
        t_set || unroll || dyn || exec_set || opts.obs_enabled() || opts.prof_enabled() ||
        opts.progress || !opts.manifest_path.empty()) {
      usage("--study runs the full sharing study with its own kernels and configs; only "
            "--threads and --cache/--cache-mode/--cache-stats apply "
            "(use grs_bench for --trace/--timeline/--manifest/--prof/--progress)");
    }
    try {
      study::StudyOptions options;
      options.threads = opts.threads;
      options.cache_dir = opts.cache_dir;
      options.cache_mode = opts.cache_dir.empty() ? cache::CacheMode::kOff : opts.cache_mode;
      options.cache_stats = opts.cache_stats;
      study::run_study(options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  KernelInfo kernel;
  try {
    if (gen_set) {
      kernel = workloads::gen::generate(workloads::gen::profile_by_name(profile_name), gen_seed);
    } else if (load_set) {
      kernel = workloads::gkd::load_file(kernel_spec);  // always a file, whatever its name
    } else if (trace_set) {
      kernel = workloads::trace::import_trace_file(kernel_spec);
    } else {
      kernel = runner::resolve_kernel(kernel_spec);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (grid != 0) kernel.grid_blocks = grid;

  if (!dump_file.empty()) {
    try {
      workloads::gkd::dump_file(kernel, dump_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("wrote %s (%zu static instructions) to %s\n", kernel.name.c_str(),
                kernel.program.static_length(), dump_file.c_str());
    return 0;
  }

  // A .gkd file can describe a kernel the SM cannot host at all; report that
  // as a clean error here rather than aborting inside compute_occupancy().
  const KernelResources& res = kernel.resources;
  if (res.warps_per_block(cfg.warp_size) > cfg.max_warps_per_sm() ||
      res.regs_per_block() > cfg.registers_per_sm ||
      res.smem_per_block > cfg.scratchpad_per_sm) {
    std::fprintf(stderr,
                 "error: kernel '%s' does not fit on one SM (%u threads, %u regs/thread, "
                 "%u smem bytes vs limits %u threads, %u regs, %u bytes)\n",
                 kernel.name.c_str(), res.threads_per_block, res.regs_per_thread,
                 res.smem_per_block, cfg.max_threads_per_sm, cfg.registers_per_sm,
                 cfg.scratchpad_per_sm);
    return 2;
  }

  cache::CacheStats cache_total;
  prof::HostProfiler prof_total;  // one merged profile across all sweeps
  runner::ProgressTicker ticker("[grs_cli]");
  runner::RunManifest manifest("grs_cli");
  // Engine options shared by every simulating path; the same accumulators
  // feed them all, so one cache summary / profile file covers the invocation.
  auto engine_options = [&]() {
    runner::RunOptions run = opts.run_options(&cache_total, &prof_total);
    if (opts.progress)
      run.progress = [&ticker](std::size_t done, std::size_t total) {
        ticker.update(done, total);
      };
    return run;
  };
  // Shared tail of every simulating path: cache summary on stderr whenever the
  // cache was in play, then the --prof/--prof-folded and --manifest files.
  auto finish_run = [&]() -> int {
    if (opts.cache_enabled())
      std::fprintf(stderr, "[grs_cli] cache: %s\n", cache_total.summary().c_str());
    if (opts.prof_enabled()) {
      try {
        prof::write_prof_outputs(prof_total, opts.prof_path, opts.prof_folded_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
    if (!opts.manifest_path.empty()) {
      if (opts.cache_enabled()) manifest.set_cache_stats(cache_total);
      try {
        manifest.write(opts.manifest_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
    return 0;
  };
  auto threads_used = [&](std::size_t points) {
    const unsigned t =
        opts.threads == 0 ? runner::ThreadPool::default_threads() : opts.threads;
    return static_cast<unsigned>(std::min<std::size_t>(t, std::max<std::size_t>(points, 1)));
  };

  if (sweep) {
    if (kernel_set || load_set || gen_set || trace_set || grid != 0 || compare)
      usage("--sweep runs every kernel; "
            "--kernel/--load/--gen/--import-trace/--grid/--compare do not apply");
    runner::SweepSpec spec;
    for (const auto& name : workloads::all_names())
      spec.add(cfg.line_label(), cfg, workloads::by_name(name));

    const WallTimer timer;
    std::vector<runner::SweepRow> rows;
    try {
      rows = runner::run_sweep(spec, engine_options());
    } catch (const std::exception& e) {
      ticker.finish();
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    ticker.finish();
    if (!opts.manifest_path.empty())
      manifest.add_sweep("sweep", rows, timer.seconds(), threads_used(rows.size()));

    runner::ConsoleTableSink console;
    console.begin();
    for (const auto& row : rows) console.add(cfg.line_label(), row);
    console.end();

    if (!opts.out_csv.empty()) {
      std::ofstream f(opts.out_csv);
      if (!f) usage("cannot open " + opts.out_csv);
      runner::CsvSink csv(f);
      csv.begin();
      for (const auto& row : rows) csv.add(cfg.line_label(), row);
      csv.end();
      std::printf("wrote %zu rows to %s\n", rows.size(), opts.out_csv.c_str());
    }
    return finish_run();
  }

  // The two --compare runs would write to the same --trace/--timeline paths,
  // the second silently clobbering the first.
  if (compare && opts.obs_enabled())
    usage("--compare with --trace/--timeline would overwrite the first run's files; "
          "trace the two configurations separately");

  // Single runs go through the engine too, so --cache and the observability
  // flags apply to the interactive dev loop exactly as they do to sweeps.
  auto run_one = [&](const GpuConfig& c) -> SimResult {
    runner::SweepSpec spec;
    spec.add(c.line_label(), c, kernel);
    const WallTimer timer;
    std::vector<runner::SweepRow> rows = runner::run_sweep(spec, engine_options());
    ticker.finish();
    if (!opts.manifest_path.empty())
      manifest.add_sweep(c.line_label(), rows, timer.seconds(), threads_used(rows.size()));
    return rows[0].result;
  };

  try {
    const SimResult r = run_one(cfg);
    std::printf("%s on %s (%u blocks of %u threads)\n", cfg.line_label().c_str(),
                kernel.name.c_str(), kernel.grid_blocks,
                kernel.resources.threads_per_block);
    std::printf("%s\n", r.stats.summary().c_str());
    std::printf("occupancy: %u blocks/SM (baseline %u, limiter %s, U=%u, S=%u)\n",
                r.occupancy.total_blocks, r.occupancy.baseline_blocks,
                to_string(r.occupancy.limiter), r.occupancy.unshared_blocks,
                r.occupancy.shared_pairs);

    if (compare) {
      GpuConfig base_cfg = configs::unshared();
      base_cfg.exec_mode = exec_mode;
      const SimResult base = run_one(base_cfg);
      std::printf("\nvs Unshared-LRR: IPC %.2f -> %.2f (%+.2f%%)\n", base.stats.ipc(),
                  r.stats.ipc(), percent_improvement(base.stats.ipc(), r.stats.ipc()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return finish_run();
}
