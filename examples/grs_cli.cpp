// grs_cli — run any paper kernel under any configuration from the command
// line; the Swiss-army knife for exploring the simulator.
//
//   grs_cli --kernel hotspot --share registers --t 0.1 --sched owf
//           [--unroll] [--dyn] [--grid N] [--compare]
//
//   --kernel NAME     one of the 19 paper kernels (default hotspot)
//   --share RES       registers | scratchpad | none        (default none)
//   --t X             sharing threshold in (0,1]           (default 0.1)
//   --sched S         lrr | gto | twolevel | owf           (default lrr)
//   --unroll          enable register-declaration reordering
//   --dyn             enable dynamic warp execution
//   --grid N          override grid size
//   --compare         also run Unshared-LRR and print the delta
//   --exec-mode M     cycle | event (default event; bit-identical stats, the
//                     event loop skips cycles in which no SM can issue)
//   --list            list kernels and exit
//
// Sweep mode (runs the configured line over *all* kernels in parallel via the
// experiment engine, src/runner/):
//
//   grs_cli --sweep [--threads N] [--out results.csv] [--share ... --sched ...]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/config.h"
#include "gpu/simulator.h"
#include "runner/engine.h"
#include "runner/sink.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n(see the header of examples/grs_cli.cpp)\n", msg);
  std::exit(2);
}

SchedulerKind parse_sched(const std::string& s) {
  if (s == "lrr") return SchedulerKind::kLrr;
  if (s == "gto") return SchedulerKind::kGto;
  if (s == "twolevel") return SchedulerKind::kTwoLevel;
  if (s == "owf") return SchedulerKind::kOwf;
  usage("unknown scheduler");
}

ExecMode parse_exec_mode(const std::string& s) {
  if (s == "cycle") return ExecMode::kCycle;
  if (s == "event") return ExecMode::kEvent;
  usage("unknown --exec-mode (cycle | event)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_name = "hotspot";
  std::string share = "none";
  std::string out_csv;
  double t = 0.1;
  SchedulerKind sched = SchedulerKind::kLrr;
  ExecMode exec_mode = ExecMode::kEvent;
  bool unroll = false, dyn = false, compare = false, sweep = false, kernel_set = false;
  std::uint32_t grid = 0;
  unsigned threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--kernel") {
      kernel_name = next();
      kernel_set = true;
    }
    else if (a == "--share") share = next();
    else if (a == "--t") t = std::atof(next().c_str());
    else if (a == "--sched") sched = parse_sched(next());
    else if (a == "--exec-mode") exec_mode = parse_exec_mode(next());
    else if (a == "--unroll") unroll = true;
    else if (a == "--dyn") dyn = true;
    else if (a == "--grid") grid = static_cast<std::uint32_t>(std::atoi(next().c_str()));
    else if (a == "--compare") compare = true;
    else if (a == "--sweep") sweep = true;
    else if (a == "--threads") threads = static_cast<unsigned>(std::atoi(next().c_str()));
    else if (a == "--out") out_csv = next();
    else if (a == "--list") {
      for (const auto& n : workloads::all_names()) std::printf("%s\n", n.c_str());
      return 0;
    } else {
      usage(("unknown flag " + a).c_str());
    }
  }

  KernelInfo kernel = workloads::by_name(kernel_name);
  if (grid != 0) kernel.grid_blocks = grid;

  GpuConfig cfg = configs::unshared(sched);
  cfg.exec_mode = exec_mode;
  if (share != "none") {
    cfg.sharing.enabled = true;
    cfg.sharing.resource =
        share == "scratchpad" ? Resource::kScratchpad : Resource::kRegisters;
    if (share != "registers" && share != "scratchpad") usage("bad --share");
    cfg.sharing.threshold_t = t;
    cfg.sharing.unroll_registers = unroll;
    cfg.sharing.dynamic_warp_execution = dyn;
    cfg.sharing.owf = sched == SchedulerKind::kOwf;
  }
  cfg.validate();

  if (sweep) {
    if (kernel_set || grid != 0 || compare)
      usage("--sweep runs every kernel; --kernel/--grid/--compare do not apply");
    runner::SweepSpec spec;
    for (const auto& name : workloads::all_names())
      spec.add(cfg.line_label(), cfg, workloads::by_name(name));

    runner::RunOptions options;
    options.threads = threads;
    const auto rows = runner::run_sweep(spec, options);

    runner::ConsoleTableSink console;
    console.begin();
    for (const auto& row : rows) console.add(cfg.line_label(), row);
    console.end();

    if (!out_csv.empty()) {
      std::ofstream f(out_csv);
      if (!f) usage(("cannot open " + out_csv).c_str());
      runner::CsvSink csv(f);
      csv.begin();
      for (const auto& row : rows) csv.add(cfg.line_label(), row);
      csv.end();
      std::printf("wrote %zu rows to %s\n", rows.size(), out_csv.c_str());
    }
    return 0;
  }

  const SimResult r = simulate(cfg, kernel);
  std::printf("%s on %s (%u blocks of %u threads)\n", cfg.line_label().c_str(),
              kernel.name.c_str(), kernel.grid_blocks,
              kernel.resources.threads_per_block);
  std::printf("%s\n", r.stats.summary().c_str());
  std::printf("occupancy: %u blocks/SM (baseline %u, limiter %s, U=%u, S=%u)\n",
              r.occupancy.total_blocks, r.occupancy.baseline_blocks,
              to_string(r.occupancy.limiter), r.occupancy.unshared_blocks,
              r.occupancy.shared_pairs);

  if (compare) {
    const SimResult base = simulate(configs::unshared(), kernel);
    std::printf("\nvs Unshared-LRR: IPC %.2f -> %.2f (%+.2f%%)\n", base.stats.ipc(),
                r.stats.ipc(), percent_improvement(base.stats.ipc(), r.stats.ipc()));
  }
  return 0;
}
