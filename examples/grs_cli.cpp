// grs_cli — run any paper kernel under any configuration from the command
// line; the Swiss-army knife for exploring the simulator.
//
//   grs_cli --kernel hotspot --share registers --t 0.1 --sched owf \
//           [--unroll] [--dyn] [--grid N] [--compare]
//
//   --kernel NAME     one of the 19 paper kernels (default hotspot)
//   --share RES       registers | scratchpad | none        (default none)
//   --t X             sharing threshold in (0,1]           (default 0.1)
//   --sched S         lrr | gto | twolevel | owf           (default lrr)
//   --unroll          enable register-declaration reordering
//   --dyn             enable dynamic warp execution
//   --grid N          override grid size
//   --compare         also run Unshared-LRR and print the delta
//   --list            list kernels and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n(see the header of examples/grs_cli.cpp)\n", msg);
  std::exit(2);
}

SchedulerKind parse_sched(const std::string& s) {
  if (s == "lrr") return SchedulerKind::kLrr;
  if (s == "gto") return SchedulerKind::kGto;
  if (s == "twolevel") return SchedulerKind::kTwoLevel;
  if (s == "owf") return SchedulerKind::kOwf;
  usage("unknown scheduler");
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_name = "hotspot";
  std::string share = "none";
  double t = 0.1;
  SchedulerKind sched = SchedulerKind::kLrr;
  bool unroll = false, dyn = false, compare = false;
  std::uint32_t grid = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--kernel") kernel_name = next();
    else if (a == "--share") share = next();
    else if (a == "--t") t = std::atof(next().c_str());
    else if (a == "--sched") sched = parse_sched(next());
    else if (a == "--unroll") unroll = true;
    else if (a == "--dyn") dyn = true;
    else if (a == "--grid") grid = static_cast<std::uint32_t>(std::atoi(next().c_str()));
    else if (a == "--compare") compare = true;
    else if (a == "--list") {
      for (const auto& n : workloads::all_names()) std::printf("%s\n", n.c_str());
      return 0;
    } else {
      usage(("unknown flag " + a).c_str());
    }
  }

  KernelInfo kernel = workloads::by_name(kernel_name);
  if (grid != 0) kernel.grid_blocks = grid;

  GpuConfig cfg = configs::unshared(sched);
  if (share != "none") {
    cfg.sharing.enabled = true;
    cfg.sharing.resource =
        share == "scratchpad" ? Resource::kScratchpad : Resource::kRegisters;
    if (share != "registers" && share != "scratchpad") usage("bad --share");
    cfg.sharing.threshold_t = t;
    cfg.sharing.unroll_registers = unroll;
    cfg.sharing.dynamic_warp_execution = dyn;
    cfg.sharing.owf = sched == SchedulerKind::kOwf;
  }
  cfg.validate();

  const SimResult r = simulate(cfg, kernel);
  std::printf("%s on %s (%u blocks of %u threads)\n", cfg.line_label().c_str(),
              kernel.name.c_str(), kernel.grid_blocks,
              kernel.resources.threads_per_block);
  std::printf("%s\n", r.stats.summary().c_str());
  std::printf("occupancy: %u blocks/SM (baseline %u, limiter %s, U=%u, S=%u)\n",
              r.occupancy.total_blocks, r.occupancy.baseline_blocks,
              to_string(r.occupancy.limiter), r.occupancy.unshared_blocks,
              r.occupancy.shared_pairs);

  if (compare) {
    const SimResult base = simulate(configs::unshared(), kernel);
    std::printf("\nvs Unshared-LRR: IPC %.2f -> %.2f (%+.2f%%)\n", base.stats.ipc(),
                r.stats.ipc(), percent_improvement(base.stats.ipc(), r.stats.ipc()));
  }
  return 0;
}
