// Register-sharing walk-through on a hand-built kernel.
//
// Builds a small kernel with ProgramBuilder, shows how the occupancy
// calculator turns the register budget into a sharing plan (Eq. 1-4), how the
// unroll/reorder pass moves the first shared-register access, and what that
// does to performance across the paper's optimization ladder.
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "core/occupancy.h"
#include "gpu/simulator.h"
#include "isa/analysis.h"
#include "isa/builder.h"
#include "isa/reorder.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

/// A register-hungry kernel: 256 threads, 30 registers/thread -> 7680
/// registers per block, so ⌊32768/7680⌋ = 4 resident blocks and 2048
/// registers (6.25%) wasted per SM without sharing.
KernelInfo make_demo_kernel() {
  ProgramBuilder b(30);
  // Index math in a couple of registers...
  b.alu(5).alu(7, 5).alu(5, 7);
  // ...then progressively register-hungry compute over streamed data.
  b.loop(24, [](ProgramBuilder& l) {
    l.ld_global(12, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.alu(9, 12, 3).alu(22, 9, 12).alu(14, 22, 9).alu(28, 14, 22);
    l.alu(1, 28, 14).alu(19, 1, 28).alu(25, 19, 1).alu(8, 25, 19);
    l.st_global(8, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });

  KernelInfo k;
  k.name = "demo";
  k.resources = KernelResources{256, 30, 0};
  k.grid_blocks = 168;
  k.program = b.build();
  k.validate();
  return k;
}

}  // namespace

int main() {
  const KernelInfo kernel = make_demo_kernel();

  // --- the sharing plan --------------------------------------------------
  GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters, 0.1);
  const Occupancy occ = compute_occupancy(cfg, kernel.resources);
  std::printf("baseline blocks/SM: %u (limited by %s, %.1f%% of registers wasted)\n",
              occ.baseline_blocks, to_string(occ.limiter), occ.baseline_waste_percent);
  std::printf("sharing plan at t=%.1f: M=%u total = %u unshared + 2x%u shared pairs\n",
              cfg.sharing.threshold_t, occ.total_blocks, occ.unshared_blocks,
              occ.shared_pairs);

  // --- what the unroll pass changes ---------------------------------------
  const RegNum private_regs = occ.unshared_regs_per_thread;
  const Program reordered = reorder_registers_by_first_use(kernel.program);
  std::printf("\nprivate registers per thread at t=0.1: %u of %u\n", private_regs,
              kernel.resources.regs_per_thread);
  std::printf("instructions a non-owner warp runs before its first shared-register "
              "access:\n  as declared: %llu\n  after unroll/reorder: %llu\n",
              static_cast<unsigned long long>(
                  instructions_before_shared_reg(kernel.program, private_regs)),
              static_cast<unsigned long long>(
                  instructions_before_shared_reg(reordered, private_regs)));

  // --- the optimization ladder (paper Fig. 9a) ---------------------------
  TextTable t({"configuration", "IPC", "vs Unshared-LRR"});
  const double base = simulate(configs::unshared(), kernel).stats.ipc();
  t.add_row({"Unshared-LRR", TextTable::fmt(base), "--"});
  for (const GpuConfig& c :
       {configs::shared_noopt(Resource::kRegisters),
        configs::shared_unroll(Resource::kRegisters),
        configs::shared_unroll_dyn(Resource::kRegisters),
        configs::shared_owf_unroll_dyn(Resource::kRegisters)}) {
    const double ipc = simulate(c, kernel).stats.ipc();
    t.add_row({c.line_label(), TextTable::fmt(ipc),
               TextTable::pct(percent_improvement(base, ipc))});
  }
  t.print("register sharing on the demo kernel");
  return 0;
}
