// Compare all four warp schedulers (LRR, GTO, Two-Level, OWF) on one kernel,
// with and without resource sharing — a compact version of the paper's
// Fig. 10/12 methodology.
//
//   $ ./scheduler_comparison [kernel-name]   (default: MUM)
#include <cstdio>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "workloads/suites.h"

using namespace grs;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MUM";
  const KernelInfo kernel = workloads::by_name(name);

  // Sharing is configured on whichever resource limits this kernel.
  const Occupancy probe = compute_occupancy(configs::unshared(), kernel.resources);
  const Resource res = probe.limiter == Resource::kScratchpad ? Resource::kScratchpad
                                                              : Resource::kRegisters;

  TextTable t({"scheduler", "unshared IPC", "shared IPC", "sharing gain"});
  for (const SchedulerKind sched : {SchedulerKind::kLrr, SchedulerKind::kGto,
                                    SchedulerKind::kTwoLevel, SchedulerKind::kOwf}) {
    GpuConfig unshared = configs::unshared(sched);
    GpuConfig shared = configs::shared_owf_unroll_dyn(res);
    shared.scheduler = sched;  // keep the scheduler, keep the optimizations
    const double u = simulate(unshared, kernel).stats.ipc();
    const double s = simulate(shared, kernel).stats.ipc();
    t.add_row({to_string(sched), TextTable::fmt(u), TextTable::fmt(s),
               TextTable::pct(percent_improvement(u, s))});
  }
  t.print("scheduler comparison on " + kernel.name + " (sharing on " +
          to_string(res) + std::string(")"));
  return 0;
}
