// Scratchpad-sharing walk-through (paper §III-B) on the two extreme Set-2
// kernels: lavaMD (whose accessed footprint never enters the shared region,
// so extra blocks run free) and SRAD1 (whose barrier-adjacent shared access
// pins non-owner blocks almost immediately).
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "gpu/simulator.h"
#include "isa/analysis.h"
#include "workloads/suites.h"

using namespace grs;

namespace {

void show(const KernelInfo& kernel) {
  const GpuConfig base_cfg = configs::unshared();
  const GpuConfig share_cfg = configs::shared_owf(Resource::kScratchpad, 0.1);

  const SimResult base = simulate(base_cfg, kernel);
  const SimResult shared = simulate(share_cfg, kernel);

  const std::uint32_t private_bytes = shared.occupancy.unshared_smem_bytes;
  std::printf("\n%s: %uB scratchpad/block, %u -> %u resident blocks at 90%% sharing\n",
              kernel.name.c_str(), kernel.resources.smem_per_block,
              base.occupancy.total_blocks, shared.occupancy.total_blocks);
  std::printf("  private region: first %uB; instructions before first shared-region "
              "access: %llu of %llu\n",
              private_bytes,
              static_cast<unsigned long long>(
                  instructions_before_shared_smem(kernel.program, private_bytes)),
              static_cast<unsigned long long>(kernel.program.dynamic_length()));
  std::printf("  IPC %8.2f -> %8.2f  (%+.2f%%)   lock waits: %llu warp-cycles, "
              "ownership transfers: %llu\n",
              base.stats.ipc(), shared.stats.ipc(),
              percent_improvement(base.stats.ipc(), shared.stats.ipc()),
              static_cast<unsigned long long>(shared.stats.sm_total.lock_wait_cycles),
              static_cast<unsigned long long>(shared.stats.sm_total.ownership_transfers));
}

}  // namespace

int main() {
  std::printf("scratchpad sharing: the two extremes of Set-2\n");
  show(workloads::lavamd());
  show(workloads::srad1());

  // Threshold sweep on lavaMD (paper Table VII row): residency only moves
  // once t is small enough for Eq. 4 to admit an extra pair.
  TextTable t({"sharing %", "t", "blocks/SM", "IPC"});
  const KernelInfo k = workloads::lavamd();
  for (const double pct : {0.0, 10.0, 30.0, 50.0, 70.0, 90.0}) {
    const double threshold = 1.0 - pct / 100.0;
    const SimResult r = simulate(configs::shared_owf(Resource::kScratchpad, threshold), k);
    t.add_row({TextTable::fmt(pct, 0), TextTable::fmt(threshold, 1),
               std::to_string(r.occupancy.total_blocks), TextTable::fmt(r.stats.ipc())});
  }
  t.print("lavaMD across sharing thresholds");
  return 0;
}
