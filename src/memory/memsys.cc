#include "memory/memsys.h"

#include <algorithm>

#include "common/check.h"

namespace grs {

namespace {
/// L2 pipeline (tag + data array) latency.
constexpr Cycle kL2Pipe = 40;
}  // namespace

MemorySystem::MemorySystem(const GpuConfig& cfg)
    : cfg_(cfg), dram_(cfg.dram, cfg.l2.line_bytes) {
  cfg_.validate();
  // One L2 bank per DRAM channel keeps addressing aligned and gives the
  // 768KB cache (Table I) a realistic amount of request parallelism.
  const std::uint32_t n_banks = cfg.dram.num_channels;
  CacheConfig per_bank = cfg.l2;
  per_bank.size_bytes = cfg.l2.size_bytes / n_banks;
  per_bank.mshr_entries = std::max<std::uint32_t>(1, cfg.l2.mshr_entries / n_banks);
  banks_.reserve(n_banks);
  for (std::uint32_t b = 0; b < n_banks; ++b) banks_.emplace_back(per_bank);
}

Cycle MemorySystem::access(Addr line_addr, Cycle now) {
  // Interconnect transit, each way.
  const Cycle transit = (cfg_.l2_hit_latency - kL2Pipe) / 2;

  const std::uint64_t line = line_addr / cfg_.l2.line_bytes;
  L2Bank& bank = banks_[line % banks_.size()];

  const Cycle arrive = now + transit;
  const Cycle start = std::max(arrive, bank.next_free);
  bank.next_free = start + kBankOccupancy;

  const Cache::LookupResult r = bank.tags.lookup(line_addr, start);
  if (r.hit) return start + kL2Pipe + transit;
  if (r.mshr_merge) {
    // Data arrives at the L2 at r.ready; serve after both that and our
    // own pipeline slot.
    return std::max(start + kL2Pipe, r.ready) + transit;
  }

  // Primary miss (or MSHR full: bypass without fill).
  const Cycle dram_ready = dram_.request(line_addr, start + kL2Pipe);
  if (!r.mshr_full) bank.tags.fill_inflight(line_addr, dram_ready);
  return dram_ready + transit;
}

std::uint64_t MemorySystem::l2_accesses() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.tags.accesses;
  return n;
}

std::uint64_t MemorySystem::l2_misses() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.tags.misses;
  return n;
}

}  // namespace grs
