#include "memory/memsys.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"
#include "prof/prof.h"

namespace grs {

MemorySystem::MemorySystem(const GpuConfig& cfg)
    : cfg_(cfg), dram_(cfg.dram, cfg.l2.line_bytes) {
  cfg_.validate();
  // One L2 bank per DRAM channel keeps addressing aligned and gives the
  // 768KB cache (Table I) a realistic amount of request parallelism. Sets and
  // MSHR entries are dealt out whole, low banks first, so the per-bank sums
  // always reconstruct the configured totals (an even divide used to drop the
  // remainder and silently shrink the cache).
  const std::uint32_t n_banks = cfg.dram.num_channels;
  const std::uint32_t total_sets = cfg.l2.num_sets();
  const std::uint32_t set_bytes = cfg.l2.line_bytes * cfg.l2.ways;
  banks_.reserve(n_banks);
  for (std::uint32_t b = 0; b < n_banks; ++b) {
    CacheConfig per_bank = cfg.l2;
    per_bank.size_bytes = (total_sets / n_banks + (b < total_sets % n_banks ? 1 : 0)) *
                          set_bytes;
    per_bank.mshr_entries =
        cfg.l2.mshr_entries / n_banks + (b < cfg.l2.mshr_entries % n_banks ? 1 : 0);
    banks_.emplace_back(per_bank);
  }
}

const CacheConfig& MemorySystem::bank_config(std::uint32_t bank) const {
  GRS_CHECK(bank < banks_.size());
  return banks_[bank].tags.config();
}

void MemorySystem::set_observer(obs::SimObserver* o) {
  trace_ = (o != nullptr && o->trace_enabled()) ? o : nullptr;
}

Cycle MemorySystem::access(Addr line_addr, Cycle now) {
  prof::ScopedPhase prof_scope(prof_, prof::Phase::kMemsys);
  // Interconnect transit, each way.
  const Cycle transit = (cfg_.l2_hit_latency - kL2PipeLatency) / 2;

  const std::uint64_t line = line_addr / cfg_.l2.line_bytes;
  const std::uint32_t bank_idx = static_cast<std::uint32_t>(line % banks_.size());
  L2Bank& bank = banks_[bank_idx];

  const Cycle arrive = now + transit;
  const Cycle start = std::max(arrive, bank.next_free);
  bank.next_free = start + kBankOccupancy;

  const Cache::LookupResult r = bank.tags.lookup(line_addr, start);
  if (r.hit) {
    if (trace_)
      trace_->l2_transaction(bank_idx, start, line_addr, true, false, start + kL2PipeLatency);
    return start + kL2PipeLatency + transit;
  }
  if (r.mshr_merge) {
    // Data arrives at the L2 at r.ready; serve after both that and our
    // own pipeline slot.
    const Cycle served = std::max(start + kL2PipeLatency, r.ready);
    if (trace_) trace_->l2_transaction(bank_idx, start, line_addr, false, true, served);
    return served + transit;
  }

  // Primary miss (or MSHR full: bypass without fill).
  Dram::RequestInfo info;
  Cycle dram_ready;
  {
    prof::ScopedPhase prof_dram(prof_, prof::Phase::kDram);
    dram_ready = dram_.request(line_addr, start + kL2PipeLatency, trace_ ? &info : nullptr);
  }
  if (!r.mshr_full) bank.tags.fill_inflight(line_addr, dram_ready);
  if (trace_) {
    trace_->l2_transaction(bank_idx, start, line_addr, false, false, dram_ready);
    trace_->dram_transaction(info.channel, info.bank, info.begin, line_addr, info.row_hit,
                             dram_ready);
  }
  return dram_ready + transit;
}

std::uint32_t MemorySystem::l2_busy_banks(Cycle at) const {
  std::uint32_t n = 0;
  for (const auto& b : banks_) n += b.next_free > at ? 1 : 0;
  return n;
}

std::uint64_t MemorySystem::l2_accesses() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.tags.accesses;
  return n;
}

std::uint64_t MemorySystem::l2_misses() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.tags.misses;
  return n;
}

}  // namespace grs
