#include "memory/coalescer.h"

#include "common/check.h"
#include "common/prng.h"

namespace grs {

Addr Coalescer::region_base(std::uint8_t region) const {
  // Disjoint 64GB windows per region id.
  return static_cast<Addr>(region) << 36;
}

void Coalescer::expand(const Instruction& instr, const MemAccessContext& ctx,
                       std::vector<Addr>& out) const {
  GRS_CHECK(is_global_mem(instr.op));
  const std::uint32_t txns = transactions_per_access(instr.pattern);
  const Addr base = region_base(instr.region);
  const std::uint64_t fp = instr.footprint_lines == 0 ? 1 : instr.footprint_lines;

  for (std::uint32_t t = 0; t < txns; ++t) {
    std::uint64_t line_index = 0;
    switch (instr.locality) {
      case Locality::kStreaming:
        // Unit-stride per warp, fresh lines each dynamic access: a private
        // 1M-line stripe per warp, advancing line-sequentially with the
        // warp's memory-access stream (row-buffer friendly).
        line_index = (ctx.warp_uid << 20) + ctx.mem_seq * txns + t;
        break;
      case Locality::kWarpLocal:
        // The warp cycles over a private window of `footprint_lines` lines:
        // reuse distance is small for a scheduler that keeps the warp
        // running, but multiplies by the number of interleaved warps under
        // round-robin issue.
        line_index = (ctx.warp_uid << 12) + (ctx.mem_seq * txns + t) % fp;
        break;
      case Locality::kBlockLocal:
        // Working set of `footprint_lines` lines shared by the block's
        // warps; which line is touched varies by position in the stream.
        line_index = (ctx.block_uid << 24) +
                     hash_combine(ctx.mem_seq, t * 0x9E37u + instr.region) % fp;
        break;
      case Locality::kGridShared:
        // Read-only table shared by the whole grid.
        line_index = hash_combine(ctx.mem_seq * txns + t, instr.region) % fp;
        break;
      case Locality::kRandom:
        // Irregular per-warp gather over a large region.
        line_index =
            hash_combine(hash_combine(ctx.warp_uid, ctx.mem_seq), t + instr.region) % fp;
        break;
    }
    out.push_back(base + line_index * line_bytes_);
  }
}

}  // namespace grs
