#include "memory/coalescer.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace grs {

Addr Coalescer::region_base(std::uint8_t region) const {
  // Disjoint 64GB windows per region id.
  return static_cast<Addr>(region) << 36;
}

void Coalescer::expand(const Instruction& instr, const MemAccessContext& ctx,
                       std::vector<Addr>& out) const {
  GRS_CHECK(is_global_mem(instr.op));
  if (instr.profile) {
    expand_profiled(instr, *instr.profile, ctx, out);
    return;
  }
  const std::uint32_t txns = transactions_per_access(instr.pattern);
  const Addr base = region_base(instr.region);
  const std::uint64_t fp = instr.footprint_lines == 0 ? 1 : instr.footprint_lines;

  for (std::uint32_t t = 0; t < txns; ++t) {
    std::uint64_t line_index = 0;
    switch (instr.locality) {
      case Locality::kStreaming:
        // Unit-stride per warp, fresh lines each dynamic access: a private
        // 1M-line stripe per warp, advancing line-sequentially with the
        // warp's memory-access stream (row-buffer friendly).
        line_index = (ctx.warp_uid << 20) + ctx.mem_seq * txns + t;
        break;
      case Locality::kWarpLocal:
        // The warp cycles over a private window of `footprint_lines` lines:
        // reuse distance is small for a scheduler that keeps the warp
        // running, but multiplies by the number of interleaved warps under
        // round-robin issue.
        line_index = (ctx.warp_uid << 12) + (ctx.mem_seq * txns + t) % fp;
        break;
      case Locality::kBlockLocal:
        // Working set of `footprint_lines` lines shared by the block's
        // warps; which line is touched varies by position in the stream.
        line_index = (ctx.block_uid << 24) +
                     hash_combine(ctx.mem_seq, t * 0x9E37u + instr.region) % fp;
        break;
      case Locality::kGridShared:
        // Read-only table shared by the whole grid.
        line_index = hash_combine(ctx.mem_seq * txns + t, instr.region) % fp;
        break;
      case Locality::kRandom:
        // Irregular per-warp gather over a large region.
        line_index =
            hash_combine(hash_combine(ctx.warp_uid, ctx.mem_seq), t + instr.region) % fp;
        break;
    }
    out.push_back(base + line_index * line_bytes_);
  }
}

// Histogram-backed address synthesis. All draws key off
// (warp_uid, region, mem_seq, transaction index) through counter-based
// hashing, never off simulation time, which keeps the address stream — and
// therefore every downstream statistic — bit-identical between the cycle and
// event execution loops.
//
// Model: the warp's "fresh" position walks the instruction's footprint at the
// dominant stride, offset by a per-warp phase so warps overlap inside a small
// footprint the way trace warps do. Non-dominant strides from the histogram
// perturb each access as transient excursions (keeping the position a closed
// form of the access index rather than a running sum). Each transaction then
// either revisits the line the fresh walk produced `d` accesses ago (d drawn
// from the reuse histogram) or takes the current fresh line when the draw
// says cold. Wrapping at footprint_lines adds the capacity component of
// reuse the reuse histogram alone cannot carry.
void Coalescer::expand_profiled(const Instruction& instr, const MemProfile& p,
                                const MemAccessContext& ctx, std::vector<Addr>& out) const {
  // Draw-domain separators so the three histograms never share a hash stream.
  constexpr std::uint64_t kTxnSalt = 0x74786e73;     // "txns"
  constexpr std::uint64_t kStrideSalt = 0x73747264;  // "strd"
  constexpr std::uint64_t kReuseSalt = 0x72657573;   // "reus"
  constexpr std::uint64_t kPhaseSalt = 0x70686173;   // "phas"

  const Addr base = region_base(instr.region);
  const std::uint64_t fp = p.footprint_lines == 0 ? 1 : p.footprint_lines;
  const std::uint64_t key =
      hash_combine(ctx.warp_uid, hash_combine(ctx.instr_uid, instr.region));
  // Walk in the instruction's own execution index: histograms were reduced
  // per static instruction, so this is the counter their strides and reuse
  // distances are denominated in.
  const std::uint64_t j = ctx.instr_seq;

  const std::int64_t dominant = p.dominant_stride();
  const std::uint64_t mag = std::min<std::uint64_t>(
      std::max<std::uint64_t>(dominant < 0 ? static_cast<std::uint64_t>(-dominant)
                                           : static_cast<std::uint64_t>(dominant),
                              1),
      fp);
  const std::uint64_t phase = hash_combine(key, kPhaseSalt) % fp;

  auto fresh_line = [&](std::uint64_t seq, std::uint64_t t) -> std::uint64_t {
    const std::int64_t s =
        p.sample_stride(hash_combine(key, hash_combine(seq, kStrideSalt)));
    // Deviation from the dominant walk, bounded to the footprint so the
    // signed wrap below stays well-defined.
    const std::int64_t dev =
        std::clamp<std::int64_t>(s - dominant, -static_cast<std::int64_t>(fp) + 1,
                                 static_cast<std::int64_t>(fp) - 1);
    const std::uint64_t walk = (phase + seq * mag + t) % fp;
    const std::int64_t pos = static_cast<std::int64_t>(walk) + dev;
    return static_cast<std::uint64_t>(pos % static_cast<std::int64_t>(fp) +
                                      (pos < 0 ? static_cast<std::int64_t>(fp) : 0)) %
           fp;
  };

  const std::uint32_t txns = p.sample_coalesce(hash_combine(key, hash_combine(j, kTxnSalt)));
  for (std::uint32_t t = 0; t < txns; ++t) {
    const std::int64_t d =
        p.sample_reuse(hash_combine(key, hash_combine(j * 33 + t, kReuseSalt)));
    const bool cold = d == MemProfile::kColdReuse || static_cast<std::uint64_t>(d) > j;
    const std::uint64_t line = cold ? fresh_line(j, t)
                                    : fresh_line(j - static_cast<std::uint64_t>(d), t);
    out.push_back(base + line * line_bytes_);
  }
}

}  // namespace grs
