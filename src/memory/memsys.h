// The GPU-shared part of the memory hierarchy: banked L2 in front of DRAM.
//
// SMs present line-granular transactions (already coalesced and filtered by
// their private L1). Each L2 bank serializes accesses (queue modelled by a
// next-free cycle), merges in-flight misses per line, and forwards primary
// misses to DRAM.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "memory/cache.h"
#include "memory/dram.h"

namespace grs {

namespace obs {
class SimObserver;
}
namespace prof {
class HostProfiler;
}

class MemorySystem {
 public:
  explicit MemorySystem(const GpuConfig& cfg);

  /// Trace L2/DRAM transaction lifecycles into `o` (null, or an observer
  /// without tracing, disables the hooks — the default).
  void set_observer(obs::SimObserver* o);

  /// Time access()/DRAM service into `p` (null disables — the default).
  void set_profiler(prof::HostProfiler* p) { prof_ = p; }

  /// One L1-miss transaction first observed at `now`; returns data-ready
  /// cycle at the SM. Deterministic in call order.
  [[nodiscard]] Cycle access(Addr line_addr, Cycle now);

  // -- introspection -------------------------------------------------------
  [[nodiscard]] std::uint32_t num_banks() const {
    return static_cast<std::uint32_t>(banks_.size());
  }
  /// Geometry actually given to bank `bank` (remainder sets/MSHRs go to the
  /// low banks; per-bank sums reconstruct the configured L2 totals).
  [[nodiscard]] const CacheConfig& bank_config(std::uint32_t bank) const;

  // -- stats -------------------------------------------------------------
  [[nodiscard]] std::uint64_t l2_accesses() const;
  [[nodiscard]] std::uint64_t l2_misses() const;
  [[nodiscard]] std::uint64_t dram_requests() const { return dram_.requests; }
  [[nodiscard]] std::uint64_t dram_row_hits() const { return dram_.row_hits; }

  // -- occupancy gauges (timeline sampling) --------------------------------
  /// L2 banks whose serialization queue extends past `at`.
  [[nodiscard]] std::uint32_t l2_busy_banks(Cycle at) const;
  [[nodiscard]] std::uint32_t dram_busy_banks(Cycle at) const { return dram_.busy_banks(at); }

 private:
  struct L2Bank {
    explicit L2Bank(const CacheConfig& c) : tags(c) {}
    Cache tags;
    Cycle next_free = 0;
  };

  GpuConfig cfg_;
  std::vector<L2Bank> banks_;
  Dram dram_;
  obs::SimObserver* trace_ = nullptr;  ///< null unless event tracing is on
  prof::HostProfiler* prof_ = nullptr; ///< null unless --prof/--prof-folded
  /// Cycles an L2 bank is occupied per transaction.
  static constexpr Cycle kBankOccupancy = 2;
};

}  // namespace grs
