// Set-associative cache tag array with LRU replacement and an MSHR table.
//
// This is a *timing* cache: it tracks tags and in-flight misses, not data.
// Fill discipline: a missing line is entered into the MSHR with the cycle at
// which the lower level will deliver it; tags are installed lazily when a
// later access observes that the ready cycle has passed ("fill on ready").
// Accesses to a line already in flight merge into the existing MSHR entry and
// complete at its ready cycle without generating lower-level traffic.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace grs {

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  struct LookupResult {
    bool hit = false;         ///< tag present (or line already delivered)
    bool mshr_merge = false;  ///< miss merged into an in-flight entry
    bool mshr_full = false;   ///< structural: no MSHR entry available
    Cycle ready = 0;          ///< earliest cycle data is available (merge only)
  };

  /// Probe the cache at `now`. On a primary miss the caller must then call
  /// `fill_inflight(line, ready)` with the lower level's completion cycle.
  /// Does not allocate on miss by itself.
  [[nodiscard]] LookupResult lookup(Addr line_addr, Cycle now);

  /// Register a primary miss in the MSHR: the line becomes resident (tag
  /// installed) once `ready` has passed.
  void fill_inflight(Addr line_addr, Cycle ready);

  /// Deliver every in-flight line whose data has arrived by `now`. Must be
  /// called once per cycle by the owner: lookup() also drains, but a full
  /// MSHR blocks issues *before* lookup, so without an explicit drain the
  /// cache would deadlock against its own occupancy pre-check.
  void drain(Cycle now);

  /// Number of MSHR entries currently in flight (for tests).
  [[nodiscard]] std::size_t inflight() const { return mshr_.size(); }

  /// Earliest ready cycle over the in-flight misses, kNeverCycle when none.
  /// The event-driven loop uses this as a wakeup: a warp blocked on MSHR
  /// capacity can become issuable as soon as any entry drains.
  [[nodiscard]] Cycle next_ready() const;

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  // Statistics (primary accesses only; the caller classifies).
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t merges = 0;

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< last-touch stamp
  };

  void install(Addr line_addr);
  [[nodiscard]] std::size_t set_index(Addr line_addr) const;

  CacheConfig cfg_;
  std::vector<Way> ways_;               ///< num_sets * ways, row-major
  std::unordered_map<Addr, Cycle> mshr_;  ///< line -> ready cycle
  std::vector<std::pair<Cycle, Addr>> ready_scratch_;  ///< drain() sort buffer
  std::uint64_t stamp_ = 0;
};

}  // namespace grs
