// Coarse GDDR timing model: channels x banks, open-row policy.
//
// Approximates FR-FCFS the way the paper's results consume it: row-buffer
// hits occupy the bank for a short service window, row misses pay
// precharge+activate and occupy it longer, and requests to a busy bank queue
// behind it. A flat base latency models command/data transit and the
// interconnect return path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace grs {

class Dram {
 public:
  explicit Dram(const DramConfig& cfg, std::uint32_t line_bytes);

  /// Per-request facts the tracing layer wants; filled only when a non-null
  /// pointer is passed to request() (the hot path skips it entirely).
  struct RequestInfo {
    Cycle begin = 0;        ///< cycle the bank starts servicing
    bool row_hit = false;
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;  ///< within the channel
  };

  /// Issue one line fetch first observed at `now`; returns data-ready cycle.
  [[nodiscard]] Cycle request(Addr line_addr, Cycle now, RequestInfo* info = nullptr);

  /// Banks still servicing a request after `at` (timeline occupancy gauge).
  [[nodiscard]] std::uint32_t busy_banks(Cycle at) const;

  [[nodiscard]] const DramConfig& config() const { return cfg_; }

  std::uint64_t requests = 0;
  std::uint64_t row_hits = 0;

 private:
  struct Bank {
    /// Most-recently-touched rows, LRU order (front = most recent). Acts as
    /// the FR-FCFS reorder window: see DramConfig::row_window.
    std::vector<std::uint64_t> recent_rows;
    Cycle next_free = 0;
  };

  [[nodiscard]] std::size_t bank_index(Addr line_addr) const;

  DramConfig cfg_;
  std::uint32_t line_bytes_;
  std::vector<Bank> banks_;
};

}  // namespace grs
