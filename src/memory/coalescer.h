// Memory-access coalescer: expands one warp global-memory instruction into
// its 128B line transactions, with addresses synthesized from the
// instruction's pattern/locality descriptor.
//
// Address synthesis is the bridge between the synthetic kernel IR and the
// cache hierarchy: it is deterministic (counter-based hashing, common/prng.h)
// and chosen so each Locality produces the reuse behaviour its name implies
// (see isa/opcode.h). Regions are disjoint 64GB windows, so distinct data
// structures never alias.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace grs {

/// Identifies which warp executes the access and where it is in its
/// instruction stream; all address synthesis keys off these.
struct MemAccessContext {
  std::uint64_t warp_uid = 0;   ///< globally unique warp id (grid-wide)
  std::uint64_t block_uid = 0;  ///< globally unique block id (grid-wide)
  /// Index of this access in the warp's *global-memory* instruction stream.
  /// Streaming patterns advance line-sequentially in this counter, which is
  /// what gives a streaming warp its DRAM row-buffer locality.
  std::uint64_t mem_seq = 0;
  /// Execution index of the *current static instruction* for this warp (its
  /// loop-iteration count). MemProfile histograms are measured per static
  /// instruction (trace/reduce.h keys on pc), so profile-backed sampling
  /// walks in this counter — using mem_seq would stretch a K-instruction
  /// loop's strides and reuse distances by K.
  std::uint64_t instr_seq = 0;
  /// Static identity of the instruction (segment/offset packed), separating
  /// the draw streams of same-region profiled instructions.
  std::uint64_t instr_uid = 0;
};

class Coalescer {
 public:
  explicit Coalescer(std::uint32_t line_bytes) : line_bytes_(line_bytes) {}

  /// Append the line addresses of every transaction for `instr` to `out`.
  /// With a MemProfile attached, the transaction count and line indices are
  /// sampled from the instruction's histograms; otherwise the transaction
  /// count is transactions_per_access(instr.pattern) and addresses follow the
  /// locality formulas below. Both paths are pure functions of
  /// (instr, ctx) — no time, no mutable state — so the address stream is
  /// bit-identical across execution modes.
  void expand(const Instruction& instr, const MemAccessContext& ctx,
              std::vector<Addr>& out) const;

 private:
  void expand_profiled(const Instruction& instr, const MemProfile& p,
                       const MemAccessContext& ctx, std::vector<Addr>& out) const;

  [[nodiscard]] Addr region_base(std::uint8_t region) const;

  std::uint32_t line_bytes_;
};

}  // namespace grs
