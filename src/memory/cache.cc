#include "memory/cache.h"

#include <algorithm>

#include "common/check.h"

namespace grs {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  GRS_CHECK(cfg.num_sets() >= 1);
  GRS_CHECK(cfg.ways >= 1);
  ways_.resize(static_cast<std::size_t>(cfg.num_sets()) * cfg.ways);
}

std::size_t Cache::set_index(Addr line_addr) const {
  return static_cast<std::size_t>(line_addr / cfg_.line_bytes) % cfg_.num_sets();
}

void Cache::install(Addr line_addr) {
  const std::size_t base = set_index(line_addr) * cfg_.ways;
  // Reuse an existing tag slot if present (refill), else evict LRU.
  std::size_t victim = base;
  std::uint64_t best = ways_[base].lru;
  for (std::size_t w = base; w < base + cfg_.ways; ++w) {
    if (ways_[w].valid && ways_[w].tag == line_addr) {
      ways_[w].lru = ++stamp_;
      return;
    }
    if (!ways_[w].valid) {
      victim = w;
      best = 0;
    } else if (ways_[w].lru < best) {
      victim = w;
      best = ways_[w].lru;
    }
  }
  ways_[victim] = Way{line_addr, true, ++stamp_};
}

void Cache::drain(Cycle now) {
  // Collect, then install sorted by (ready, line): a drain that covers
  // several cycles at once (the event-driven loop wakes an SM after a
  // multi-cycle idle window) must assign LRU stamps in the same order a
  // cycle-by-cycle drain would, or replacement decisions diverge between
  // execution modes. The line-address tie-break keeps same-cycle batches
  // independent of hash-map iteration order.
  ready_scratch_.clear();
  for (auto it = mshr_.begin(); it != mshr_.end();) {
    if (it->second <= now) {
      ready_scratch_.emplace_back(it->second, it->first);
      it = mshr_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(ready_scratch_.begin(), ready_scratch_.end());
  for (const auto& [ready, line] : ready_scratch_) install(line);
}

Cache::LookupResult Cache::lookup(Addr line_addr, Cycle now) {
  ++accesses;
  drain(now);

  const std::size_t base = set_index(line_addr) * cfg_.ways;
  for (std::size_t w = base; w < base + cfg_.ways; ++w) {
    if (ways_[w].valid && ways_[w].tag == line_addr) {
      ways_[w].lru = ++stamp_;
      ++hits;
      return LookupResult{.hit = true};
    }
  }

  if (auto it = mshr_.find(line_addr); it != mshr_.end()) {
    ++merges;
    return LookupResult{.hit = false, .mshr_merge = true, .ready = it->second};
  }

  if (mshr_.size() >= cfg_.mshr_entries) {
    --accesses;  // structural reject: the access will be retried
    return LookupResult{.mshr_full = true};
  }

  ++misses;
  return LookupResult{};  // primary miss; caller calls fill_inflight()
}

Cycle Cache::next_ready() const {
  Cycle next = kNeverCycle;
  for (const auto& [line, ready] : mshr_) next = std::min(next, ready);
  return next;
}

void Cache::fill_inflight(Addr line_addr, Cycle ready) {
  GRS_CHECK(mshr_.size() < cfg_.mshr_entries);
  mshr_.emplace(line_addr, ready);
}

}  // namespace grs
