#include "memory/dram.h"

#include <algorithm>

#include "common/check.h"

namespace grs {

Dram::Dram(const DramConfig& cfg, std::uint32_t line_bytes)
    : cfg_(cfg), line_bytes_(line_bytes) {
  GRS_CHECK(cfg.num_channels >= 1 && cfg.banks_per_channel >= 1);
  GRS_CHECK(cfg.row_bytes >= line_bytes_);
  banks_.resize(static_cast<std::size_t>(cfg.num_channels) * cfg.banks_per_channel);
}

std::size_t Dram::bank_index(Addr line_addr) const {
  // Channel from low line bits (spread consecutive lines over channels),
  // bank from bits above the row (consecutive rows hit the same bank less).
  const std::uint64_t line = line_addr / line_bytes_;
  const std::size_t channel = line % cfg_.num_channels;
  const std::uint64_t row = line_addr / cfg_.row_bytes;
  const std::size_t bank = row % cfg_.banks_per_channel;
  return channel * cfg_.banks_per_channel + bank;
}

Cycle Dram::request(Addr line_addr, Cycle now, RequestInfo* info) {
  ++requests;
  const std::size_t idx = bank_index(line_addr);
  Bank& b = banks_[idx];
  const std::uint64_t row = line_addr / cfg_.row_bytes;

  bool hit = false;
  for (std::size_t i = 0; i < b.recent_rows.size(); ++i) {
    if (b.recent_rows[i] == row) {
      hit = true;
      b.recent_rows.erase(b.recent_rows.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  b.recent_rows.insert(b.recent_rows.begin(), row);
  if (b.recent_rows.size() > cfg_.row_window) b.recent_rows.pop_back();

  if (hit) ++row_hits;
  const Cycle begin = std::max(now, b.next_free);
  const Cycle service = hit ? cfg_.row_hit_service : cfg_.row_miss_service;
  b.next_free = begin + service;
  if (info != nullptr) {
    info->begin = begin;
    info->row_hit = hit;
    info->channel = static_cast<std::uint32_t>(idx / cfg_.banks_per_channel);
    info->bank = static_cast<std::uint32_t>(idx % cfg_.banks_per_channel);
  }
  return begin + service + cfg_.base_latency;
}

std::uint32_t Dram::busy_banks(Cycle at) const {
  std::uint32_t n = 0;
  for (const auto& b : banks_) n += b.next_free > at ? 1 : 0;
  return n;
}

}  // namespace grs
