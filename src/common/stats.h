// Simulation statistics: per-SM counters and whole-GPU aggregates.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace grs {

/// Counters collected by one SM during a simulation.
struct SmStats {
  // Scheduler-cycle accounting. Each of the SM's schedulers classifies every
  // cycle as exactly one of {issued, stall, idle} (see DESIGN.md §5):
  //   issued — a warp instruction was issued;
  //   stall  — >=1 warp had a ready instruction but a pipeline/structural
  //            hazard (LSU port/queue, MSHR, SFU port) prevented issue
  //            (paper: "pipeline stall");
  //   idle   — no warp was ready: all waiting on in-flight results, sharing
  //            locks, the Dyn gate, barriers, or no warps resident (paper:
  //            "no warp is ready to execute").
  std::uint64_t issued_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t idle_cycles = 0;

  std::uint64_t warp_instructions = 0;    ///< warp-level instructions issued
  std::uint64_t thread_instructions = 0;  ///< sum of active lanes over issues

  std::uint64_t blocks_launched = 0;
  std::uint64_t blocks_finished = 0;
  std::uint32_t max_resident_blocks = 0;
  std::uint32_t max_resident_warps = 0;

  // Sharing runtime events.
  std::uint64_t lock_acquisitions = 0;     ///< shared-resource locks granted
  std::uint64_t lock_wait_cycles = 0;      ///< warp-cycles spent lock-blocked
  std::uint64_t ownership_transfers = 0;
  std::uint64_t dyn_throttled_issues = 0;  ///< issues suppressed by Dyn

  // L1 data cache.
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l1_mshr_merges = 0;

  // Stall-cause breakdown (warp-cycles; a warp blocked for a reason adds one
  // count per cycle it is scanned). Diagnostic, not part of the paper.
  std::uint64_t blocked_lsu_port = 0;
  std::uint64_t blocked_lsu_inflight = 0;
  std::uint64_t blocked_mshr = 0;
  std::uint64_t blocked_sfu_port = 0;
  std::uint64_t blocked_scoreboard = 0;
  std::uint64_t blocked_barrier = 0;

  void merge(const SmStats& o);

  /// Add `n` copies of the per-cycle delta `after - before` to this block.
  /// Used by the event-driven loop (gpu/gpu.cc) to account a run of skipped
  /// cycles whose scan is provably identical to the one just executed; the
  /// max_resident_* high-water marks are carried over unscaled (their delta
  /// is zero in any cycle that issues nothing).
  void accumulate_scaled_delta(const SmStats& before, const SmStats& after,
                               std::uint64_t n);

  [[nodiscard]] std::uint64_t scheduler_cycles() const {
    return issued_cycles + stall_cycles + idle_cycles;
  }
};

/// Field-wise equality (the cross-mode equivalence contract).
[[nodiscard]] bool operator==(const SmStats& a, const SmStats& b);
inline bool operator!=(const SmStats& a, const SmStats& b) { return !(a == b); }

/// Whole-GPU results for one kernel run.
struct GpuStats {
  Cycle cycles = 0;  ///< total GPU cycles to drain the grid
  SmStats sm_total;  ///< sum over SMs

  // L2 / DRAM (shared across SMs).
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_requests = 0;
  std::uint64_t dram_row_hits = 0;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(sm_total.thread_instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double warp_ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(sm_total.warp_instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double l1_miss_rate() const {
    return sm_total.l1_accesses == 0 ? 0.0
                                     : static_cast<double>(sm_total.l1_misses) /
                                           static_cast<double>(sm_total.l1_accesses);
  }
  [[nodiscard]] double l2_miss_rate() const {
    return l2_accesses == 0 ? 0.0
                            : static_cast<double>(l2_misses) / static_cast<double>(l2_accesses);
  }

  /// Multi-line human-readable dump (used by examples).
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] bool operator==(const GpuStats& a, const GpuStats& b);
inline bool operator!=(const GpuStats& a, const GpuStats& b) { return !(a == b); }

/// Percentage change helpers used throughout the benches.
[[nodiscard]] double percent_improvement(double baseline, double value);
[[nodiscard]] double percent_decrease(double baseline, double value);

}  // namespace grs
