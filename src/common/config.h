// GPU configuration (paper Table I) and sharing/optimization switches.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace grs {

/// Top-level simulation loop strategy. Both modes produce bit-identical
/// statistics; kEvent skips stretches of cycles in which no SM can issue
/// (common in memory-bound kernels) by jumping to the next timed wakeup.
enum class ExecMode : std::uint8_t {
  kCycle,  ///< naive loop: tick every SM every cycle
  kEvent,  ///< event-driven: bulk-skip provably idle cycle ranges
};

[[nodiscard]] constexpr const char* to_string(ExecMode m) {
  switch (m) {
    case ExecMode::kCycle: return "cycle";
    case ExecMode::kEvent: return "event";
  }
  return "?";
}

/// L2 pipeline (tag + data array) latency, part of every l2_hit_latency.
/// The remaining (l2_hit_latency - kL2PipeLatency) is split evenly between
/// the two interconnect traversals (memory/memsys.cc).
inline constexpr Cycle kL2PipeLatency = 40;

/// Configuration of the resource-sharing runtime (the paper's contribution).
struct SharingConfig {
  /// Master switch. When false the dispatcher behaves exactly like the
  /// baseline GPGPU-Sim block launcher.
  bool enabled = false;

  /// Which resource is shared. The paper evaluates register sharing (Set-1)
  /// and scratchpad sharing (Set-2) separately.
  Resource resource = Resource::kRegisters;

  /// Threshold t in (0, 1]: a shared pair receives (1+t)*Rtb units of the
  /// shared resource, of which t*Rtb per block is private and (1-t)*Rtb is
  /// the shared pool (paper §III). Percentage of sharing = (1-t)*100.
  /// Paper default: t = 0.1 (90% sharing).
  double threshold_t = 0.1;

  /// Owner-warp-first scheduling (paper §IV-A). Only meaningful when the
  /// SM scheduler kind is kOwf; kept here so a single struct describes one
  /// experiment line ("Shared-OWF-Unroll-Dyn" etc.).
  bool owf = false;

  /// Unrolling & reordering of register declarations (paper §IV-B): renumber
  /// kernel registers by first use before simulation.
  bool unroll_registers = false;

  /// Dynamic warp execution (paper §IV-C): stall-feedback throttling of
  /// non-owner memory instructions.
  bool dynamic_warp_execution = false;

  /// Dyn parameters (paper: monitor every 1000 cycles, step p = 0.1).
  Cycle dyn_period = 1000;
  double dyn_step = 0.1;

  [[nodiscard]] double sharing_percent() const { return (1.0 - threshold_t) * 100.0; }
};

/// Cache geometry.
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 128;
  std::uint32_t ways = 4;
  std::uint32_t mshr_entries = 64;  ///< distinct in-flight miss lines
  [[nodiscard]] std::uint32_t num_sets() const { return size_bytes / (line_bytes * ways); }
};

/// DRAM timing model (coarse FR-FCFS-like, see memory/dram.h).
struct DramConfig {
  std::uint32_t num_channels = 6;
  std::uint32_t banks_per_channel = 8;
  std::uint32_t row_bytes = 2048;
  /// Service occupancy of one 128B transaction at the bank (cycles).
  Cycle row_hit_service = 6;
  Cycle row_miss_service = 24;  ///< precharge + activate + CAS
  /// Flat latency added for request/response transit (off-chip + queues).
  Cycle base_latency = 150;
  /// FR-FCFS approximation: a request row-hits if its row is one of the last
  /// `row_window` rows touched in the bank (the scheduler batches row hits
  /// out of order, so recently-open rows serve cheaply even when requests
  /// from many warps interleave).
  std::uint32_t row_window = 4;
};

/// Full GPU configuration. Defaults reproduce paper Table I.
struct GpuConfig {
  // --- Table I ---------------------------------------------------------
  std::uint32_t num_sms = 14;              ///< 14 clusters x 1 core
  std::uint32_t max_blocks_per_sm = 8;
  std::uint32_t max_threads_per_sm = 1536;
  std::uint32_t registers_per_sm = 32768;
  std::uint32_t scratchpad_per_sm = 16 * 1024;  ///< bytes
  std::uint32_t warp_size = 32;
  std::uint32_t num_schedulers = 2;
  SchedulerKind scheduler = SchedulerKind::kLrr;
  CacheConfig l1;                           ///< 16KB per core
  CacheConfig l2{768 * 1024, 128, 8, 256};  ///< 768KB shared
  DramConfig dram;

  // --- Execution latencies (cycles) ------------------------------------
  Cycle alu_latency = 6;
  Cycle sfu_latency = 18;
  Cycle scratchpad_latency = 22;
  Cycle l1_hit_latency = 30;
  Cycle l2_hit_latency = 160;   ///< total from SM for an L1-miss/L2-hit

  // --- Structural limits -------------------------------------------------
  /// Memory instructions in flight per SM (LSU queue depth).
  std::uint32_t lsu_max_inflight = 96;
  /// SFU instructions accepted per SM per cycle.
  std::uint32_t sfu_issue_per_cycle = 1;
  /// Memory instructions accepted per SM per cycle (LSU issue port).
  std::uint32_t lsu_issue_per_cycle = 1;

  // --- Two-level scheduler ----------------------------------------------
  std::uint32_t two_level_group_size = 8;

  // --- Sharing ------------------------------------------------------------
  SharingConfig sharing;

  /// Hard cap to terminate runaway simulations (0 = unlimited).
  Cycle max_cycles = 0;

  /// Simulation loop strategy; statistics are bit-identical across modes.
  ExecMode exec_mode = ExecMode::kEvent;

  [[nodiscard]] std::uint32_t max_warps_per_sm() const {
    return max_threads_per_sm / warp_size;
  }

  /// Human-readable name of the experiment line this config encodes,
  /// e.g. "Shared-OWF-Unroll-Dyn" / "Unshared-LRR" (paper figure labels).
  [[nodiscard]] std::string line_label() const;

  /// Canonical key/value serialization: every configuration field, one
  /// "key value\n" line each, in a fixed order, behind a versioned header.
  /// Two configs produce the same text iff they would drive simulate()
  /// identically; this text is what fingerprint() hashes. Adding a field to
  /// GpuConfig (or its nested structs) without extending this codec fails the
  /// coverage guard in tests/test_cache.cc.
  [[nodiscard]] std::string canonical_kv() const;

  /// Lowercase SHA-256 hex digest of canonical_kv() — the config half of the
  /// content-addressed result-cache key (src/cache/key.h).
  [[nodiscard]] std::string fingerprint() const;

  /// Abort-with-message validation of internal consistency.
  void validate() const;
};

/// Named experiment lines from the paper's figures.
namespace configs {

/// Baseline: no sharing, chosen scheduler (paper "Unshared-LRR" etc.).
[[nodiscard]] GpuConfig unshared(SchedulerKind sched = SchedulerKind::kLrr);

/// Sharing enabled on `res`, no optimizations, LRR ("Shared-LRR-NoOpt").
[[nodiscard]] GpuConfig shared_noopt(Resource res, double t = 0.1);

/// Sharing + unroll ("Shared-LRR-Unroll").
[[nodiscard]] GpuConfig shared_unroll(Resource res, double t = 0.1);

/// Sharing + unroll + dynamic warp execution ("Shared-LRR-Unroll-Dyn").
[[nodiscard]] GpuConfig shared_unroll_dyn(Resource res, double t = 0.1);

/// Full register-sharing line ("Shared-OWF-Unroll-Dyn").
[[nodiscard]] GpuConfig shared_owf_unroll_dyn(Resource res, double t = 0.1);

/// Full scratchpad-sharing line ("Shared-OWF"; paper applies unroll/dyn only
/// to register sharing).
[[nodiscard]] GpuConfig shared_owf(Resource res, double t = 0.1);

}  // namespace configs

}  // namespace grs
