// SHA-256 — the content hash behind every cache fingerprint.
//
// Self-contained (FIPS 180-4, no external dependency) and deterministic
// across platforms, so a fingerprint computed on one machine addresses the
// same cache entry on any other. Used by GpuConfig::fingerprint() and the
// result cache's kernel/config keys (src/cache/key.h).
#pragma once

#include <cstdint>
#include <string>

namespace grs {

/// Lowercase 64-hex-digit SHA-256 digest of `data`.
[[nodiscard]] std::string sha256_hex(const std::string& data);

}  // namespace grs
