// Minimal fixed-width text table writer for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper reports; this
// helper keeps that output aligned and greppable.
#pragma once

#include <string>
#include <vector>

namespace grs {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment. First column left-aligned, rest right.
  [[nodiscard]] std::string render() const;

  /// Convenience: render and write to stdout with a caption line.
  void print(const std::string& caption) const;

  /// Format helpers.
  [[nodiscard]] static std::string fmt(double v, int precision = 2);
  [[nodiscard]] static std::string pct(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grs
