// Strict, whole-string numeric parsing for CLI frontends.
//
// Unlike atoi/atof, these reject partial parses ("4x"), empty strings, and
// out-of-range values instead of silently reading 0 — callers turn
// std::nullopt into their own usage errors. The integer parsers accept only
// decimal digits (no signs or whitespace); the double parser accepts any
// finite strtod() spelling covering the whole string (signed, exponent or
// hex-float forms included), rejecting NaN and infinities so callers' range
// checks behave as written.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace grs {

/// Non-negative decimal integer; the entire string must be digits.
[[nodiscard]] inline std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

[[nodiscard]] inline std::optional<std::uint32_t> parse_u32(const std::string& s) {
  const std::optional<std::uint64_t> v = parse_u64(s);
  if (!v.has_value() || *v > UINT32_MAX) return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

/// Finite double covering the whole string (NaN and inf are rejected, so a
/// range check like `*v >= lo && *v <= hi` behaves as written).
[[nodiscard]] inline std::optional<double> parse_finite_double(const std::string& s) {
  if (s.empty() || s[0] == ' ' || s[0] == '\t') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (!(v == v) || v > 1e308 || v < -1e308) return std::nullopt;  // NaN / inf
  return v;
}

}  // namespace grs
