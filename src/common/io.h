// Tiny file I/O helpers shared by every loader-style entry point.
#pragma once

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace grs {

/// The whole of `path` as a string, or nullopt when it cannot be opened.
/// Callers own the error policy (throw, diagnostic, ...) — which is why this
/// does not throw itself.
[[nodiscard]] inline std::optional<std::string> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

}  // namespace grs
