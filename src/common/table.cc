#include "common/table.h"

#include <cstdio>
#include <utility>

#include "common/check.h"

namespace grs {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  GRS_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      if (r[c].size() > width[c]) width[c] = r[c].size();

  auto emit_row = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::string cell = r[c];
      if (c == 0) {
        cell.resize(width[c], ' ');  // left align
        out += cell;
      } else {
        out += std::string(width[c] - cell.size(), ' ') + cell;
      }
      out += (c + 1 == r.size()) ? "\n" : "  ";
    }
  };

  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 == width.size() ? 0 : 2);
  out += std::string(total, '-') + "\n";
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

void TextTable::print(const std::string& caption) const {
  std::printf("\n== %s ==\n%s", caption.c_str(), render().c_str());
  std::fflush(stdout);
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, v);
  return buf;
}

}  // namespace grs
