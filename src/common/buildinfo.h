// Build attribution: which commit, compiler, and build type produced this
// binary. Baked in at build time by cmake/buildinfo.cmake (a generated
// header, refreshed on every build); falls back to "unknown" when built
// outside a git checkout or without the generated header (plain
// `c++ src/**.cc`). Consumed by run manifests (runner/manifest.cc) and perf
// records (prof/perf_record.cc) so every telemetry file is attributable to a
// commit.
#pragma once

#include <string>

namespace grs {

struct BuildInfo {
  std::string git_commit;  ///< full sha, or "unknown" outside a checkout
  bool git_dirty = false;  ///< uncommitted changes at build time
  std::string build_type;  ///< CMAKE_BUILD_TYPE, or "unknown"
  std::string compiler;    ///< __VERSION__, or "unknown"
  std::string hostname;    ///< gethostname(), or "unknown"
};

/// The process-wide build/host facts (computed once).
[[nodiscard]] const BuildInfo& build_info();

/// One-line host fingerprint for perf records:
/// "<hostname> | <compiler> | <build_type>". Deliberately excludes the
/// commit — two commits on the same machine must fingerprint equal so
/// perf_check.py compares them strictly.
[[nodiscard]] std::string host_fingerprint();

}  // namespace grs
