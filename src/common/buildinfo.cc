#include "common/buildinfo.h"

#ifdef __unix__
#include <unistd.h>
#endif

// The generated header only exists in CMake builds (cmake/buildinfo.cmake);
// everything degrades to "unknown" without it.
#if defined(__has_include)
#if __has_include("grs_buildinfo.h")
#include "grs_buildinfo.h"
#endif
#endif

#ifndef GRS_GIT_COMMIT
#define GRS_GIT_COMMIT "unknown"
#endif
#ifndef GRS_GIT_DIRTY
#define GRS_GIT_DIRTY 0
#endif
#ifndef GRS_BUILD_TYPE
#define GRS_BUILD_TYPE "unknown"
#endif

namespace grs {

namespace {

std::string detect_hostname() {
#ifdef __unix__
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0) return buf;
#endif
  return "unknown";
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_commit = GRS_GIT_COMMIT;
    b.git_dirty = GRS_GIT_DIRTY != 0;
    b.build_type = GRS_BUILD_TYPE;
#ifdef __VERSION__
    b.compiler = __VERSION__;
#else
    b.compiler = "unknown";
#endif
    b.hostname = detect_hostname();
    return b;
  }();
  return info;
}

std::string host_fingerprint() {
  const BuildInfo& b = build_info();
  return b.hostname + " | " + b.compiler + " | " + b.build_type;
}

}  // namespace grs
