// Fundamental type aliases and small enums shared across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace grs {

/// Simulation time, in GPU core clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "event never happens" / "not scheduled".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Global memory address (byte granularity, flat 64-bit space).
using Addr = std::uint64_t;

/// Architectural register number within a thread (0-based).
using RegNum = std::uint16_t;

/// Sentinel register operand meaning "unused slot".
inline constexpr RegNum kNoReg = std::numeric_limits<RegNum>::max();

/// Index of an SM within the GPU.
using SmId = std::uint32_t;

/// Dynamic warp id within an SM (0 .. max_resident_warps-1); also encodes age
/// via the monotonically growing launch sequence kept separately.
using WarpSlot = std::uint32_t;

/// Block slot within an SM's resident set.
using BlockSlot = std::uint32_t;

inline constexpr std::uint32_t kInvalidSlot = std::numeric_limits<std::uint32_t>::max();

/// Which SM resource a kernel is constrained by / which resource is shared.
enum class Resource : std::uint8_t {
  kRegisters,
  kScratchpad,
  kThreads,  ///< max resident threads per SM
  kBlocks,   ///< max resident blocks per SM
};

[[nodiscard]] constexpr const char* to_string(Resource r) {
  switch (r) {
    case Resource::kRegisters: return "registers";
    case Resource::kScratchpad: return "scratchpad";
    case Resource::kThreads: return "threads";
    case Resource::kBlocks: return "blocks";
  }
  return "?";
}

/// Warp scheduling policies (paper §VI: LRR, GTO, Two-Level baselines; OWF is
/// the paper's contribution, §IV-A).
enum class SchedulerKind : std::uint8_t {
  kLrr,       ///< Loose round-robin (GPGPU-Sim default baseline).
  kGto,       ///< Greedy-then-oldest.
  kTwoLevel,  ///< Two-level (Narasiman et al., MICRO-44).
  kOwf,       ///< Owner-warp-first (paper §IV-A).
};

[[nodiscard]] constexpr const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kLrr: return "LRR";
    case SchedulerKind::kGto: return "GTO";
    case SchedulerKind::kTwoLevel: return "TwoLevel";
    case SchedulerKind::kOwf: return "OWF";
  }
  return "?";
}

/// Sharing-related classification of a warp, used by OWF priorities and the
/// dynamic warp-execution throttle.
enum class WarpClass : std::uint8_t {
  kUnshared,       ///< belongs to an unshared thread block
  kSharedOwner,    ///< belongs to the owner block of a shared pair
  kSharedNonOwner  ///< belongs to the non-owner block of a shared pair
};

[[nodiscard]] constexpr const char* to_string(WarpClass c) {
  switch (c) {
    case WarpClass::kUnshared: return "unshared";
    case WarpClass::kSharedOwner: return "owner";
    case WarpClass::kSharedNonOwner: return "non-owner";
  }
  return "?";
}

}  // namespace grs
