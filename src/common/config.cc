#include "common/config.h"

#include "common/check.h"

namespace grs {

std::string GpuConfig::line_label() const {
  std::string s = sharing.enabled ? "Shared" : "Unshared";
  s += "-";
  s += to_string(scheduler);
  if (sharing.enabled) {
    if (sharing.unroll_registers) s += "-Unroll";
    if (sharing.dynamic_warp_execution) s += "-Dyn";
  }
  return s;
}

void GpuConfig::validate() const {
  GRS_CHECK(num_sms >= 1);
  GRS_CHECK(warp_size >= 1);
  GRS_CHECK(max_threads_per_sm % warp_size == 0);
  GRS_CHECK(num_schedulers >= 1);
  GRS_CHECK(max_warps_per_sm() >= num_schedulers);
  GRS_CHECK(l1.line_bytes == l2.line_bytes);
  GRS_CHECK(l1.num_sets() >= 1);
  GRS_CHECK(l2.num_sets() >= 1);
  // The SM-observed L2 hit latency decomposes into the L2 pipeline plus two
  // equal interconnect traversals; anything below the pipeline latency would
  // wrap the unsigned transit computation in MemorySystem::access to ~2^63.
  GRS_CHECK_MSG(l2_hit_latency >= kL2PipeLatency,
                "l2_hit_latency must be >= the 40-cycle L2 pipeline latency");
  GRS_CHECK_MSG((l2_hit_latency - kL2PipeLatency) % 2 == 0,
                "l2_hit_latency minus the 40-cycle L2 pipeline must be even "
                "(it splits into two equal interconnect traversals)");
  // The L2 is banked per DRAM channel in whole sets (memory/memsys.cc), so
  // the configured capacity must be an exact number of sets with at least one
  // set per bank.
  GRS_CHECK_MSG(l2.size_bytes % (l2.line_bytes * l2.ways) == 0,
                "l2.size_bytes must be a whole number of sets (line_bytes * ways)");
  GRS_CHECK_MSG(l2.num_sets() >= dram.num_channels,
                "L2 needs at least one set per DRAM channel (bank)");
  GRS_CHECK_MSG(l2.mshr_entries >= dram.num_channels,
                "L2 needs at least one MSHR entry per DRAM channel (bank), or a "
                "bank would reject every miss");
  GRS_CHECK_MSG(!sharing.enabled || (sharing.threshold_t > 0.0 && sharing.threshold_t <= 1.0),
                "sharing threshold t must be in (0, 1]");
  GRS_CHECK(sharing.dyn_period > 0);
  GRS_CHECK(sharing.dyn_step > 0.0 && sharing.dyn_step <= 1.0);
}

namespace configs {

GpuConfig unshared(SchedulerKind sched) {
  GpuConfig c;
  c.scheduler = sched;
  c.sharing.enabled = false;
  return c;
}

static GpuConfig shared_base(Resource res, double t) {
  GpuConfig c;
  c.sharing.enabled = true;
  c.sharing.resource = res;
  c.sharing.threshold_t = t;
  return c;
}

GpuConfig shared_noopt(Resource res, double t) {
  GpuConfig c = shared_base(res, t);
  c.scheduler = SchedulerKind::kLrr;
  return c;
}

GpuConfig shared_unroll(Resource res, double t) {
  GpuConfig c = shared_noopt(res, t);
  c.sharing.unroll_registers = true;
  return c;
}

GpuConfig shared_unroll_dyn(Resource res, double t) {
  GpuConfig c = shared_unroll(res, t);
  c.sharing.dynamic_warp_execution = true;
  return c;
}

GpuConfig shared_owf_unroll_dyn(Resource res, double t) {
  GpuConfig c = shared_unroll_dyn(res, t);
  c.scheduler = SchedulerKind::kOwf;
  c.sharing.owf = true;
  return c;
}

GpuConfig shared_owf(Resource res, double t) {
  GpuConfig c = shared_base(res, t);
  c.scheduler = SchedulerKind::kOwf;
  c.sharing.owf = true;
  return c;
}

}  // namespace configs
}  // namespace grs
