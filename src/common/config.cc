#include "common/config.h"

#include <cstdio>

#include "common/check.h"
#include "common/hash.h"

namespace grs {

namespace {

/// Canonical scalar spellings for the kv codec. Doubles use %.17g, which
/// round-trips every IEEE-754 binary64 value exactly and prints identically
/// on every correctly-rounding libc.
void kv(std::string& out, const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key, static_cast<unsigned long long>(v));
  out += buf;
}

void kv(std::string& out, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %.17g\n", key, v);
  out += buf;
}

void kv(std::string& out, const char* key, const char* v) {
  out += key;
  out += ' ';
  out += v;
  out += '\n';
}

void kv_cache(std::string& out, const char* prefix, const CacheConfig& c) {
  std::string p = prefix;
  kv(out, (p + ".size_bytes").c_str(), std::uint64_t{c.size_bytes});
  kv(out, (p + ".line_bytes").c_str(), std::uint64_t{c.line_bytes});
  kv(out, (p + ".ways").c_str(), std::uint64_t{c.ways});
  kv(out, (p + ".mshr_entries").c_str(), std::uint64_t{c.mshr_entries});
}

}  // namespace

std::string GpuConfig::line_label() const {
  std::string s = sharing.enabled ? "Shared" : "Unshared";
  s += "-";
  s += to_string(scheduler);
  if (sharing.enabled) {
    if (sharing.unroll_registers) s += "-Unroll";
    if (sharing.dynamic_warp_execution) s += "-Dyn";
  }
  return s;
}

std::string GpuConfig::canonical_kv() const {
  std::string out;
  out.reserve(1024);
  // Versioned header: bump when a field is added/removed/re-interpreted so
  // old fingerprints can never alias new configurations.
  out += "gpu_config 1\n";
  // --- Table I ---------------------------------------------------------
  kv(out, "num_sms", std::uint64_t{num_sms});
  kv(out, "max_blocks_per_sm", std::uint64_t{max_blocks_per_sm});
  kv(out, "max_threads_per_sm", std::uint64_t{max_threads_per_sm});
  kv(out, "registers_per_sm", std::uint64_t{registers_per_sm});
  kv(out, "scratchpad_per_sm", std::uint64_t{scratchpad_per_sm});
  kv(out, "warp_size", std::uint64_t{warp_size});
  kv(out, "num_schedulers", std::uint64_t{num_schedulers});
  kv(out, "scheduler", to_string(scheduler));
  kv_cache(out, "l1", l1);
  kv_cache(out, "l2", l2);
  kv(out, "dram.num_channels", std::uint64_t{dram.num_channels});
  kv(out, "dram.banks_per_channel", std::uint64_t{dram.banks_per_channel});
  kv(out, "dram.row_bytes", std::uint64_t{dram.row_bytes});
  kv(out, "dram.row_hit_service", std::uint64_t{dram.row_hit_service});
  kv(out, "dram.row_miss_service", std::uint64_t{dram.row_miss_service});
  kv(out, "dram.base_latency", std::uint64_t{dram.base_latency});
  kv(out, "dram.row_window", std::uint64_t{dram.row_window});
  // --- Execution latencies ---------------------------------------------
  kv(out, "alu_latency", std::uint64_t{alu_latency});
  kv(out, "sfu_latency", std::uint64_t{sfu_latency});
  kv(out, "scratchpad_latency", std::uint64_t{scratchpad_latency});
  kv(out, "l1_hit_latency", std::uint64_t{l1_hit_latency});
  kv(out, "l2_hit_latency", std::uint64_t{l2_hit_latency});
  // --- Structural limits -----------------------------------------------
  kv(out, "lsu_max_inflight", std::uint64_t{lsu_max_inflight});
  kv(out, "sfu_issue_per_cycle", std::uint64_t{sfu_issue_per_cycle});
  kv(out, "lsu_issue_per_cycle", std::uint64_t{lsu_issue_per_cycle});
  kv(out, "two_level_group_size", std::uint64_t{two_level_group_size});
  // --- Sharing ---------------------------------------------------------
  kv(out, "sharing.enabled", std::uint64_t{sharing.enabled});
  kv(out, "sharing.resource", to_string(sharing.resource));
  kv(out, "sharing.threshold_t", sharing.threshold_t);
  kv(out, "sharing.owf", std::uint64_t{sharing.owf});
  kv(out, "sharing.unroll_registers", std::uint64_t{sharing.unroll_registers});
  kv(out, "sharing.dynamic_warp_execution", std::uint64_t{sharing.dynamic_warp_execution});
  kv(out, "sharing.dyn_period", std::uint64_t{sharing.dyn_period});
  kv(out, "sharing.dyn_step", sharing.dyn_step);
  // --- Run limits / loop strategy --------------------------------------
  kv(out, "max_cycles", std::uint64_t{max_cycles});
  // exec_mode participates even though both modes are (fuzz-)proven to
  // produce bit-identical stats: the cache must never paper over the exact
  // divergence the differential oracle exists to catch.
  kv(out, "exec_mode", to_string(exec_mode));
  return out;
}

std::string GpuConfig::fingerprint() const { return sha256_hex(canonical_kv()); }

void GpuConfig::validate() const {
  GRS_CHECK(num_sms >= 1);
  GRS_CHECK(warp_size >= 1);
  GRS_CHECK(max_threads_per_sm % warp_size == 0);
  GRS_CHECK(num_schedulers >= 1);
  GRS_CHECK(max_warps_per_sm() >= num_schedulers);
  GRS_CHECK(l1.line_bytes == l2.line_bytes);
  GRS_CHECK(l1.num_sets() >= 1);
  GRS_CHECK(l2.num_sets() >= 1);
  // The SM-observed L2 hit latency decomposes into the L2 pipeline plus two
  // equal interconnect traversals; anything below the pipeline latency would
  // wrap the unsigned transit computation in MemorySystem::access to ~2^63.
  GRS_CHECK_MSG(l2_hit_latency >= kL2PipeLatency,
                "l2_hit_latency must be >= the 40-cycle L2 pipeline latency");
  GRS_CHECK_MSG((l2_hit_latency - kL2PipeLatency) % 2 == 0,
                "l2_hit_latency minus the 40-cycle L2 pipeline must be even "
                "(it splits into two equal interconnect traversals)");
  // The L2 is banked per DRAM channel in whole sets (memory/memsys.cc), so
  // the configured capacity must be an exact number of sets with at least one
  // set per bank.
  GRS_CHECK_MSG(l2.size_bytes % (l2.line_bytes * l2.ways) == 0,
                "l2.size_bytes must be a whole number of sets (line_bytes * ways)");
  GRS_CHECK_MSG(l2.num_sets() >= dram.num_channels,
                "L2 needs at least one set per DRAM channel (bank)");
  GRS_CHECK_MSG(l2.mshr_entries >= dram.num_channels,
                "L2 needs at least one MSHR entry per DRAM channel (bank), or a "
                "bank would reject every miss");
  GRS_CHECK_MSG(!sharing.enabled || (sharing.threshold_t > 0.0 && sharing.threshold_t <= 1.0),
                "sharing threshold t must be in (0, 1]");
  GRS_CHECK(sharing.dyn_period > 0);
  GRS_CHECK(sharing.dyn_step > 0.0 && sharing.dyn_step <= 1.0);
}

namespace configs {

GpuConfig unshared(SchedulerKind sched) {
  GpuConfig c;
  c.scheduler = sched;
  c.sharing.enabled = false;
  return c;
}

static GpuConfig shared_base(Resource res, double t) {
  GpuConfig c;
  c.sharing.enabled = true;
  c.sharing.resource = res;
  c.sharing.threshold_t = t;
  return c;
}

GpuConfig shared_noopt(Resource res, double t) {
  GpuConfig c = shared_base(res, t);
  c.scheduler = SchedulerKind::kLrr;
  return c;
}

GpuConfig shared_unroll(Resource res, double t) {
  GpuConfig c = shared_noopt(res, t);
  c.sharing.unroll_registers = true;
  return c;
}

GpuConfig shared_unroll_dyn(Resource res, double t) {
  GpuConfig c = shared_unroll(res, t);
  c.sharing.dynamic_warp_execution = true;
  return c;
}

GpuConfig shared_owf_unroll_dyn(Resource res, double t) {
  GpuConfig c = shared_unroll_dyn(res, t);
  c.scheduler = SchedulerKind::kOwf;
  c.sharing.owf = true;
  return c;
}

GpuConfig shared_owf(Resource res, double t) {
  GpuConfig c = shared_base(res, t);
  c.scheduler = SchedulerKind::kOwf;
  c.sharing.owf = true;
  return c;
}

}  // namespace configs
}  // namespace grs
