#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace grs {

void SmStats::merge(const SmStats& o) {
  issued_cycles += o.issued_cycles;
  stall_cycles += o.stall_cycles;
  idle_cycles += o.idle_cycles;
  warp_instructions += o.warp_instructions;
  thread_instructions += o.thread_instructions;
  blocks_launched += o.blocks_launched;
  blocks_finished += o.blocks_finished;
  max_resident_blocks = std::max(max_resident_blocks, o.max_resident_blocks);
  max_resident_warps = std::max(max_resident_warps, o.max_resident_warps);
  lock_acquisitions += o.lock_acquisitions;
  lock_wait_cycles += o.lock_wait_cycles;
  ownership_transfers += o.ownership_transfers;
  dyn_throttled_issues += o.dyn_throttled_issues;
  l1_accesses += o.l1_accesses;
  l1_misses += o.l1_misses;
  l1_mshr_merges += o.l1_mshr_merges;
  blocked_lsu_port += o.blocked_lsu_port;
  blocked_lsu_inflight += o.blocked_lsu_inflight;
  blocked_mshr += o.blocked_mshr;
  blocked_sfu_port += o.blocked_sfu_port;
  blocked_scoreboard += o.blocked_scoreboard;
  blocked_barrier += o.blocked_barrier;
}

void SmStats::accumulate_scaled_delta(const SmStats& before, const SmStats& after,
                                      std::uint64_t n) {
  issued_cycles += (after.issued_cycles - before.issued_cycles) * n;
  stall_cycles += (after.stall_cycles - before.stall_cycles) * n;
  idle_cycles += (after.idle_cycles - before.idle_cycles) * n;
  warp_instructions += (after.warp_instructions - before.warp_instructions) * n;
  thread_instructions += (after.thread_instructions - before.thread_instructions) * n;
  blocks_launched += (after.blocks_launched - before.blocks_launched) * n;
  blocks_finished += (after.blocks_finished - before.blocks_finished) * n;
  lock_acquisitions += (after.lock_acquisitions - before.lock_acquisitions) * n;
  lock_wait_cycles += (after.lock_wait_cycles - before.lock_wait_cycles) * n;
  ownership_transfers += (after.ownership_transfers - before.ownership_transfers) * n;
  dyn_throttled_issues += (after.dyn_throttled_issues - before.dyn_throttled_issues) * n;
  l1_accesses += (after.l1_accesses - before.l1_accesses) * n;
  l1_misses += (after.l1_misses - before.l1_misses) * n;
  l1_mshr_merges += (after.l1_mshr_merges - before.l1_mshr_merges) * n;
  blocked_lsu_port += (after.blocked_lsu_port - before.blocked_lsu_port) * n;
  blocked_lsu_inflight += (after.blocked_lsu_inflight - before.blocked_lsu_inflight) * n;
  blocked_mshr += (after.blocked_mshr - before.blocked_mshr) * n;
  blocked_sfu_port += (after.blocked_sfu_port - before.blocked_sfu_port) * n;
  blocked_scoreboard += (after.blocked_scoreboard - before.blocked_scoreboard) * n;
  blocked_barrier += (after.blocked_barrier - before.blocked_barrier) * n;
}

bool operator==(const SmStats& a, const SmStats& b) {
  return a.issued_cycles == b.issued_cycles && a.stall_cycles == b.stall_cycles &&
         a.idle_cycles == b.idle_cycles && a.warp_instructions == b.warp_instructions &&
         a.thread_instructions == b.thread_instructions &&
         a.blocks_launched == b.blocks_launched && a.blocks_finished == b.blocks_finished &&
         a.max_resident_blocks == b.max_resident_blocks &&
         a.max_resident_warps == b.max_resident_warps &&
         a.lock_acquisitions == b.lock_acquisitions &&
         a.lock_wait_cycles == b.lock_wait_cycles &&
         a.ownership_transfers == b.ownership_transfers &&
         a.dyn_throttled_issues == b.dyn_throttled_issues &&
         a.l1_accesses == b.l1_accesses && a.l1_misses == b.l1_misses &&
         a.l1_mshr_merges == b.l1_mshr_merges && a.blocked_lsu_port == b.blocked_lsu_port &&
         a.blocked_lsu_inflight == b.blocked_lsu_inflight && a.blocked_mshr == b.blocked_mshr &&
         a.blocked_sfu_port == b.blocked_sfu_port &&
         a.blocked_scoreboard == b.blocked_scoreboard &&
         a.blocked_barrier == b.blocked_barrier;
}

bool operator==(const GpuStats& a, const GpuStats& b) {
  return a.cycles == b.cycles && a.sm_total == b.sm_total &&
         a.l2_accesses == b.l2_accesses && a.l2_misses == b.l2_misses &&
         a.dram_requests == b.dram_requests && a.dram_row_hits == b.dram_row_hits;
}

std::string GpuStats::summary() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "cycles=%llu  IPC=%.2f (warp IPC=%.2f)\n"
                "issued/stall/idle scheduler-cycles = %llu / %llu / %llu\n"
                "blocks launched=%llu  max resident/SM=%u\n"
                "L1 miss rate=%.3f  L2 miss rate=%.3f  DRAM reqs=%llu (row-hit %.2f)\n"
                "locks acquired=%llu  ownership transfers=%llu  dyn-throttled=%llu",
                static_cast<unsigned long long>(cycles), ipc(), warp_ipc(),
                static_cast<unsigned long long>(sm_total.issued_cycles),
                static_cast<unsigned long long>(sm_total.stall_cycles),
                static_cast<unsigned long long>(sm_total.idle_cycles),
                static_cast<unsigned long long>(sm_total.blocks_launched),
                sm_total.max_resident_blocks, l1_miss_rate(), l2_miss_rate(),
                static_cast<unsigned long long>(dram_requests),
                dram_requests == 0 ? 0.0
                                   : static_cast<double>(dram_row_hits) /
                                         static_cast<double>(dram_requests),
                static_cast<unsigned long long>(sm_total.lock_acquisitions),
                static_cast<unsigned long long>(sm_total.ownership_transfers),
                static_cast<unsigned long long>(sm_total.dyn_throttled_issues));
  return buf;
}

double percent_improvement(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return (value - baseline) / baseline * 100.0;
}

double percent_decrease(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

}  // namespace grs
