#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace grs {

void SmStats::merge(const SmStats& o) {
  issued_cycles += o.issued_cycles;
  stall_cycles += o.stall_cycles;
  idle_cycles += o.idle_cycles;
  warp_instructions += o.warp_instructions;
  thread_instructions += o.thread_instructions;
  blocks_launched += o.blocks_launched;
  blocks_finished += o.blocks_finished;
  max_resident_blocks = std::max(max_resident_blocks, o.max_resident_blocks);
  max_resident_warps = std::max(max_resident_warps, o.max_resident_warps);
  lock_acquisitions += o.lock_acquisitions;
  lock_wait_cycles += o.lock_wait_cycles;
  ownership_transfers += o.ownership_transfers;
  dyn_throttled_issues += o.dyn_throttled_issues;
  l1_accesses += o.l1_accesses;
  l1_misses += o.l1_misses;
  l1_mshr_merges += o.l1_mshr_merges;
  blocked_lsu_port += o.blocked_lsu_port;
  blocked_lsu_inflight += o.blocked_lsu_inflight;
  blocked_mshr += o.blocked_mshr;
  blocked_sfu_port += o.blocked_sfu_port;
  blocked_scoreboard += o.blocked_scoreboard;
  blocked_barrier += o.blocked_barrier;
}

std::string GpuStats::summary() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "cycles=%llu  IPC=%.2f (warp IPC=%.2f)\n"
                "issued/stall/idle scheduler-cycles = %llu / %llu / %llu\n"
                "blocks launched=%llu  max resident/SM=%u\n"
                "L1 miss rate=%.3f  L2 miss rate=%.3f  DRAM reqs=%llu (row-hit %.2f)\n"
                "locks acquired=%llu  ownership transfers=%llu  dyn-throttled=%llu",
                static_cast<unsigned long long>(cycles), ipc(), warp_ipc(),
                static_cast<unsigned long long>(sm_total.issued_cycles),
                static_cast<unsigned long long>(sm_total.stall_cycles),
                static_cast<unsigned long long>(sm_total.idle_cycles),
                static_cast<unsigned long long>(sm_total.blocks_launched),
                sm_total.max_resident_blocks, l1_miss_rate(), l2_miss_rate(),
                static_cast<unsigned long long>(dram_requests),
                dram_requests == 0 ? 0.0
                                   : static_cast<double>(dram_row_hits) /
                                         static_cast<double>(dram_requests),
                static_cast<unsigned long long>(sm_total.lock_acquisitions),
                static_cast<unsigned long long>(sm_total.ownership_transfers),
                static_cast<unsigned long long>(sm_total.dyn_throttled_issues));
  return buf;
}

double percent_improvement(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return (value - baseline) / baseline * 100.0;
}

double percent_decrease(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

}  // namespace grs
