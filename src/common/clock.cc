#include "common/clock.h"

#include <chrono>

namespace grs {

double monotonic_seconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace grs
