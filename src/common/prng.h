// Deterministic pseudo-random utilities.
//
// The simulator must be bit-reproducible: two runs with the same configuration
// produce identical statistics. All "randomness" (scatter memory patterns, the
// Dyn throttle's probabilistic gate) therefore comes from counter-based
// hashing of (structural position, cycle) rather than from stateful global
// generators whose consumption order could drift across refactorings.
#pragma once

#include <cstdint>

namespace grs {

/// SplitMix64 finalizer: a high-quality 64-bit mix function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Combine two words into one hash (order sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (mix64(b) + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/// Uniform double in [0, 1) from a hash value.
[[nodiscard]] constexpr double to_unit_double(std::uint64_t h) {
  // 53 high-quality mantissa bits.
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Small stateful generator for places where a stream is genuinely wanted
/// (workload construction, tests). SplitMix64.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Uniform double in [0, 1).
  constexpr double next_double() { return to_unit_double(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace grs
