// Lightweight always-on invariant checking.
//
// The simulator is deterministic; a violated invariant is a programming error,
// never a data error, so we abort with a readable message rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace grs::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "GRS_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace grs::detail

#define GRS_CHECK(expr)                                                        \
  do {                                                                         \
    if (!(expr)) ::grs::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define GRS_CHECK_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) ::grs::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
