// Monotonic wall-clock helpers for runner-side telemetry: per-cell timing,
// progress ETAs, and run manifests (src/runner).
//
// This is the ONE place host time enters the codebase. Never use it inside
// simulation state (src/sm, src/gpu, src/memory, src/core): simulate() must
// remain a pure function of (config, kernel) so the cross-mode equivalence
// suite, the fuzz oracle, and the content-addressed result cache stay valid.
#pragma once

namespace grs {

/// Seconds on a monotonic clock with an arbitrary epoch. Differences between
/// two calls are wall-clock durations immune to system clock adjustments.
[[nodiscard]] double monotonic_seconds();

/// Stopwatch over monotonic_seconds(); starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(monotonic_seconds()) {}
  void restart() { start_ = monotonic_seconds(); }
  [[nodiscard]] double seconds() const { return monotonic_seconds() - start_; }

 private:
  double start_;
};

}  // namespace grs
