#include "prof/prof.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/check.h"

namespace grs::prof {

// Stack paths are encoded as nibbles, root in the high position: pushing
// phase p onto a stack with path K yields K << 4 | (p + 1). Ten phases fit a
// nibble and the hook sites never nest deeper than a handful of frames, so a
// 64-bit key (16 frames) is ample — and map<uint64> keeps the hot begin/end
// path free of string building.
namespace {
constexpr std::size_t kMaxDepth = 16;

void decode_path(std::uint64_t path, std::string& out) {
  // Collect nibbles low-to-high (leaf first), then emit root-first.
  std::array<std::uint8_t, kMaxDepth> frames{};
  std::size_t n = 0;
  for (; path != 0; path >>= 4) frames[n++] = static_cast<std::uint8_t>(path & 0xF);
  for (std::size_t i = n; i-- > 0;) {
    out += to_string(static_cast<Phase>(frames[i] - 1));
    if (i != 0) out += ';';
  }
}

void put_double(std::string& out, const char* key, double v) {
  char tmp[64];
  std::snprintf(tmp, sizeof tmp, "\"%s\":%.9f", key, v);
  out += tmp;
}

}  // namespace

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kSimulate: return "simulate";
    case Phase::kExecute: return "execute_writeback";
    case Phase::kSchedulerScan: return "scheduler_scan";
    case Phase::kIssue: return "issue";
    case Phase::kMemsys: return "memsys_l2";
    case Phase::kDram: return "dram";
    case Phase::kEventSleep: return "event_sleep";
    case Phase::kTimeline: return "timeline_sample";
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kCacheStore: return "cache_store";
  }
  return "?";
}

void HostProfiler::begin(Phase p) {
  GRS_CHECK_MSG(stack_.size() < kMaxDepth, "profiler phase stack overflow");
  Frame f;
  f.p = p;
  f.start = clock_();
  f.path = (stack_.empty() ? 0 : stack_.back().path) << 4 |
           (static_cast<std::uint64_t>(p) + 1);
  stack_.push_back(f);
}

void HostProfiler::end(Phase p) {
  GRS_CHECK_MSG(!stack_.empty() && stack_.back().p == p,
                "profiler end() does not match the open phase");
  const double now = clock_();
  const Frame top = stack_.back();
  stack_.pop_back();
  const double total = now - top.start;
  const double self = total - top.child;
  Agg& a = agg(p);
  a.total += total;
  a.self += self;
  ++a.calls;
  folded_[top.path] += self;
  if (!stack_.empty()) {
    stack_.back().child += total;
  } else {
    wall_ += total;
  }
}

void HostProfiler::merge(const HostProfiler& o) {
  GRS_CHECK_MSG(stack_.empty() && o.stack_.empty(),
                "profiler merge with a phase still open");
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    agg_[i].total += o.agg_[i].total;
    agg_[i].self += o.agg_[i].self;
    agg_[i].calls += o.agg_[i].calls;
  }
  for (const auto& [path, self] : o.folded_) folded_[path] += self;
  wall_ += o.wall_;
}

std::string HostProfiler::phases_json() const {
  std::string out = "[";
  bool first = true;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (agg_[i].calls == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += to_string(static_cast<Phase>(i));
    out += "\",";
    char tmp[48];
    std::snprintf(tmp, sizeof tmp, "\"calls\":%llu,",
                  static_cast<unsigned long long>(agg_[i].calls));
    out += tmp;
    put_double(out, "total_s", agg_[i].total);
    out += ',';
    put_double(out, "self_s", agg_[i].self);
    if (wall_ > 0.0) {
      out += ',';
      std::snprintf(tmp, sizeof tmp, "\"pct_of_wall\":%.2f", agg_[i].total / wall_ * 100.0);
      out += tmp;
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string HostProfiler::json() const {
  std::string out = "{\"schema\":\"grs-prof-v1\",";
  put_double(out, "wall_seconds", wall_);
  out += ",\"phases\":";
  out += phases_json();
  out += "}\n";
  return out;
}

std::string HostProfiler::folded() const {
  std::string out;
  for (const auto& [path, self] : folded_) {
    decode_path(path, out);
    char tmp[32];
    std::snprintf(tmp, sizeof tmp, " %llu\n",
                  static_cast<unsigned long long>(std::llround(self * 1e6)));
    out += tmp;
  }
  return out;
}

void write_prof_outputs(const HostProfiler& prof, const std::string& json_path,
                        const std::string& folded_path) {
  const auto write = [](const std::string& path, const std::string& body) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("cannot open profile file '" + path + "' for writing");
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!f) throw std::runtime_error("failed writing profile file '" + path + "'");
  };
  if (!json_path.empty()) write(json_path, prof.json());
  if (!folded_path.empty()) write(folded_path, prof.folded());
}

}  // namespace grs::prof
