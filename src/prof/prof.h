// Host-phase profiler: where does the *host* wall clock go inside a
// simulation? RAII scoped timers over the simulator's hot phases (scheduler
// scan, issue, execute/writeback, memory system, DRAM, event-mode sleep
// bookkeeping, result-cache lookup/store), aggregated per simulation and
// merged per sweep by the runner engine.
//
// Same contract as src/obs: zero-cost when off (every hook site guards on a
// pointer that is null unless --prof/--prof-folded was given, so the default
// run pays one untaken branch per site), options stay out of GpuConfig so
// config fingerprints and result-cache keys are untouched, and nothing here
// ever feeds back into simulation state — sim stats are bit-identical with
// profiling on (tests/test_prof.cc).
//
// Host time is wall time: profiles from different machines or runs are not
// comparable sample-for-sample. The perf-record layer (prof/perf_record.h)
// is the normalized cross-run format; this is the drill-down.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"

namespace grs::prof {

/// The instrumented host phases, in report order. Phases nest at runtime
/// (issue inside scheduler_scan, dram inside memsys_l2, everything inside
/// simulate); the profiler tracks inclusive (total) and exclusive (self)
/// time per phase plus per-stack self time for folded output.
enum class Phase : std::uint8_t {
  kSimulate,       ///< one simulate() call, root of every sim stack
  kExecute,        ///< per-cycle retire: writeback event + L1 MSHR drains
  kSchedulerScan,  ///< candidate scan + pick across all warp schedulers
  kIssue,          ///< issuing the picked instruction (incl. coalescing)
  kMemsys,         ///< shared L2 access path (bank queue + tags)
  kDram,           ///< DRAM request service (inside memsys_l2)
  kEventSleep,     ///< event-mode sleep bookkeeping (wakeup computation,
                   ///< idle-window replay accounting)
  kTimeline,       ///< observability timeline sampling (obs pillar)
  kCacheLookup,    ///< result-cache lookup (runner, outside simulate)
  kCacheStore,     ///< result-cache store (runner, outside simulate)
};
inline constexpr std::size_t kNumPhases = 10;

/// Stable snake_case spelling used in both the JSON and folded outputs.
[[nodiscard]] const char* to_string(Phase p);

/// Accumulates phase timings for one thread of execution. Not thread-safe:
/// the engine keeps one profiler per sweep point and merges them post-run in
/// point order, exactly like buffered observability outputs.
class HostProfiler {
 public:
  /// `clock` returns seconds on a monotonic clock; injectable for
  /// deterministic tests, defaults to the one host-time source.
  using ClockFn = double (*)();
  explicit HostProfiler(ClockFn clock = &monotonic_seconds) : clock_(clock) {}

  /// Scoped via ScopedPhase; begin/end must nest (checked).
  void begin(Phase p);
  void end(Phase p);

  /// Fold `o`'s aggregates into this profiler (both stacks must be idle).
  void merge(const HostProfiler& o);

  [[nodiscard]] std::uint64_t calls(Phase p) const { return agg(p).calls; }
  /// Inclusive seconds (phase + everything nested under it).
  [[nodiscard]] double total_seconds(Phase p) const { return agg(p).total; }
  /// Exclusive seconds (nested phases subtracted).
  [[nodiscard]] double self_seconds(Phase p) const { return agg(p).self; }
  /// Seconds covered by root-level phases — the profiled wall clock that
  /// "% of sim wall" in the JSON is relative to.
  [[nodiscard]] double wall_seconds() const { return wall_; }

  /// "grs-prof-v1" JSON document (docs/perf-tracking.md): wall_seconds plus
  /// one entry per observed phase with calls/total_s/self_s/pct_of_wall.
  [[nodiscard]] std::string json() const;

  /// Folded-stack lines ("simulate;scheduler_scan;issue 1234\n", value =
  /// self time in integer microseconds) — flamegraph.pl / speedscope input.
  [[nodiscard]] std::string folded() const;

  /// Phase entries of json(), exposed for perf_record's per-point breakdown.
  [[nodiscard]] std::string phases_json() const;

 private:
  struct Agg {
    double total = 0.0;
    double self = 0.0;
    std::uint64_t calls = 0;
  };
  struct Frame {
    Phase p;
    double start = 0.0;
    double child = 0.0;     ///< time spent in nested phases
    std::uint64_t path = 0; ///< nibble-encoded stack (see prof.cc)
  };

  [[nodiscard]] const Agg& agg(Phase p) const { return agg_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] Agg& agg(Phase p) { return agg_[static_cast<std::size_t>(p)]; }

  ClockFn clock_;
  std::array<Agg, kNumPhases> agg_{};
  std::vector<Frame> stack_;
  /// Self seconds per nibble-encoded stack path; std::map keeps folded
  /// output deterministic.
  std::map<std::uint64_t, double> folded_;
  double wall_ = 0.0;
};

/// RAII phase scope, null-safe: `ScopedPhase s(prof_, Phase::kIssue);` is one
/// untaken branch when `prof_` is null (the default).
class ScopedPhase {
 public:
  ScopedPhase(HostProfiler* p, Phase ph) : p_(p), ph_(ph) {
    if (p_ != nullptr) p_->begin(ph_);
  }
  ~ScopedPhase() {
    if (p_ != nullptr) p_->end(ph_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  HostProfiler* p_;
  Phase ph_;
};

/// Write json() to `json_path` and/or folded() to `folded_path` (either may
/// be empty = skip). Throws std::runtime_error on I/O failure.
void write_prof_outputs(const HostProfiler& prof, const std::string& json_path,
                        const std::string& folded_path);

}  // namespace grs::prof
