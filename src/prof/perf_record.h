// Perf records: the committed, machine-readable perf trajectory.
//
// record_perf() runs a suite of named sweep specs, times each spec over N
// unprofiled repetitions (median wall — profiler overhead never skews the
// numbers), then runs ONE extra profiled repetition for the phase breakdown,
// and emits a "grs-perf-record-v1" JSON document. scripts/perf_check.py
// diffs such a record against a committed baseline under bench/baselines/
// with noise-aware thresholds; docs/perf-tracking.md describes the workflow.
//
// The per-point `cycles` field (summed sim cycles across the spec) is the
// determinism anchor: it must match the baseline exactly on the same suite,
// so a stale baseline after a simulator-behavior change is a hard checker
// error, never a silent drift.
#pragma once

#include <string>
#include <vector>

#include "runner/sweep.h"

namespace grs::prof {

/// One named unit of the pinned suite (e.g. "fig8:hotspot").
struct PerfSuitePoint {
  std::string name;
  runner::SweepSpec spec;
};

struct PerfRecordOptions {
  /// Timed unprofiled repetitions per suite point; the median is reported.
  /// Odd values give a true median.
  int reps = 5;
  /// Worker threads per repetition (engine semantics; 0 = hardware).
  unsigned threads = 1;
  /// Progress line per rep on stderr.
  bool verbose = true;
};

/// Run the suite and return the grs-perf-record-v1 JSON document.
/// Throws on validation/simulation failure. The pinned default suite lives
/// in bench/perf_suite.h (it draws on the bench registry, which only links
/// into grs_bench); tests exercise this function on tiny synthetic suites.
[[nodiscard]] std::string record_perf(const std::vector<PerfSuitePoint>& suite,
                                      const PerfRecordOptions& options);

}  // namespace grs::prof
