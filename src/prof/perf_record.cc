#include "prof/perf_record.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "common/buildinfo.h"
#include "common/clock.h"
#include "prof/prof.h"
#include "runner/engine.h"

namespace grs::prof {

namespace {

void put_str(std::string& out, const char* key, const std::string& value) {
  out += '"';
  out += key;
  out += "\":\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

/// Median of an odd-or-even sized sample (midpoint average when even).
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

}  // namespace

std::string record_perf(const std::vector<PerfSuitePoint>& suite,
                        const PerfRecordOptions& options) {
  if (suite.empty()) throw std::runtime_error("perf record: empty suite");
  if (options.reps < 1) throw std::runtime_error("perf record: --perf-reps must be >= 1");

  std::string points_json = "[";
  for (std::size_t s = 0; s < suite.size(); ++s) {
    const PerfSuitePoint& pt = suite[s];
    if (pt.spec.empty())
      throw std::runtime_error("perf record: suite point '" + pt.name + "' has no sweep points");

    runner::RunOptions run;
    run.threads = options.threads;

    // Timed reps run unprofiled so hook overhead never skews wall_ms.
    std::vector<double> wall_ms;
    wall_ms.reserve(static_cast<std::size_t>(options.reps));
    std::uint64_t cycles = 0;
    for (int r = 0; r < options.reps; ++r) {
      const WallTimer timer;
      const std::vector<runner::SweepRow> rows = runner::run_sweep(pt.spec, run);
      wall_ms.push_back(timer.seconds() * 1000.0);
      std::uint64_t c = 0;
      for (const runner::SweepRow& row : rows) c += row.result.stats.cycles;
      if (r == 0) {
        cycles = c;
      } else if (c != cycles) {
        // simulate() is bit-deterministic; a rep-to-rep cycle diff means the
        // build is broken, and any timing from it is meaningless.
        throw std::runtime_error("perf record: non-deterministic cycles on suite point '" +
                                 pt.name + "'");
      }
      if (options.verbose)
        std::fprintf(stderr, "[perf] %-24s rep %d/%d: %.1f ms\n", pt.name.c_str(), r + 1,
                     options.reps, wall_ms.back());
    }

    // One extra profiled rep supplies the phase breakdown.
    HostProfiler prof;
    run.prof = &prof;
    (void)runner::run_sweep(pt.spec, run);

    const double med = median(wall_ms);
    if (s != 0) points_json += ',';
    points_json += '{';
    put_str(points_json, "name", pt.name);
    char tmp[96];
    std::snprintf(tmp, sizeof tmp,
                  ",\"sweep_points\":%zu,\"reps\":%d,\"wall_ms\":%.3f,"
                  "\"sims_per_sec\":%.3f,\"cycles\":%" PRIu64 ",\"phases\":",
                  pt.spec.size(), options.reps, med,
                  med > 0.0 ? static_cast<double>(pt.spec.size()) * 1000.0 / med : 0.0, cycles);
    points_json += tmp;
    points_json += prof.phases_json();
    points_json += '}';
  }
  points_json += ']';

  const BuildInfo& build = build_info();
  std::string out = "{";
  put_str(out, "schema", "grs-perf-record-v1");
  out += ',';
  put_str(out, "host_fingerprint", host_fingerprint());
  out += ',';
  put_str(out, "git_commit", build.git_commit);
  out += ",\"git_dirty\":";
  out += build.git_dirty ? "true" : "false";
  out += ',';
  put_str(out, "build_type", build.build_type);
  char tmp[48];
  std::snprintf(tmp, sizeof tmp, ",\"threads\":%u,", options.threads);
  out += tmp;
  out += "\"points\":";
  out += points_json;
  out += "}\n";
  return out;
}

}  // namespace grs::prof
