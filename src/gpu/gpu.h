// Whole-GPU model: SMs + shared L2/DRAM + dispatcher + Dyn controller.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "core/dyn_throttle.h"
#include "core/occupancy.h"
#include "gpu/dispatcher.h"
#include "memory/memsys.h"
#include "sm/sm.h"
#include "workloads/kernel_info.h"

namespace grs {

class Gpu {
 public:
  /// `program` must outlive the Gpu (the Simulator facade owns the
  /// possibly-reordered copy). `kernel.program` is ignored here.
  Gpu(const GpuConfig& cfg, const KernelInfo& kernel, const Program& program);

  /// Run the grid to completion (or cfg.max_cycles); returns aggregate stats.
  [[nodiscard]] GpuStats run();

  [[nodiscard]] const Occupancy& occupancy() const { return occupancy_; }
  [[nodiscard]] const std::vector<StreamingMultiprocessor>& sms() const { return sms_; }

 private:
  [[nodiscard]] bool done() const;

  GpuConfig cfg_;
  Occupancy occupancy_;
  MemorySystem memsys_;
  DynThrottle dyn_;
  std::vector<StreamingMultiprocessor> sms_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

}  // namespace grs
