// Whole-GPU model: SMs + shared L2/DRAM + dispatcher + Dyn controller.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "core/dyn_throttle.h"
#include "core/occupancy.h"
#include "gpu/dispatcher.h"
#include "memory/memsys.h"
#include "obs/obs.h"
#include "prof/prof.h"
#include "sm/sm.h"
#include "workloads/kernel_info.h"

namespace grs {

class Gpu {
 public:
  /// `program` must outlive the Gpu (the Simulator facade owns the
  /// possibly-reordered copy). `kernel.program` is ignored here.
  /// `obs` (optional, must outlive the Gpu) turns on observability: trace
  /// hooks throughout the machine and/or timeline sampling in run(). `prof`
  /// (optional, must outlive the Gpu) turns on host-phase timing. Neither
  /// ever changes GpuStats — the run is bit-identical either way
  /// (tests/test_obs.cc, tests/test_prof.cc).
  Gpu(const GpuConfig& cfg, const KernelInfo& kernel, const Program& program,
      obs::SimObserver* obs = nullptr, prof::HostProfiler* prof = nullptr);

  /// Run the grid to completion (or cfg.max_cycles); returns aggregate stats.
  [[nodiscard]] GpuStats run();

  [[nodiscard]] const Occupancy& occupancy() const { return occupancy_; }
  [[nodiscard]] const std::vector<StreamingMultiprocessor>& sms() const { return sms_; }

 private:
  [[nodiscard]] bool done() const;
  /// Counter/gauge snapshot for timeline boundary `b` (see obs/timeline.h).
  void take_timeline_sample(Cycle b);

  GpuConfig cfg_;
  Occupancy occupancy_;
  MemorySystem memsys_;
  DynThrottle dyn_;
  std::vector<StreamingMultiprocessor> sms_;
  std::unique_ptr<Dispatcher> dispatcher_;
  obs::SimObserver* obs_ = nullptr;
  prof::HostProfiler* prof_ = nullptr;
  std::string kernel_name_;
  std::uint64_t grid_blocks_ = 0;
};

}  // namespace grs
