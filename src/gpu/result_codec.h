// Self-describing SimResult codec: one canonical field enumeration shared by
// the content-addressed result cache (src/cache) and the CSV/JSON sinks
// (src/runner/sink.cc).
//
// result_fields() enumerates every statistic a SimResult carries — all of
// GpuStats, SmStats, and Occupancy, plus the derived rates (IPC, miss rates)
// — each with a stable name, display formatting, and raw accessors. The sink
// flat-row schema is the `flat`-flagged subset in enumeration order; the
// cache payload is the non-`derived` subset encoded exactly (integers in
// decimal, doubles as %.17g, which round-trips binary64 bit-for-bit).
//
// Adding a field to SmStats/GpuStats/Occupancy without extending the
// enumeration fails the coverage guards in tests/test_cache.cc, and any
// layout change must bump kResultCodecVersion so stale cache entries can
// never alias the new schema (they land under a different store directory —
// see src/cache/key.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/simulator.h"

namespace grs {

/// Bump whenever the encoded field set, order, spelling, or meaning changes.
inline constexpr int kResultCodecVersion = 1;

/// One enumerated statistic of a SimResult.
struct ResultField {
  const char* name;
  bool flat;        ///< appears in the runner CSV/JSON flat row schema
  bool fractional;  ///< %.6f in flat rows (else integer)
  bool derived;     ///< recomputed from other fields; excluded from encode()

  // Raw accessors; exactly one getter is non-null (get_u64 for integer
  // fields, get_f64 for fractional ones). Setters are null on derived fields.
  std::uint64_t (*get_u64)(const SimResult&);
  void (*set_u64)(SimResult&, std::uint64_t);
  double (*get_f64)(const SimResult&);
  void (*set_f64)(SimResult&, double);
};

/// The canonical enumeration, in stable order.
[[nodiscard]] const std::vector<ResultField>& result_fields();

/// `f`'s display spelling for flat rows: decimal for integers, %.6f for
/// fractional fields (byte-identical to the pre-codec sink formatting).
[[nodiscard]] std::string format_result_field(const ResultField& f, const SimResult& r);

/// Canonical exact text encoding of every non-derived field (versioned
/// header, one "name value" line per field, trailing "end" line). This is the
/// cache payload; equal encodings imply field-wise equal results.
[[nodiscard]] std::string encode_result(const SimResult& r);

/// Strict inverse of encode_result() for the stats/occupancy payload (the
/// config is not part of the payload — the cache key already pins it, and the
/// caller restores it). Returns false on any malformed, truncated,
/// reordered, or version-mismatched input without touching `out` partially
/// observable state the caller relies on (on false, `out` must be discarded).
[[nodiscard]] bool decode_result(const std::string& text, SimResult& out);

}  // namespace grs
