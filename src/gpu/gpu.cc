#include "gpu/gpu.h"

#include "common/check.h"

namespace grs {

Gpu::Gpu(const GpuConfig& cfg, const KernelInfo& kernel, const Program& program)
    : cfg_(cfg),
      occupancy_(compute_occupancy(cfg, kernel.resources)),
      memsys_(cfg),
      dyn_(cfg.sharing, cfg.num_sms) {
  cfg_.validate();
  sms_.reserve(cfg.num_sms);
  for (SmId i = 0; i < cfg.num_sms; ++i) {
    sms_.emplace_back(i, cfg_, program, kernel.resources, occupancy_,
                      kernel.active_lanes, memsys_, &dyn_);
  }
  dispatcher_ = std::make_unique<Dispatcher>(kernel.grid_blocks, occupancy_, sms_);
}

bool Gpu::done() const {
  if (!dispatcher_->all_dispatched()) return false;
  for (const auto& sm : sms_) {
    if (!sm.drained()) return false;
  }
  return true;
}

GpuStats Gpu::run() {
  dispatcher_->initial_fill();

  std::vector<std::uint64_t> stall_mark(sms_.size(), 0);
  std::vector<std::uint64_t> period_stalls(sms_.size(), 0);

  Cycle cycle = 0;
  while (!done()) {
    ++cycle;
    for (auto& sm : sms_) sm.step(cycle);

    // Dynamic warp execution: periodic stall comparison against SM0
    // (paper §IV-C, monitoring period 1000 cycles).
    if (dyn_.enabled() && cycle % dyn_.period() == 0) {
      for (std::size_t i = 0; i < sms_.size(); ++i) {
        const std::uint64_t s = sms_[i].stats().stall_cycles;
        period_stalls[i] = s - stall_mark[i];
        stall_mark[i] = s;
      }
      dyn_.on_period_end(period_stalls);
    }

    if (cfg_.max_cycles != 0 && cycle >= cfg_.max_cycles) break;
  }

  GpuStats g;
  g.cycles = cycle;
  for (auto& sm : sms_) g.sm_total.merge(sm.finalize_stats());
  g.l2_accesses = memsys_.l2_accesses();
  g.l2_misses = memsys_.l2_misses();
  g.dram_requests = memsys_.dram_requests();
  g.dram_row_hits = memsys_.dram_row_hits();
  return g;
}

}  // namespace grs
