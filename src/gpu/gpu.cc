#include "gpu/gpu.h"

#include <algorithm>

#include "common/check.h"

namespace grs {

Gpu::Gpu(const GpuConfig& cfg, const KernelInfo& kernel, const Program& program,
         obs::SimObserver* obs, prof::HostProfiler* prof)
    : cfg_(cfg),
      occupancy_(compute_occupancy(cfg, kernel.resources)),
      memsys_(cfg),
      dyn_(cfg.sharing, cfg.num_sms),
      obs_(obs != nullptr && (obs->trace_enabled() || obs->timeline_interval() != 0) ? obs
                                                                                    : nullptr),
      prof_(prof),
      kernel_name_(kernel.name),
      grid_blocks_(kernel.grid_blocks) {
  cfg_.validate();
  memsys_.set_observer(obs_);
  memsys_.set_profiler(prof_);
  sms_.reserve(cfg.num_sms);
  for (SmId i = 0; i < cfg.num_sms; ++i) {
    sms_.emplace_back(i, cfg_, program, kernel.resources, occupancy_,
                      kernel.active_lanes, memsys_, &dyn_, obs_, prof_);
  }
  dispatcher_ = std::make_unique<Dispatcher>(kernel.grid_blocks, occupancy_, sms_);
}

void Gpu::take_timeline_sample(Cycle b) {
  prof::ScopedPhase prof_scope(prof_, prof::Phase::kTimeline);
  const bool event_mode = cfg_.exec_mode == ExecMode::kEvent;
  std::vector<obs::SmTimelinePoint> pts;
  pts.reserve(sms_.size());
  for (const auto& sm : sms_) {
    obs::SmTimelinePoint p;
    // In event mode a sleeping SM's counters lag; stats_at() replays the
    // provably-identical skipped cycles up to the boundary. Gauges need no
    // reconstruction: nothing an SM owns moves while it sleeps.
    p.stats = event_mode ? sm.stats_at(b) : sm.stats();
    p.l1_accesses = sm.l1_accesses();
    p.l1_misses = sm.l1_misses();
    p.resident_blocks = sm.resident_blocks();
    p.resident_warps = sm.resident_warps();
    p.mshr_inflight = sm.l1_mshr_inflight();
    pts.push_back(p);
  }
  obs::GpuTimelinePoint g;
  g.l2_accesses = memsys_.l2_accesses();
  g.l2_misses = memsys_.l2_misses();
  g.dram_requests = memsys_.dram_requests();
  g.dram_row_hits = memsys_.dram_row_hits();
  g.l2_busy_banks = memsys_.l2_busy_banks(b);
  g.dram_busy_banks = memsys_.dram_busy_banks(b);
  obs_->timeline_sample(b, pts, g);
}

bool Gpu::done() const {
  if (!dispatcher_->all_dispatched()) return false;
  for (const auto& sm : sms_) {
    if (!sm.drained()) return false;
  }
  return true;
}

GpuStats Gpu::run() {
  if (obs_ != nullptr) {
    obs::TraceTopology topo;
    topo.num_sms = cfg_.num_sms;
    topo.warp_slots = sms_.empty() ? 0 : sms_[0].warp_slots();
    topo.block_slots = occupancy_.total_blocks;
    topo.pairs = occupancy_.shared_pairs;
    topo.l2_banks = memsys_.num_banks();
    topo.dram_channels = cfg_.dram.num_channels;
    topo.dram_banks_per_channel = cfg_.dram.banks_per_channel;
    topo.kernel = kernel_name_;
    topo.grid_blocks = grid_blocks_;
    obs_->begin_run(topo);
  }

  dispatcher_->initial_fill();

  std::vector<std::uint64_t> stall_mark(sms_.size(), 0);
  std::vector<std::uint64_t> period_stalls(sms_.size(), 0);
  const bool event_mode = cfg_.exec_mode == ExecMode::kEvent;

  // Timeline sampling: counters are captured at every multiple of the
  // interval. Boundaries the event-mode loop jumped over are emitted as
  // catch-up samples — valid because every SM slept through them, so
  // stats_at() reconstructs the exact counters and no gauge moved.
  const Cycle tl_interval = obs_ != nullptr ? obs_->timeline_interval() : 0;
  Cycle next_sample = tl_interval;

  Cycle cycle = 0;
  while (!done()) {
    ++cycle;
    if (tl_interval != 0) {
      while (next_sample < cycle) {
        take_timeline_sample(next_sample);
        next_sample += tl_interval;
      }
    }
    bool issued = false;
    if (event_mode) {
      // tick() lets each SM sleep through its own provably-idle windows
      // (O(1) per slept cycle); SMs interact only through issue-time memory
      // accesses, which a sleeping SM by definition does not generate.
      for (auto& sm : sms_) issued |= sm.tick(cycle);
    } else {
      for (auto& sm : sms_) issued |= sm.step(cycle);
    }

    // Dynamic warp execution: periodic stall comparison against SM0
    // (paper §IV-C, monitoring period 1000 cycles). Sleeping SMs never cross
    // a monitoring boundary (tick clamps their windows to it), so every SM's
    // stall counter is exact here in both modes.
    if (dyn_.enabled() && cycle % dyn_.period() == 0) {
      for (std::size_t i = 0; i < sms_.size(); ++i) {
        const std::uint64_t s = sms_[i].stats().stall_cycles;
        period_stalls[i] = s - stall_mark[i];
        stall_mark[i] = s;
      }
      dyn_.on_period_end(period_stalls);
    }

    if (tl_interval != 0 && cycle == next_sample) {
      take_timeline_sample(cycle);
      next_sample += tl_interval;
    }

    if (cfg_.max_cycles != 0 && cycle >= cfg_.max_cycles) break;

    // With every SM asleep, nothing can happen until the earliest window
    // ends: jump the clock straight there (the cycle counter is the only
    // state that moves; skipped-cycle accounting is settled lazily when each
    // SM wakes or at the final flush below).
    if (event_mode && !issued) {
      Cycle next = kNeverCycle;
      for (const auto& sm : sms_) next = std::min(next, sm.idle_until());
      if (cfg_.max_cycles != 0) next = std::min(next, cfg_.max_cycles);
      GRS_CHECK_MSG(next != kNeverCycle,
                    "deadlock: no warp can ever issue again and no event is pending");
      if (next > cycle + 1) cycle = next - 1;
    }
  }

  if (event_mode) {
    for (auto& sm : sms_) sm.flush_idle_accounting(cycle);
  }
  if (obs_ != nullptr) obs_->finalize(cycle);

  GpuStats g;
  g.cycles = cycle;
  for (auto& sm : sms_) g.sm_total.merge(sm.finalize_stats());
  g.l2_accesses = memsys_.l2_accesses();
  g.l2_misses = memsys_.l2_misses();
  g.dram_requests = memsys_.dram_requests();
  g.dram_row_hits = memsys_.dram_row_hits();
  return g;
}

}  // namespace grs
