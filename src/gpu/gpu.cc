#include "gpu/gpu.h"

#include <algorithm>

#include "common/check.h"

namespace grs {

Gpu::Gpu(const GpuConfig& cfg, const KernelInfo& kernel, const Program& program)
    : cfg_(cfg),
      occupancy_(compute_occupancy(cfg, kernel.resources)),
      memsys_(cfg),
      dyn_(cfg.sharing, cfg.num_sms) {
  cfg_.validate();
  sms_.reserve(cfg.num_sms);
  for (SmId i = 0; i < cfg.num_sms; ++i) {
    sms_.emplace_back(i, cfg_, program, kernel.resources, occupancy_,
                      kernel.active_lanes, memsys_, &dyn_);
  }
  dispatcher_ = std::make_unique<Dispatcher>(kernel.grid_blocks, occupancy_, sms_);
}

bool Gpu::done() const {
  if (!dispatcher_->all_dispatched()) return false;
  for (const auto& sm : sms_) {
    if (!sm.drained()) return false;
  }
  return true;
}

GpuStats Gpu::run() {
  dispatcher_->initial_fill();

  std::vector<std::uint64_t> stall_mark(sms_.size(), 0);
  std::vector<std::uint64_t> period_stalls(sms_.size(), 0);
  const bool event_mode = cfg_.exec_mode == ExecMode::kEvent;

  Cycle cycle = 0;
  while (!done()) {
    ++cycle;
    bool issued = false;
    if (event_mode) {
      // tick() lets each SM sleep through its own provably-idle windows
      // (O(1) per slept cycle); SMs interact only through issue-time memory
      // accesses, which a sleeping SM by definition does not generate.
      for (auto& sm : sms_) issued |= sm.tick(cycle);
    } else {
      for (auto& sm : sms_) issued |= sm.step(cycle);
    }

    // Dynamic warp execution: periodic stall comparison against SM0
    // (paper §IV-C, monitoring period 1000 cycles). Sleeping SMs never cross
    // a monitoring boundary (tick clamps their windows to it), so every SM's
    // stall counter is exact here in both modes.
    if (dyn_.enabled() && cycle % dyn_.period() == 0) {
      for (std::size_t i = 0; i < sms_.size(); ++i) {
        const std::uint64_t s = sms_[i].stats().stall_cycles;
        period_stalls[i] = s - stall_mark[i];
        stall_mark[i] = s;
      }
      dyn_.on_period_end(period_stalls);
    }

    if (cfg_.max_cycles != 0 && cycle >= cfg_.max_cycles) break;

    // With every SM asleep, nothing can happen until the earliest window
    // ends: jump the clock straight there (the cycle counter is the only
    // state that moves; skipped-cycle accounting is settled lazily when each
    // SM wakes or at the final flush below).
    if (event_mode && !issued) {
      Cycle next = kNeverCycle;
      for (const auto& sm : sms_) next = std::min(next, sm.idle_until());
      if (cfg_.max_cycles != 0) next = std::min(next, cfg_.max_cycles);
      GRS_CHECK_MSG(next != kNeverCycle,
                    "deadlock: no warp can ever issue again and no event is pending");
      if (next > cycle + 1) cycle = next - 1;
    }
  }

  if (event_mode) {
    for (auto& sm : sms_) sm.flush_idle_accounting(cycle);
  }

  GpuStats g;
  g.cycles = cycle;
  for (auto& sm : sms_) g.sm_total.merge(sm.finalize_stats());
  g.l2_accesses = memsys_.l2_accesses();
  g.l2_misses = memsys_.l2_misses();
  g.dram_requests = memsys_.dram_requests();
  g.dram_row_hits = memsys_.dram_row_hits();
  return g;
}

}  // namespace grs
