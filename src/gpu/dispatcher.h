// Grid-wide block dispatcher.
//
// Hands out thread blocks to SM slots: the initial fill and every refill when
// a resident block finishes. The slot layout (unshared slots first, then pair
// sides) is fixed by the Occupancy plan; a refilled pair slot automatically
// joins as the *non-owner* side because the SM keeps ownership with the
// surviving partner (paper §IV-A: "a new non-owner thread block gets
// launched").
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/occupancy.h"
#include "sm/sm.h"

namespace grs {

class Dispatcher {
 public:
  Dispatcher(std::uint32_t grid_blocks, const Occupancy& occ,
             std::vector<StreamingMultiprocessor>& sms);

  /// Fill every SM per the occupancy plan (round-robin over SMs so early
  /// block ids spread across the GPU, as hardware does).
  void initial_fill();

  /// SM callback on block completion: refill the slot if blocks remain.
  void on_block_finish(SmId sm, BlockSlot slot);

  [[nodiscard]] std::uint32_t dispatched() const { return next_block_; }
  [[nodiscard]] bool all_dispatched() const { return next_block_ >= grid_blocks_; }

 private:
  std::uint32_t grid_blocks_;
  Occupancy occ_;
  std::vector<StreamingMultiprocessor>* sms_;
  std::uint32_t next_block_ = 0;
};

}  // namespace grs
