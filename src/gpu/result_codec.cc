#include "gpu/result_codec.h"

#include <cinttypes>
#include <cstdio>

#include "common/parse.h"

namespace grs {

namespace {

// Accessor boilerplate. The setters static_cast through the member's own
// type so uint32 counters and enums round-trip without per-field code.
#define GRS_FIELD_U64(name, flat, expr)                                                  \
  ResultField {                                                                          \
    name, flat, false, false,                                                            \
        [](const SimResult& r) { return static_cast<std::uint64_t>(expr); },             \
        [](SimResult& r, std::uint64_t v) { expr = static_cast<decltype(expr)>(v); },    \
        nullptr, nullptr                                                                 \
  }

#define GRS_FIELD_F64(name, flat, expr)                                                  \
  ResultField {                                                                          \
    name, flat, true, false, nullptr, nullptr,                                           \
        [](const SimResult& r) { return static_cast<double>(expr); },                    \
        [](SimResult& r, double v) { expr = v; }                                         \
  }

#define GRS_FIELD_DERIVED(name, expr)                                                    \
  ResultField {                                                                          \
    name, true, true, true, nullptr, nullptr,                                            \
        [](const SimResult& r) { return static_cast<double>(expr); }, nullptr            \
  }

std::string u64_str(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string f6_str(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string exact_str(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact binary64 round-trip
  return buf;
}

}  // namespace

const std::vector<ResultField>& result_fields() {
  // Enumeration order is the codec: the `flat` subset, in this order, IS the
  // sink flat-row schema, and encode() emits the non-derived subset in this
  // order. Reordering or renaming is a codec change (bump
  // kResultCodecVersion).
  static const std::vector<ResultField> fields = {
      // Occupancy (the launch plan).
      GRS_FIELD_U64("blocks_per_sm", true, r.occupancy.total_blocks),
      GRS_FIELD_U64("baseline_blocks", true, r.occupancy.baseline_blocks),
      GRS_FIELD_U64("shared_pairs", true, r.occupancy.shared_pairs),
      GRS_FIELD_U64("unshared_blocks", false, r.occupancy.unshared_blocks),
      GRS_FIELD_U64("eq4_blocks", false, r.occupancy.eq4_blocks),
      GRS_FIELD_U64("limiter", false, r.occupancy.limiter),
      GRS_FIELD_U64("sharing_active", false, r.occupancy.sharing_active),
      GRS_FIELD_U64("unshared_regs_per_thread", false, r.occupancy.unshared_regs_per_thread),
      GRS_FIELD_U64("unshared_smem_bytes", false, r.occupancy.unshared_smem_bytes),
      GRS_FIELD_F64("baseline_waste_percent", false, r.occupancy.baseline_waste_percent),
      // Whole-GPU totals and derived rates.
      GRS_FIELD_U64("cycles", true, r.stats.cycles),
      GRS_FIELD_DERIVED("ipc", r.stats.ipc()),
      GRS_FIELD_DERIVED("warp_ipc", r.stats.warp_ipc()),
      // Per-SM scheduler accounting (summed over SMs).
      GRS_FIELD_U64("issued_cycles", true, r.stats.sm_total.issued_cycles),
      GRS_FIELD_U64("stall_cycles", true, r.stats.sm_total.stall_cycles),
      GRS_FIELD_U64("idle_cycles", true, r.stats.sm_total.idle_cycles),
      GRS_FIELD_U64("warp_instructions", true, r.stats.sm_total.warp_instructions),
      GRS_FIELD_U64("thread_instructions", true, r.stats.sm_total.thread_instructions),
      GRS_FIELD_DERIVED("l1_miss_rate", r.stats.l1_miss_rate()),
      GRS_FIELD_DERIVED("l2_miss_rate", r.stats.l2_miss_rate()),
      GRS_FIELD_U64("dram_requests", true, r.stats.dram_requests),
      // Sharing runtime events.
      GRS_FIELD_U64("lock_acquisitions", true, r.stats.sm_total.lock_acquisitions),
      GRS_FIELD_U64("lock_wait_cycles", true, r.stats.sm_total.lock_wait_cycles),
      GRS_FIELD_U64("dyn_throttled_issues", true, r.stats.sm_total.dyn_throttled_issues),
      // Remaining SM counters (not part of the flat row, still cached).
      GRS_FIELD_U64("blocks_launched", false, r.stats.sm_total.blocks_launched),
      GRS_FIELD_U64("blocks_finished", false, r.stats.sm_total.blocks_finished),
      GRS_FIELD_U64("max_resident_blocks", false, r.stats.sm_total.max_resident_blocks),
      GRS_FIELD_U64("max_resident_warps", false, r.stats.sm_total.max_resident_warps),
      GRS_FIELD_U64("ownership_transfers", false, r.stats.sm_total.ownership_transfers),
      GRS_FIELD_U64("l1_accesses", false, r.stats.sm_total.l1_accesses),
      GRS_FIELD_U64("l1_misses", false, r.stats.sm_total.l1_misses),
      GRS_FIELD_U64("l1_mshr_merges", false, r.stats.sm_total.l1_mshr_merges),
      GRS_FIELD_U64("blocked_lsu_port", false, r.stats.sm_total.blocked_lsu_port),
      GRS_FIELD_U64("blocked_lsu_inflight", false, r.stats.sm_total.blocked_lsu_inflight),
      GRS_FIELD_U64("blocked_mshr", false, r.stats.sm_total.blocked_mshr),
      GRS_FIELD_U64("blocked_sfu_port", false, r.stats.sm_total.blocked_sfu_port),
      GRS_FIELD_U64("blocked_scoreboard", false, r.stats.sm_total.blocked_scoreboard),
      GRS_FIELD_U64("blocked_barrier", false, r.stats.sm_total.blocked_barrier),
      // L2 / DRAM (shared across SMs).
      GRS_FIELD_U64("l2_accesses", false, r.stats.l2_accesses),
      GRS_FIELD_U64("l2_misses", false, r.stats.l2_misses),
      GRS_FIELD_U64("dram_row_hits", false, r.stats.dram_row_hits),
  };
  return fields;
}

#undef GRS_FIELD_U64
#undef GRS_FIELD_F64
#undef GRS_FIELD_DERIVED

std::string format_result_field(const ResultField& f, const SimResult& r) {
  return f.fractional ? f6_str(f.get_f64(r)) : u64_str(f.get_u64(r));
}

std::string encode_result(const SimResult& r) {
  std::string out;
  out.reserve(1200);
  out += "grs-result ";
  out += u64_str(static_cast<std::uint64_t>(kResultCodecVersion));
  out += '\n';
  for (const ResultField& f : result_fields()) {
    if (f.derived) continue;
    out += f.name;
    out += ' ';
    out += f.fractional ? exact_str(f.get_f64(r)) : u64_str(f.get_u64(r));
    out += '\n';
  }
  out += "end\n";
  return out;
}

bool decode_result(const std::string& text, SimResult& out) {
  std::size_t pos = 0;
  auto next_line = [&](std::string& line) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) return false;  // truncated final line
    line.assign(text, pos, nl - pos);
    pos = nl + 1;
    return true;
  };

  std::string line;
  if (!next_line(line) || line != "grs-result 1") return false;
  for (const ResultField& f : result_fields()) {
    if (f.derived) continue;
    if (!next_line(line)) return false;
    const std::string prefix = std::string(f.name) + ' ';
    if (line.compare(0, prefix.size(), prefix) != 0) return false;
    const std::string value = line.substr(prefix.size());
    if (f.fractional) {
      const auto v = parse_finite_double(value);
      if (!v.has_value()) return false;
      f.set_f64(out, *v);
    } else {
      const auto v = parse_u64(value);
      if (!v.has_value()) return false;
      // The one enum field: reject values outside the Resource range so a
      // damaged entry can never materialize an invalid enum.
      if (std::string(f.name) == "limiter" && *v > 3) return false;
      f.set_u64(out, *v);
    }
  }
  if (!next_line(line) || line != "end") return false;
  return pos == text.size();
}

}  // namespace grs
