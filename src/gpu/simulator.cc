#include "gpu/simulator.h"

#include "gpu/gpu.h"
#include "isa/reorder.h"
#include "prof/prof.h"

namespace grs {

SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel) {
  return simulate(cfg, kernel, nullptr);
}

SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel, obs::SimObserver* obs,
                   prof::HostProfiler* prof) {
  // Root of every profiled sim stack; the nested phases live in sm/memsys.
  prof::ScopedPhase prof_scope(prof, prof::Phase::kSimulate);
  cfg.validate();
  kernel.validate();

  Program program = kernel.program;
  if (cfg.sharing.enabled && cfg.sharing.unroll_registers &&
      cfg.sharing.resource == Resource::kRegisters) {
    program = reorder_registers_by_first_use(program);
  }

  Gpu gpu(cfg, kernel, program, obs, prof);
  SimResult r;
  r.stats = gpu.run();
  r.occupancy = gpu.occupancy();
  r.config = cfg;
  return r;
}

}  // namespace grs
