#include "gpu/simulator.h"

#include "gpu/gpu.h"
#include "isa/reorder.h"

namespace grs {

SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel) {
  return simulate(cfg, kernel, nullptr);
}

SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel, obs::SimObserver* obs) {
  cfg.validate();
  kernel.validate();

  Program program = kernel.program;
  if (cfg.sharing.enabled && cfg.sharing.unroll_registers &&
      cfg.sharing.resource == Resource::kRegisters) {
    program = reorder_registers_by_first_use(program);
  }

  Gpu gpu(cfg, kernel, program, obs);
  SimResult r;
  r.stats = gpu.run();
  r.occupancy = gpu.occupancy();
  r.config = cfg;
  return r;
}

}  // namespace grs
