#include "gpu/dispatcher.h"

#include "common/check.h"

namespace grs {

Dispatcher::Dispatcher(std::uint32_t grid_blocks, const Occupancy& occ,
                       std::vector<StreamingMultiprocessor>& sms)
    : grid_blocks_(grid_blocks), occ_(occ), sms_(&sms) {
  GRS_CHECK(grid_blocks >= 1);
  GRS_CHECK(!sms.empty());
  for (auto& sm : sms) {
    sm.set_block_finish_callback(
        [this](SmId id, BlockSlot slot) { on_block_finish(id, slot); });
  }
}

void Dispatcher::initial_fill() {
  // Round-robin over SMs, slot-major within an SM only after every SM got its
  // k-th block: block 0 -> SM0 slot0, block 1 -> SM1 slot0, ...
  for (std::uint32_t slot = 0; slot < occ_.total_blocks; ++slot) {
    for (auto& sm : *sms_) {
      if (next_block_ >= grid_blocks_) return;
      sm.launch_block(slot, next_block_++);
    }
  }
}

void Dispatcher::on_block_finish(SmId sm, BlockSlot slot) {
  if (next_block_ >= grid_blocks_) return;
  (*sms_)[sm].launch_block(slot, next_block_++);
}

}  // namespace grs
