// Public entry point: run one kernel under one configuration.
//
//   GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters);
//   SimResult r = simulate(cfg, workloads::hotspot());
//   std::cout << r.stats.ipc();
//
// Applies the unroll/reorder register pass when the config asks for it
// (paper §IV-B is a compile-time transformation, so it lives here, not in
// the SM).
#pragma once

#include "common/config.h"
#include "common/stats.h"
#include "core/occupancy.h"
#include "workloads/kernel_info.h"

namespace grs {

namespace obs {
class SimObserver;
}
namespace prof {
class HostProfiler;
}

struct SimResult {
  GpuStats stats;
  Occupancy occupancy;
  GpuConfig config;
};

[[nodiscard]] SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel);

/// Observed run: `obs` (may be null) collects trace events and/or timeline
/// samples, `prof` (may be null) host-phase timings, for this one simulation
/// (src/obs, src/prof). The returned SimResult is bit-identical to the
/// unobserved overload — observability never feeds back into the machine.
[[nodiscard]] SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel,
                                 obs::SimObserver* obs,
                                 prof::HostProfiler* prof = nullptr);

}  // namespace grs
