// Public entry point: run one kernel under one configuration.
//
//   GpuConfig cfg = configs::shared_owf_unroll_dyn(Resource::kRegisters);
//   SimResult r = simulate(cfg, workloads::hotspot());
//   std::cout << r.stats.ipc();
//
// Applies the unroll/reorder register pass when the config asks for it
// (paper §IV-B is a compile-time transformation, so it lives here, not in
// the SM).
#pragma once

#include "common/config.h"
#include "common/stats.h"
#include "core/occupancy.h"
#include "workloads/kernel_info.h"

namespace grs {

struct SimResult {
  GpuStats stats;
  Occupancy occupancy;
  GpuConfig config;
};

[[nodiscard]] SimResult simulate(const GpuConfig& cfg, const KernelInfo& kernel);

}  // namespace grs
