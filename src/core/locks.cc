#include "core/locks.h"

#include "common/check.h"

namespace grs {

PairLockState::PairLockState(std::uint32_t warp_positions)
    : reg_holder_(warp_positions, static_cast<std::int8_t>(kNoSide)) {}

bool PairLockState::reg_can_acquire(int side, std::uint32_t pos) const {
  GRS_CHECK(side == 0 || side == 1);
  GRS_CHECK(pos < reg_holder_.size());
  if (reg_holder_[pos] == side) return true;           // already holds it
  if (reg_holder_[pos] != kNoSide) return false;       // partner warp holds it
  if (entitled_ == 1 - side) return false;             // partner owns the pool
  return reg_count_[1 - side] == 0;                    // Fig. 5 rule
}

void PairLockState::reg_acquire(int side, std::uint32_t pos) {
  GRS_CHECK_MSG(reg_can_acquire(side, pos), "illegal register lock acquisition");
  if (reg_holder_[pos] == side) return;  // idempotent
  reg_holder_[pos] = static_cast<std::int8_t>(side);
  ++reg_count_[side];
}

void PairLockState::reg_release_on_warp_finish(int side, std::uint32_t pos) {
  GRS_CHECK(side == 0 || side == 1);
  GRS_CHECK(pos < reg_holder_.size());
  if (reg_holder_[pos] != side) return;
  reg_holder_[pos] = static_cast<std::int8_t>(kNoSide);
  GRS_CHECK(reg_count_[side] > 0);
  --reg_count_[side];
}

bool PairLockState::reg_held(int side, std::uint32_t pos) const {
  GRS_CHECK(pos < reg_holder_.size());
  return reg_holder_[pos] == side;
}

std::uint32_t PairLockState::reg_locks_held(int side) const {
  GRS_CHECK(side == 0 || side == 1);
  return reg_count_[side];
}

bool PairLockState::smem_can_acquire(int side) const {
  GRS_CHECK(side == 0 || side == 1);
  if (entitled_ == 1 - side) return false;  // partner owns the pool
  return smem_holder_ == kNoSide || smem_holder_ == side;
}

void PairLockState::smem_acquire(int side) {
  GRS_CHECK_MSG(smem_can_acquire(side), "illegal scratchpad lock acquisition");
  smem_holder_ = static_cast<std::int8_t>(side);
}

void PairLockState::on_block_finish(int side) {
  GRS_CHECK(side == 0 || side == 1);
  // All the block's warps have finished, so their register locks are gone.
  GRS_CHECK_MSG(reg_count_[side] == 0,
                "block finished with live warp register locks");
  if (smem_holder_ == side) smem_holder_ = kNoSide;
  if (entitled_ == side) entitled_ = kNoSide;
}

void PairLockState::on_block_replace(int side) {
  GRS_CHECK(side == 0 || side == 1);
  GRS_CHECK(reg_count_[side] == 0);
  GRS_CHECK(smem_holder_ != side);
}

int PairLockState::locked_side() const {
  if (reg_count_[0] > 0 || smem_holder_ == 0) return 0;
  if (reg_count_[1] > 0 || smem_holder_ == 1) return 1;
  return kNoSide;
}

}  // namespace grs
