// Resident-block arithmetic: baseline occupancy and the paper's sharing plan.
//
// Baseline (paper §II): blocks per SM = min over the four constraints
// (registers, scratchpad, max threads, max blocks). Sharing (paper §III-C,
// Eq. 1-4): launch U unshared blocks plus S shared pairs on the limiting
// resource such that
//     S + U = ⌊R/Rtb⌋            (effective blocks preserved, Eq. 1)
//     U*Rtb + S*(1+t)*Rtb <= R   (capacity, Eq. 2)
//     M = U + 2S                 (Eq. 3)
//     M = ⌊R/Rtb⌋ + (1/t)(R/Rtb - ⌊R/Rtb⌋)   (Eq. 4)
// M is additionally capped by 2*⌊R/Rtb⌋ (every extra block needs a partner),
// by the max-threads and max-blocks limits, and by the *other* resource's
// unshared capacity (paper §III-C last paragraph).
#pragma once

#include <cstdint>

#include "common/config.h"
#include "common/types.h"

namespace grs {

/// Static resource demand of one kernel (paper Tables II/III inputs).
struct KernelResources {
  std::uint32_t threads_per_block = 0;
  std::uint32_t regs_per_thread = 0;
  std::uint32_t smem_per_block = 0;  ///< bytes

  [[nodiscard]] std::uint32_t warps_per_block(std::uint32_t warp_size) const {
    return (threads_per_block + warp_size - 1) / warp_size;
  }
  [[nodiscard]] std::uint32_t regs_per_block() const {
    return regs_per_thread * threads_per_block;
  }
};

/// The launch plan for one SM.
struct Occupancy {
  // Baseline (non-sharing).
  std::uint32_t baseline_blocks = 0;
  Resource limiter = Resource::kBlocks;  ///< binding constraint of the baseline

  // Sharing plan. When sharing is disabled or adds nothing, these collapse to
  // the baseline: total==baseline, pairs==0, unshared==baseline.
  bool sharing_active = false;       ///< extra blocks are actually launched
  std::uint32_t total_blocks = 0;    ///< M (capped)
  std::uint32_t unshared_blocks = 0; ///< U
  std::uint32_t shared_pairs = 0;    ///< S
  std::uint32_t eq4_blocks = 0;      ///< ⌊Eq.4⌋ before caps (diagnostics)

  /// Shared/unshared partition thresholds of the shared resource.
  /// Register sharing: architectural register numbers per *thread* below
  /// this are private ("RegNo <= Rw*t", Fig. 3(c)). Scratchpad sharing:
  /// byte offsets below this are private ("SMemLoc <= Rtb*t", Fig. 4(c)).
  std::uint32_t unshared_regs_per_thread = 0;
  std::uint32_t unshared_smem_bytes = 0;

  /// Blocks guaranteed to make progress (>= baseline by construction).
  [[nodiscard]] std::uint32_t effective_blocks() const {
    return unshared_blocks + shared_pairs;
  }
  /// Percentage of the limiting resource left unused by the baseline
  /// allocation (paper Fig. 1(b)/(d)).
  double baseline_waste_percent = 0.0;
};

/// Compute the launch plan for `k` under `cfg` (uses cfg.sharing).
[[nodiscard]] Occupancy compute_occupancy(const GpuConfig& cfg, const KernelResources& k);

}  // namespace grs
