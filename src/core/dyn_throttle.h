// Dynamic warp execution (paper §IV-C).
//
// Controls whether non-owner warps may issue *global memory* instructions.
// SM0 is the reference: its non-owner memory instructions are disabled
// outright. Every other SMi keeps a probability p_i (initially 1.0); every
// `dyn_period` cycles it compares the stall cycles it accumulated over the
// period with SM0's and moves p_i down (more stalls than SM0) or up (fewer)
// by `dyn_step`, saturating in [0, 1].
//
// The per-issue gate is a counter-based hash of (sm, cycle, warp) so the
// decision sequence is reproducible and independent of evaluation order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace grs {

class DynThrottle {
 public:
  DynThrottle(const SharingConfig& cfg, std::uint32_t num_sms);

  /// May a non-owner warp on `sm` issue a global-memory instruction now?
  [[nodiscard]] bool allow(SmId sm, Cycle now, std::uint64_t warp_uid) const;

  /// Called once per `dyn_period`; `period_stalls[i]` = stall cycles SMi
  /// accumulated during the period just ended.
  void on_period_end(const std::vector<std::uint64_t>& period_stalls);

  [[nodiscard]] double probability(SmId sm) const;
  [[nodiscard]] Cycle period() const { return cfg_.dyn_period; }
  [[nodiscard]] bool enabled() const { return cfg_.dynamic_warp_execution; }

  /// First cycle strictly after `now` at which on_period_end must run
  /// (kNeverCycle when Dyn is disabled). The event-driven loop never skips
  /// past it: probabilities — and with them every gate decision — may change
  /// there.
  [[nodiscard]] Cycle next_period_boundary(Cycle now) const {
    if (!cfg_.dynamic_warp_execution) return kNeverCycle;
    return (now / cfg_.dyn_period + 1) * cfg_.dyn_period;
  }

  /// True when allow() for `sm` depends on the cycle number (fractional
  /// probability): a scan that consulted such a gate cannot be assumed to
  /// repeat identically, so the SM must be stepped cycle by cycle.
  [[nodiscard]] bool gate_is_cycle_dependent(SmId sm) const {
    if (!cfg_.dynamic_warp_execution || sm == 0) return false;
    const double p = prob_[sm];
    return p > 0.0 && p < 1.0;
  }

 private:
  SharingConfig cfg_;
  std::vector<double> prob_;
};

}  // namespace grs
