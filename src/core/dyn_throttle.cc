#include "core/dyn_throttle.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace grs {

DynThrottle::DynThrottle(const SharingConfig& cfg, std::uint32_t num_sms)
    : cfg_(cfg), prob_(num_sms, 1.0) {
  GRS_CHECK(num_sms >= 1);
  // SM0 is the all-disabled reference point (paper §IV-C).
  prob_[0] = 0.0;
}

bool DynThrottle::allow(SmId sm, Cycle now, std::uint64_t warp_uid) const {
  if (!cfg_.dynamic_warp_execution) return true;
  GRS_CHECK(sm < prob_.size());
  if (sm == 0) return false;
  const double p = prob_[sm];
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const std::uint64_t h = hash_combine(hash_combine(sm, now), warp_uid);
  return to_unit_double(h) < p;
}

void DynThrottle::on_period_end(const std::vector<std::uint64_t>& period_stalls) {
  if (!cfg_.dynamic_warp_execution) return;
  GRS_CHECK(period_stalls.size() == prob_.size());
  const std::uint64_t reference = period_stalls[0];
  for (std::size_t i = 1; i < prob_.size(); ++i) {
    if (period_stalls[i] > reference) {
      prob_[i] = std::max(0.0, prob_[i] - cfg_.dyn_step);
    } else {
      prob_[i] = std::min(1.0, prob_[i] + cfg_.dyn_step);
    }
  }
}

double DynThrottle::probability(SmId sm) const {
  GRS_CHECK(sm < prob_.size());
  return prob_[sm];
}

}  // namespace grs
