#include "core/occupancy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace grs {

namespace {

/// Integer-exact evaluation of Eq. 4's fractional term:
/// extra = ⌊ (R - D*Rtb) / (t*Rtb) ⌋ with t carried in thousandths.
std::uint32_t eq4_extra_blocks(std::uint64_t R, std::uint64_t Rtb, std::uint64_t D,
                               double t) {
  const std::uint64_t rem = R - D * Rtb;
  const auto t_milli = static_cast<std::uint64_t>(std::llround(t * 1000.0));
  GRS_CHECK(t_milli >= 1 && t_milli <= 1000);
  return static_cast<std::uint32_t>((rem * 1000) / (t_milli * Rtb));
}

}  // namespace

Occupancy compute_occupancy(const GpuConfig& cfg, const KernelResources& k) {
  GRS_CHECK(k.threads_per_block >= 1);
  Occupancy o;

  const std::uint32_t warps = k.warps_per_block(cfg.warp_size);
  const std::uint32_t blocks_by_warps = cfg.max_warps_per_sm() / warps;
  const std::uint32_t blocks_by_limit = cfg.max_blocks_per_sm;
  const std::uint32_t blocks_by_regs =
      k.regs_per_block() == 0 ? UINT32_MAX : cfg.registers_per_sm / k.regs_per_block();
  const std::uint32_t blocks_by_smem =
      k.smem_per_block == 0 ? UINT32_MAX : cfg.scratchpad_per_sm / k.smem_per_block;

  o.baseline_blocks =
      std::min(std::min(blocks_by_warps, blocks_by_limit), std::min(blocks_by_regs, blocks_by_smem));
  GRS_CHECK_MSG(o.baseline_blocks >= 1, "kernel does not fit on the SM at all");

  // Binding constraint: ties resolved in the paper's presentation order.
  if (blocks_by_regs == o.baseline_blocks) {
    o.limiter = Resource::kRegisters;
  } else if (blocks_by_smem == o.baseline_blocks) {
    o.limiter = Resource::kScratchpad;
  } else if (blocks_by_warps == o.baseline_blocks) {
    o.limiter = Resource::kThreads;
  } else {
    o.limiter = Resource::kBlocks;
  }

  // Baseline wastage of the limiting resource (Fig. 1(b)/(d)).
  std::uint64_t R = 0, Rtb = 0;
  if (o.limiter == Resource::kRegisters) {
    R = cfg.registers_per_sm;
    Rtb = k.regs_per_block();
  } else if (o.limiter == Resource::kScratchpad) {
    R = cfg.scratchpad_per_sm;
    Rtb = k.smem_per_block;
  }
  if (Rtb != 0) {
    o.baseline_waste_percent =
        100.0 * static_cast<double>(R - o.baseline_blocks * Rtb) / static_cast<double>(R);
  }

  // Default: no sharing.
  o.total_blocks = o.baseline_blocks;
  o.unshared_blocks = o.baseline_blocks;
  o.shared_pairs = 0;
  o.eq4_blocks = o.baseline_blocks;

  const SharingConfig& sh = cfg.sharing;
  const bool applicable = sh.enabled && sh.resource == o.limiter &&
                          (sh.resource == Resource::kRegisters ||
                           sh.resource == Resource::kScratchpad) &&
                          Rtb != 0;
  if (!applicable) {
    // Sharing-mode thresholds are irrelevant; everything is unshared.
    o.unshared_regs_per_thread = k.regs_per_thread;
    o.unshared_smem_bytes = k.smem_per_block;
    return o;
  }

  const std::uint32_t D = o.baseline_blocks;
  const std::uint32_t extra = eq4_extra_blocks(R, Rtb, D, sh.threshold_t);
  o.eq4_blocks = D + extra;

  // Caps: pairing bound, threads, blocks, and the other resource's unshared
  // demand (extra blocks still consume it at full rate).
  std::uint32_t M = std::min(o.eq4_blocks, 2 * D);
  M = std::min(M, blocks_by_warps);
  M = std::min(M, blocks_by_limit);
  if (o.limiter == Resource::kRegisters) {
    M = std::min(M, blocks_by_smem);
  } else {
    M = std::min(M, blocks_by_regs);
  }

  if (M <= D) {
    // Sharing adds nothing at this threshold: launch everything unshared
    // (paper §VI-B.1: "at run time, our approach decides to launch all the
    // thread blocks in the unsharing mode").
    o.unshared_regs_per_thread = k.regs_per_thread;
    o.unshared_smem_bytes = k.smem_per_block;
    return o;
  }

  o.sharing_active = true;
  o.total_blocks = M;
  o.shared_pairs = M - D;
  o.unshared_blocks = D - o.shared_pairs;

  // Eq. 2 must hold by construction of Eq. 4.
  const auto t_units = [&](std::uint64_t units) {
    return static_cast<std::uint64_t>(std::floor(static_cast<double>(units) * sh.threshold_t));
  };
  const std::uint64_t used = o.unshared_blocks * Rtb + o.shared_pairs * (Rtb + t_units(Rtb));
  GRS_CHECK_MSG(used <= R, "Eq. 2 violated: sharing plan over-allocates");

  // Private partition of the shared resource (Fig. 3/4 step (c) thresholds).
  if (o.limiter == Resource::kRegisters) {
    o.unshared_regs_per_thread =
        static_cast<std::uint32_t>(std::floor(k.regs_per_thread * sh.threshold_t));
    o.unshared_smem_bytes = k.smem_per_block;
  } else {
    o.unshared_smem_bytes =
        static_cast<std::uint32_t>(std::floor(k.smem_per_block * sh.threshold_t));
    o.unshared_regs_per_thread = k.regs_per_thread;
  }
  return o;
}

}  // namespace grs
