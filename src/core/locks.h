// Shared-resource lock state for one shared pair of thread blocks.
//
// Register sharing (paper §III-A): each pair of warps (one warp from each
// block at the same position) shares a pool of registers guarded by a lock.
// A warp holds the lock from its first shared-register access until it
// finishes. Deadlock avoidance (paper Fig. 5): a warp of block A may acquire
// a lock only while no *live* warp of block B holds any lock of the pair —
// i.e. only one side of the pair can be in the shared region at a time.
//
// Scratchpad sharing (paper §III-B): a single block-granular lock; the first
// block to touch the shared scratchpad region owns it until it finishes.
//
// PairLockState is pure bookkeeping (no SM coupling) so it can be unit-tested
// against the paper's Fig. 5 scenario directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace grs {

class PairLockState {
 public:
  /// `warp_positions` — warps per block (register-sharing locks are per warp
  /// position; scratchpad sharing ignores them).
  explicit PairLockState(std::uint32_t warp_positions);

  static constexpr int kNoSide = -1;

  // --- ownership entitlement ---------------------------------------------
  /// The owner block of the pair is *entitled* to the shared pool: the other
  /// side cannot acquire anything while an entitlement is set (paper §IV-A —
  /// ownership transfers to the non-owner when the owner finishes, and the
  /// freshly launched replacement must wait its turn rather than racing the
  /// resumed block for the locks). kNoSide = first access wins (initial
  /// launch, paper §III).
  void set_entitled(int side) { entitled_ = static_cast<std::int8_t>(side); }
  [[nodiscard]] int entitled() const { return entitled_; }

  // --- register locks (per warp position) -------------------------------
  /// May `side`'s warp at `pos` enter the shared-register region now?
  /// True if it already holds the lock, or the lock is free, no live lock
  /// of the *other* side exists (the Fig. 5 rule), and `side` is not barred
  /// by the other side's entitlement.
  [[nodiscard]] bool reg_can_acquire(int side, std::uint32_t pos) const;

  /// Acquire (idempotent for the current holder). Must be legal.
  void reg_acquire(int side, std::uint32_t pos);

  /// Warp finished: release its position lock if held.
  void reg_release_on_warp_finish(int side, std::uint32_t pos);

  [[nodiscard]] bool reg_held(int side, std::uint32_t pos) const;
  [[nodiscard]] std::uint32_t reg_locks_held(int side) const;

  // --- scratchpad lock (block granularity) -------------------------------
  [[nodiscard]] bool smem_can_acquire(int side) const;
  void smem_acquire(int side);
  [[nodiscard]] int smem_holder() const { return smem_holder_; }

  // --- lifecycle ----------------------------------------------------------
  /// Block on `side` finished: all its locks drop (its warps have finished,
  /// which released register locks already — checked) and the scratchpad
  /// lock, if held by it, is released.
  void on_block_finish(int side);

  /// A new block was installed on `side`; its lock state must be clean.
  void on_block_replace(int side);

  /// Which side currently holds any lock (kNoSide if none). With the Fig. 5
  /// rule at most one side can hold locks, so this is well defined.
  [[nodiscard]] int locked_side() const;

 private:
  std::vector<std::int8_t> reg_holder_;  ///< per position: kNoSide/0/1
  std::uint32_t reg_count_[2] = {0, 0};
  std::int8_t smem_holder_ = kNoSide;
  std::int8_t entitled_ = kNoSide;
};

}  // namespace grs
