#include "core/hardware_cost.h"

#include "common/check.h"

namespace grs {

std::uint32_t ceil_log2(std::uint64_t x) {
  GRS_CHECK(x >= 1);
  std::uint32_t bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

std::uint64_t register_sharing_bits(const HardwareCostParams& p) {
  const std::uint64_t T = p.blocks_per_sm;
  const std::uint64_t W = p.warps_per_sm;
  const std::uint64_t per_sm =
      1 + T * ceil_log2(T + 1) + 2 * W + (W / 2) * ceil_log2(W);
  return per_sm * p.num_sms;
}

std::uint64_t scratchpad_sharing_bits(const HardwareCostParams& p) {
  const std::uint64_t T = p.blocks_per_sm;
  const std::uint64_t W = p.warps_per_sm;
  const std::uint64_t per_sm = 1 + T * ceil_log2(T + 1) + W + (T / 2) * ceil_log2(T);
  return per_sm * p.num_sms;
}

}  // namespace grs
