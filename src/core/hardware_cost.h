// Hardware storage cost of the sharing mechanisms (paper §V).
#pragma once

#include <cstdint>

namespace grs {

/// Inputs: T = max resident thread blocks per SM, W = max resident warps per
/// SM, N = number of SMs.
struct HardwareCostParams {
  std::uint32_t blocks_per_sm = 8;   ///< T
  std::uint32_t warps_per_sm = 48;   ///< W
  std::uint32_t num_sms = 14;        ///< N
};

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] std::uint32_t ceil_log2(std::uint64_t x);

/// Register sharing: (1 + T*ceil(log2(T+1)) + 2W + floor(W/2)*ceil(log2 W)) * N bits.
[[nodiscard]] std::uint64_t register_sharing_bits(const HardwareCostParams& p);

/// Scratchpad sharing: (1 + T*ceil(log2(T+1)) + W + floor(T/2)*ceil(log2 T)) * N bits.
[[nodiscard]] std::uint64_t scratchpad_sharing_bits(const HardwareCostParams& p);

}  // namespace grs
