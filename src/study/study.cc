#include "study/study.h"

#include <cstdio>
#include <cstdlib>

#include "runner/engine.h"
#include "runner/kernel_source.h"
#include "study/aggregate.h"
#include "study/report.h"

namespace grs::study {

namespace {

StudyPlan default_plan() { return build_plan(default_grid(), runner::default_corpus_dir()); }

}  // namespace

std::string default_report_dir() {
  const char* env = std::getenv("GRS_STUDY_DIR");
  return env != nullptr && *env != '\0' ? env : "docs/study";
}

runner::SweepSpec build_study_spec() { return to_sweep_spec(default_plan()); }

void present_study(const runner::BenchView& view, const std::string& dir) {
  // Rebuild the (deterministic) plan to map results back to axis coordinates;
  // generating the cells again costs milliseconds next to the sweep itself.
  const StudyPlan plan = default_plan();
  const StudyAggregation agg = aggregate(plan, view);

  const std::size_t skipped = agg.registers.skipped + agg.scratchpad.skipped;
  std::printf("study: %zu register-family series, %zu scratchpad-family series",
              agg.registers.cells.size() + agg.registers.corpus.size(),
              agg.scratchpad.cells.size() + agg.scratchpad.corpus.size());
  if (skipped > 0) std::printf(" (%zu incomplete)", skipped);
  std::printf("\n");

  // Only a complete sweep may touch the report directory: a --filter run
  // would otherwise silently overwrite the committed, CI-locked docs/study
  // pages with incomplete ones.
  if (skipped > 0) {
    std::printf("study: filtered run — reports NOT written to %s\n", dir.c_str());
    return;
  }
  const std::vector<std::string> written = write_reports(agg, dir);
  for (const std::string& name : written)
    std::printf("study: wrote %s/%s\n", dir.c_str(), name.c_str());
}

void run_study(const StudyOptions& options) {
  runner::RunOptions run;
  run.threads = options.threads;
  run.cache_dir = options.cache_dir;
  run.cache_mode = options.cache_mode;
  cache::CacheStats cache_total;
  run.cache_stats = &cache_total;
  const std::vector<runner::SweepRow> rows = runner::run_sweep(build_study_spec(), run);
  // Any cache-enabled run reports its counters (--cache-stats is implied).
  if (!options.cache_dir.empty() && options.cache_mode != cache::CacheMode::kOff)
    std::fprintf(stderr, "[grs_cli] cache: %s\n", cache_total.summary().c_str());
  present_study(runner::BenchView(rows), default_report_dir());
}

}  // namespace grs::study
