// Sharing-study driver glue: the three entry points the frontends use.
//
//   grs_bench study        registry build/present pair (bench/study.cc), so
//                          the study composes with --threads/--filter/--out
//                          like every other bench
//   grs_cli --study        run_study() one-shot passthrough
//
// The report directory defaults to docs/study (relative to the working
// directory — the repo root in the documented workflows); override with
// $GRS_STUDY_DIR. The corpus directory follows the corpus bench
// ($GRS_CORPUS_DIR, default examples/kernels).
#pragma once

#include <string>

#include "cache/result_cache.h"
#include "runner/registry.h"
#include "runner/sweep.h"

namespace grs::study {

/// $GRS_STUDY_DIR when set and non-empty, else "docs/study".
[[nodiscard]] std::string default_report_dir();

/// The full default-grid sweep (generated cells + corpus x both families).
[[nodiscard]] runner::SweepSpec build_study_spec();

/// Aggregate `view` against the default plan, write the report files into
/// `dir`, and print a one-screen summary (files written + headline) to
/// stdout. Throws std::runtime_error when the directory is unwritable.
void present_study(const runner::BenchView& view, const std::string& dir);

struct StudyOptions {
  unsigned threads = 0;

  /// Content-addressed result cache for the sweep (see runner::RunOptions);
  /// off when `cache_dir` is empty. With a warm cache the full study
  /// regenerates from lookups alone.
  std::string cache_dir;
  cache::CacheMode cache_mode = cache::CacheMode::kOff;
  bool cache_stats = false;  ///< print hit/miss counters to stderr afterwards
};

/// One-shot: build, run, aggregate, write into default_report_dir() (the
/// grs_cli --study path).
void run_study(const StudyOptions& options);

}  // namespace grs::study
