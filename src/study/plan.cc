#include "study/plan.h"

#include <cstdio>

#include "runner/kernel_source.h"
#include "workloads/gen/generator.h"

namespace grs::study {

StudyGrid default_grid() {
  StudyGrid g;
  // Register pressure with 256-thread blocks. Sharing recovers the *waste*
  // of the limiting resource (Eq. 4 adds ⌊(R - D*Rtb)/(t*Rtb)⌋ blocks), so
  // the levels are chosen for their remainders, mirroring Fig. 1(b):
  // 16 regs/thread never limits (threads cap at 6 blocks first — the
  // negative control); 28 admits 4 blocks wasting 4096 regs; 36 (hotspot's
  // count) admits 3 wasting 5120; 44 admits 2 wasting 10240 (90% of a
  // block — the b+tree-like best case).
  g.regs = {16, 28, 36, 44};
  // Staging tiles against the 16KB scratchpad, same logic: none, mild
  // (5 blocks, 1KB waste), severe (2 blocks, 4KB waste — the SRAD1-like
  // shape where scratchpad sharing doubles residency).
  g.staging = {0, 3072, 6144};
  g.memory = {0, 1, 2};
  g.lanes = {32, 16, 8};
  g.percents = {0, 10, 30, 50, 70, 90};
  g.seed = 1;
  return g;
}

const char* memory_level_name(std::uint32_t intensity) {
  switch (intensity) {
    case 0: return "light";
    case 1: return "medium";
    default: return "heavy";
  }
}

StudyPlan build_plan(const StudyGrid& grid, const std::string& corpus_dir) {
  StudyPlan plan;
  plan.grid = grid;
  plan.cells.reserve(grid.cell_count());
  for (std::uint32_t r : grid.regs) {
    for (std::uint32_t sm : grid.staging) {
      for (std::uint32_t m : grid.memory) {
        for (std::uint32_t l : grid.lanes) {
          StudyCell cell;
          cell.axes = workloads::gen::StudyAxes{r, sm, m, l};
          cell.kernel =
              workloads::gen::generate(workloads::gen::study_profile(cell.axes), grid.seed);
          plan.cells.push_back(std::move(cell));
        }
      }
    }
  }
  if (!corpus_dir.empty()) plan.corpus = runner::load_kernel_dir(corpus_dir);
  return plan;
}

std::string variant_label(Resource resource, double percent) {
  const char* family = resource == Resource::kRegisters ? "reg" : "smem";
  return std::string(family) + " " + std::to_string(static_cast<int>(percent)) + "%";
}

GpuConfig family_config(Resource resource, double percent) {
  const double t = 1.0 - percent / 100.0;
  return resource == Resource::kRegisters
             ? configs::shared_owf_unroll_dyn(Resource::kRegisters, t)
             : configs::shared_owf(Resource::kScratchpad, t);
}

runner::SweepSpec to_sweep_spec(const StudyPlan& plan) {
  runner::SweepSpec spec;
  auto add_kernel = [&](const KernelInfo& kernel) {
    for (double p : plan.grid.percents) {
      spec.add(variant_label(Resource::kRegisters, p), family_config(Resource::kRegisters, p),
               kernel);
    }
    if (kernel.resources.smem_per_block > 0) {
      for (double p : plan.grid.percents) {
        spec.add(variant_label(Resource::kScratchpad, p),
                 family_config(Resource::kScratchpad, p), kernel);
      }
    }
  };
  for (const StudyCell& cell : plan.cells) add_kernel(cell.kernel);
  for (const KernelInfo& kernel : plan.corpus) add_kernel(kernel);
  return spec;
}

}  // namespace grs::study
