// Sharing-study aggregation: fold the sweep's raw rows back onto the plan's
// axis grid — per-cell IPC series over the sharing percentages, peak
// detection, per-axis marginal summaries, and the regs/staging x
// memory-boundedness speedup surfaces the reports render.
//
// Aggregation is pure over (plan, rows): iteration order and floating-point
// summation order are fixed by the plan, so the same sweep results always
// aggregate to byte-identical reports regardless of worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "runner/registry.h"
#include "study/plan.h"

namespace grs::study {

/// One sharing percentage of one kernel's series.
struct SeriesPoint {
  double percent = 0;
  double ipc = 0;
  std::uint32_t blocks = 0;  ///< resident thread blocks per SM
};

/// One kernel's complete series over a family's sharing percentages, with the
/// detected peak. The baseline is the series' first (lowest) percentage; ties
/// resolve to the lowest peaking percentage.
struct CellSeries {
  std::string kernel;
  bool generated = false;  ///< true: axes hold this cell's grid coordinates
  workloads::gen::StudyAxes axes;
  std::vector<SeriesPoint> points;

  double baseline_ipc = 0;
  double peak_ipc = 0;
  double peak_percent = 0;
  double speedup = 0;  ///< peak_ipc / baseline_ipc
  std::uint32_t baseline_blocks = 0;
  std::uint32_t peak_blocks = 0;
};

/// Summary of every cell sharing one level of one axis.
struct MarginalRow {
  std::string level;
  std::size_t cells = 0;
  double mean_speedup = 0;
  double max_speedup = 0;
  double mean_peak_percent = 0;
  double mean_extra_blocks = 0;  ///< mean (peak_blocks - baseline_blocks)
};

/// Everything aggregated for one sharing family (registers or scratchpad).
struct FamilyAggregation {
  Resource resource = Resource::kRegisters;
  std::vector<CellSeries> cells;   ///< generated cells with complete series
  std::vector<CellSeries> corpus;  ///< corpus kernels with complete series

  std::vector<MarginalRow> by_regs, by_staging, by_memory, by_lanes;

  /// Mean-speedup surface: pressure axis rows (regs for the register family,
  /// staging tiles > 0 for the scratchpad family) x memory-boundedness
  /// columns, averaged over the remaining axes.
  std::vector<std::string> surface_rows, surface_cols;
  std::vector<std::vector<double>> surface;

  /// Cells whose detected peak sits at percents[i].
  std::vector<std::size_t> peak_histogram;

  /// Kernels dropped for missing points (a --filter run); complete reports
  /// need a full sweep.
  std::size_t skipped = 0;
};

struct StudyAggregation {
  StudyGrid grid;
  FamilyAggregation registers, scratchpad;
};

/// Map the sweep's rows (keyed by variant label x kernel name) back onto the
/// plan. Kernels missing any of their family's percents are counted in
/// `skipped` and excluded from every table.
[[nodiscard]] StudyAggregation aggregate(const StudyPlan& plan,
                                         const runner::BenchView& view);

}  // namespace grs::study
