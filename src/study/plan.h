// Sharing-study sweep planner: the parametric grid of generated kernels
// (workloads::gen::study_profile over four axes) plus the saved .gkd corpus,
// crossed with the paper's sharing lines at every sharing percentage.
//
// The plan is pure and deterministic: build_plan(grid, dir) always produces
// the same cells in the same order, so the driver can rebuild it after the
// sweep to map results (keyed by variant label x kernel name) back to axis
// coordinates. Two sharing "families" are planned, mirroring Tables V-VIII:
//
//   registers  — configs::shared_owf_unroll_dyn(kRegisters, t), every kernel
//   scratchpad — configs::shared_owf(kScratchpad, t), kernels with smem > 0
//
// with t = 1 - percent/100, so the 0% variant of each family is the paper's
// 0%-sharing baseline column.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "runner/sweep.h"
#include "workloads/gen/profile.h"
#include "workloads/kernel_info.h"

namespace grs::study {

/// The level sets of the four study axes, the sharing-percent grid, and the
/// generator seed. default_grid() is the committed docs/study configuration;
/// tests shrink it to a few cells.
struct StudyGrid {
  std::vector<std::uint32_t> regs;       ///< registers per thread
  std::vector<std::uint32_t> staging;    ///< scratchpad tile bytes per block
  std::vector<std::uint32_t> memory;     ///< mem_intensity levels (0..2)
  std::vector<std::uint32_t> lanes;      ///< active lanes per warp
  std::vector<double> percents;          ///< sharing percentages, ascending
  std::uint64_t seed = 1;                ///< generator seed for every cell

  /// Number of generated cells (cross product of the four level sets).
  [[nodiscard]] std::size_t cell_count() const {
    return regs.size() * staging.size() * memory.size() * lanes.size();
  }
};

/// The committed-study grid: 4 x 3 x 3 x 3 = 108 cells spanning not-limited
/// to severely-limited pressure on both resources, the paper's six sharing
/// percentages (Tables V-VIII), seed 1.
[[nodiscard]] StudyGrid default_grid();

/// Human-readable names of the memory-intensity levels ("light" ...).
[[nodiscard]] const char* memory_level_name(std::uint32_t intensity);

/// One generated grid cell: its coordinates and the kernel they produce.
struct StudyCell {
  workloads::gen::StudyAxes axes;
  KernelInfo kernel;
};

struct StudyPlan {
  StudyGrid grid;
  std::vector<StudyCell> cells;    ///< lanes innermost, regs outermost
  std::vector<KernelInfo> corpus;  ///< saved .gkd kernels (may be empty)
};

/// Generate every cell kernel and load the corpus. `corpus_dir` empty skips
/// the corpus entirely (unit tests).
[[nodiscard]] StudyPlan build_plan(const StudyGrid& grid, const std::string& corpus_dir);

/// Variant label of one (family, percent) line, e.g. "reg 90%" / "smem 0%".
[[nodiscard]] std::string variant_label(Resource resource, double percent);

/// The family's config at one sharing percentage (t = 1 - percent/100).
[[nodiscard]] GpuConfig family_config(Resource resource, double percent);

/// The full sweep: for every kernel (cells then corpus), the register family
/// at every percent, then — for kernels that declare scratchpad — the
/// scratchpad family at every percent.
[[nodiscard]] runner::SweepSpec to_sweep_spec(const StudyPlan& plan);

}  // namespace grs::study
