#include "study/aggregate.h"

#include <algorithm>

namespace grs::study {

namespace {

/// Collect one kernel's series for `resource`; false when any percent is
/// missing from the results (filtered run). Callers only pass kernels the
/// family applies to, so a false return always means an incomplete sweep.
bool collect_series(const runner::BenchView& view, const StudyGrid& grid, Resource resource,
                    const KernelInfo& kernel, CellSeries& out) {
  out.kernel = kernel.name;
  out.points.clear();
  for (double p : grid.percents) {
    const SimResult* r = view.find(variant_label(resource, p), kernel.name);
    if (r == nullptr) return false;
    out.points.push_back({p, r->stats.ipc(), r->occupancy.total_blocks});
  }
  if (out.points.empty()) return false;
  out.baseline_ipc = out.points.front().ipc;
  out.baseline_blocks = out.points.front().blocks;
  out.peak_ipc = out.baseline_ipc;
  out.peak_percent = out.points.front().percent;
  out.peak_blocks = out.baseline_blocks;
  for (const SeriesPoint& pt : out.points) {
    if (pt.ipc > out.peak_ipc) {
      out.peak_ipc = pt.ipc;
      out.peak_percent = pt.percent;
      out.peak_blocks = pt.blocks;
    }
  }
  out.speedup = out.baseline_ipc == 0 ? 1.0 : out.peak_ipc / out.baseline_ipc;
  return true;
}

/// Marginal over the cells whose axis value (selected by `axis_of`) equals
/// `value`; null row when no cell matches (e.g. staging 0 in the scratchpad
/// family).
template <typename AxisOf>
MarginalRow marginal(const std::vector<CellSeries>& cells, const std::string& level,
                     std::uint32_t value, AxisOf axis_of) {
  MarginalRow row;
  row.level = level;
  for (const CellSeries& c : cells) {
    if (axis_of(c.axes) != value) continue;
    ++row.cells;
    row.mean_speedup += c.speedup;
    row.max_speedup = std::max(row.max_speedup, c.speedup);
    row.mean_peak_percent += c.peak_percent;
    row.mean_extra_blocks += static_cast<double>(c.peak_blocks) - c.baseline_blocks;
  }
  if (row.cells > 0) {
    const auto n = static_cast<double>(row.cells);
    row.mean_speedup /= n;
    row.mean_peak_percent /= n;
    row.mean_extra_blocks /= n;
  }
  return row;
}

std::uint32_t axis_regs(const workloads::gen::StudyAxes& a) { return a.regs_per_thread; }
std::uint32_t axis_staging(const workloads::gen::StudyAxes& a) { return a.smem_per_block; }
std::uint32_t axis_memory(const workloads::gen::StudyAxes& a) { return a.mem_intensity; }
std::uint32_t axis_lanes(const workloads::gen::StudyAxes& a) { return a.lanes; }

/// Mean speedup of the cells matching both surface coordinates.
double surface_cell(const std::vector<CellSeries>& cells, bool row_is_staging,
                    std::uint32_t row_value, std::uint32_t memory) {
  double sum = 0;
  std::size_t n = 0;
  for (const CellSeries& c : cells) {
    const std::uint32_t rv = row_is_staging ? c.axes.smem_per_block : c.axes.regs_per_thread;
    if (rv != row_value || c.axes.mem_intensity != memory) continue;
    sum += c.speedup;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

FamilyAggregation aggregate_family(const StudyPlan& plan, const runner::BenchView& view,
                                   Resource resource) {
  FamilyAggregation fam;
  fam.resource = resource;
  const StudyGrid& grid = plan.grid;

  for (const StudyCell& cell : plan.cells) {
    CellSeries series;
    series.generated = true;
    series.axes = cell.axes;
    if (resource == Resource::kScratchpad && cell.axes.smem_per_block == 0) continue;
    if (collect_series(view, grid, resource, cell.kernel, series)) {
      fam.cells.push_back(std::move(series));
    } else {
      ++fam.skipped;
    }
  }
  for (const KernelInfo& kernel : plan.corpus) {
    if (resource == Resource::kScratchpad && kernel.resources.smem_per_block == 0) continue;
    CellSeries series;
    if (collect_series(view, grid, resource, kernel, series)) {
      fam.corpus.push_back(std::move(series));
    } else {
      ++fam.skipped;
    }
  }

  for (std::uint32_t v : grid.regs) {
    fam.by_regs.push_back(marginal(fam.cells, std::to_string(v), v, axis_regs));
  }
  for (std::uint32_t v : grid.staging) {
    MarginalRow row = marginal(fam.cells, std::to_string(v) + " B", v, axis_staging);
    if (row.cells > 0) fam.by_staging.push_back(std::move(row));
  }
  for (std::uint32_t v : grid.memory) {
    fam.by_memory.push_back(marginal(fam.cells, memory_level_name(v), v, axis_memory));
  }
  for (std::uint32_t v : grid.lanes) {
    fam.by_lanes.push_back(marginal(fam.cells, std::to_string(v), v, axis_lanes));
  }

  const bool row_is_staging = resource == Resource::kScratchpad;
  const std::vector<std::uint32_t>& row_values = row_is_staging ? grid.staging : grid.regs;
  for (std::uint32_t rv : row_values) {
    if (row_is_staging && rv == 0) continue;
    fam.surface_rows.push_back(row_is_staging ? std::to_string(rv) + " B" : std::to_string(rv));
    std::vector<double> row;
    for (std::uint32_t m : grid.memory) {
      row.push_back(surface_cell(fam.cells, row_is_staging, rv, m));
    }
    fam.surface.push_back(std::move(row));
  }
  for (std::uint32_t m : grid.memory) fam.surface_cols.push_back(memory_level_name(m));

  fam.peak_histogram.assign(grid.percents.size(), 0);
  for (const CellSeries& c : fam.cells) {
    for (std::size_t i = 0; i < grid.percents.size(); ++i) {
      if (c.peak_percent == grid.percents[i]) ++fam.peak_histogram[i];
    }
  }
  return fam;
}

}  // namespace

StudyAggregation aggregate(const StudyPlan& plan, const runner::BenchView& view) {
  StudyAggregation agg;
  agg.grid = plan.grid;
  agg.registers = aggregate_family(plan, view, Resource::kRegisters);
  agg.scratchpad = aggregate_family(plan, view, Resource::kScratchpad);
  return agg;
}

}  // namespace grs::study
