// Sharing-study report emitters: deterministic Markdown + CSV renderings of a
// StudyAggregation, written into docs/study/ and committed like any other
// artifact. Every emitter is a pure string function of the aggregation (no
// timestamps, fixed iteration order, fixed float formatting), so re-running
// the study reproduces the committed pages byte-identically — which is what
// the doc-consistency CI step checks.
#pragma once

#include <string>
#include <vector>

#include "study/aggregate.h"

namespace grs::study {

/// Full per-point grid of one family's generated cells as CSV.
[[nodiscard]] std::string family_csv(const FamilyAggregation& fam, const StudyGrid& grid);

/// One family's study page: peak histogram, per-axis marginals, the speedup
/// surface, and the top cells.
[[nodiscard]] std::string family_markdown(const FamilyAggregation& fam, const StudyGrid& grid);

/// Both families' corpus kernels (saved .gkd, including trace imports) as the
/// paper's Table V/VII shape: IPC per sharing percentage.
[[nodiscard]] std::string corpus_markdown(const StudyAggregation& agg);
[[nodiscard]] std::string corpus_csv(const StudyAggregation& agg);

/// Overview page: grid definition, headline results, trend checks against the
/// paper's Table V-VIII claims, and regeneration instructions.
[[nodiscard]] std::string index_markdown(const StudyAggregation& agg);

/// Write every report file into `dir` (created when missing). Returns the
/// file names written, in a fixed order; throws std::runtime_error when a
/// file cannot be written.
std::vector<std::string> write_reports(const StudyAggregation& agg, const std::string& dir);

}  // namespace grs::study
