#include "isa/mem_profile.h"

#include <algorithm>

namespace grs {

namespace {

/// Cache-line footprints live inside one 64GB region window (coalescer.cc):
/// 2^29 lines of 128B. Larger footprints would alias neighbouring regions.
constexpr std::uint64_t kMaxFootprintLines = 1ull << 29;

void canonicalize_hist(std::vector<ProfileBucket>& h) {
  std::sort(h.begin(), h.end(), [](const ProfileBucket& a, const ProfileBucket& b) {
    return a.value < b.value;
  });
  std::vector<ProfileBucket> out;
  for (const ProfileBucket& b : h) {
    if (b.weight == 0) continue;
    if (!out.empty() && out.back().value == b.value) {
      out.back().weight += b.weight;
    } else {
      out.push_back(b);
    }
  }
  h = std::move(out);
}

std::string check_hist(const std::vector<ProfileBucket>& h, const char* name) {
  if (h.empty()) return std::string(name) + " histogram is empty";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i].weight == 0) return std::string(name) + " histogram has a zero weight";
    if (i > 0 && h[i - 1].value >= h[i].value) {
      return std::string(name) + " histogram is not sorted by unique value";
    }
  }
  std::uint64_t total = 0;
  for (const ProfileBucket& b : h) {
    if (b.weight > UINT64_MAX - total) return std::string(name) + " weights overflow";
    total += b.weight;
  }
  return "";
}

std::uint64_t total_weight(const std::vector<ProfileBucket>& h) {
  std::uint64_t total = 0;
  for (const ProfileBucket& b : h) total += b.weight;
  return total;
}

std::int64_t sample(const std::vector<ProfileBucket>& h, std::uint64_t hash,
                    std::int64_t fallback) {
  const std::uint64_t total = total_weight(h);
  if (total == 0) return fallback;
  std::uint64_t r = hash % total;
  for (const ProfileBucket& b : h) {
    if (r < b.weight) return b.value;
    r -= b.weight;
  }
  return h.back().value;
}

}  // namespace

void MemProfile::canonicalize() {
  canonicalize_hist(coalesce);
  canonicalize_hist(stride);
  canonicalize_hist(reuse);
}

std::string MemProfile::check() const {
  if (std::string e = check_hist(coalesce, "coalesce"); !e.empty()) return e;
  if (std::string e = check_hist(stride, "stride"); !e.empty()) return e;
  if (std::string e = check_hist(reuse, "reuse"); !e.empty()) return e;
  for (const ProfileBucket& b : coalesce) {
    if (b.value < 1 || b.value > 32) {
      return "coalesce degree " + std::to_string(b.value) + " outside [1, 32]";
    }
  }
  for (const ProfileBucket& b : reuse) {
    if (b.value != kColdReuse && b.value < 1) {
      return "reuse distance " + std::to_string(b.value) + " is neither cold nor >= 1";
    }
  }
  if (footprint_lines < 1 || footprint_lines > kMaxFootprintLines) {
    return "footprint must be in [1, " + std::to_string(kMaxFootprintLines) + "] lines";
  }
  return "";
}

std::uint32_t MemProfile::sample_coalesce(std::uint64_t h) const {
  const std::int64_t v = sample(coalesce, h, 1);
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(v, 1, 32));
}

std::int64_t MemProfile::sample_stride(std::uint64_t h) const {
  return sample(stride, h, 1);
}

std::int64_t MemProfile::sample_reuse(std::uint64_t h) const {
  return sample(reuse, h, kColdReuse);
}

std::int64_t MemProfile::dominant_stride() const {
  std::int64_t best = 1;
  std::uint64_t best_w = 0;
  for (const ProfileBucket& b : stride) {
    if (b.weight > best_w) {
      best = b.value;
      best_w = b.weight;
    }
  }
  return best;
}

bool operator==(const MemProfile& a, const MemProfile& b) {
  auto eq = [](const std::vector<ProfileBucket>& x, const std::vector<ProfileBucket>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].value != y[i].value || x[i].weight != y[i].weight) return false;
    }
    return true;
  };
  return eq(a.coalesce, b.coalesce) && eq(a.stride, b.stride) && eq(a.reuse, b.reuse) &&
         a.footprint_lines == b.footprint_lines;
}

}  // namespace grs
