// Unrolling & reordering of register declarations (paper §IV-B, Fig. 7).
//
// In PTXPlus, vector register declarations (`.reg .u32 $r<27>`) assign
// register numbers in declaration order, which is unrelated to first-use
// order. Under register sharing, a *shared* register is one whose number
// exceeds the per-warp unshared threshold Rw*t, so a non-owner warp whose
// very first instruction touches a high-numbered register stalls immediately.
// The paper's compile-time fix unrolls the declarations and reorders them by
// first use, so the earliest-used registers receive the lowest numbers and
// non-owner warps execute as far as possible before their first shared
// access.
//
// Our IR equivalent: renumber every register by order of first appearance in
// dynamic program order. This is a pure permutation — program semantics,
// instruction mix and memory behaviour are unchanged (tested).
#pragma once

#include <vector>

#include "isa/program.h"

namespace grs {

/// Returns the first-use permutation: result[old_reg] = new_reg. Registers
/// never referenced keep their relative order after all referenced ones.
[[nodiscard]] std::vector<RegNum> first_use_permutation(const Program& p);

/// Apply the unroll/reorder pass: renumber registers by first use.
[[nodiscard]] Program reorder_registers_by_first_use(const Program& p);

}  // namespace grs
