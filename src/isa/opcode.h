// Opcode classes of the synthetic PTX-like kernel IR.
//
// The simulator is a performance model: instructions carry no data semantics,
// only the operand *numbers* (register ids, scratchpad offsets, memory access
// patterns) that drive timing and the sharing runtime's shared/unshared
// classification (paper Figures 3 and 4).
#pragma once

#include <cstdint>

namespace grs {

enum class Op : std::uint8_t {
  kAlu,       ///< integer/fp pipeline op (paper: SP units)
  kSfu,       ///< special-function op (transcendental etc.)
  kLdGlobal,  ///< global memory load
  kStGlobal,  ///< global memory store
  kLdShared,  ///< scratchpad load
  kStShared,  ///< scratchpad store
  kBarrier,   ///< __syncthreads()
  kExit       ///< thread-block program end
};

[[nodiscard]] constexpr bool is_global_mem(Op op) {
  return op == Op::kLdGlobal || op == Op::kStGlobal;
}

[[nodiscard]] constexpr bool is_shared_mem(Op op) {
  return op == Op::kLdShared || op == Op::kStShared;
}

[[nodiscard]] constexpr bool is_mem(Op op) { return is_global_mem(op) || is_shared_mem(op); }

[[nodiscard]] constexpr bool is_load(Op op) {
  return op == Op::kLdGlobal || op == Op::kLdShared;
}

[[nodiscard]] constexpr const char* to_string(Op op) {
  switch (op) {
    case Op::kAlu: return "alu";
    case Op::kSfu: return "sfu";
    case Op::kLdGlobal: return "ld.global";
    case Op::kStGlobal: return "st.global";
    case Op::kLdShared: return "ld.shared";
    case Op::kStShared: return "st.shared";
    case Op::kBarrier: return "bar.sync";
    case Op::kExit: return "exit";
  }
  return "?";
}

/// How a warp's 32 lanes spread a global access over cache lines.
/// The coalescer turns one warp access into this many 128B transactions.
enum class MemPattern : std::uint8_t {
  kCoalesced,  ///< 1 transaction: unit-stride within the warp
  kStrided2,   ///< 2 transactions: 2-line footprint (e.g. misaligned rows)
  kStrided4,   ///< 4 transactions
  kScatter8,   ///< 8 transactions: irregular, partially clustered
  kScatter32   ///< fully divergent gather: one line per lane
};

[[nodiscard]] constexpr std::uint32_t transactions_per_access(MemPattern p) {
  switch (p) {
    case MemPattern::kCoalesced: return 1;
    case MemPattern::kStrided2: return 2;
    case MemPattern::kStrided4: return 4;
    case MemPattern::kScatter8: return 8;
    case MemPattern::kScatter32: return 32;
  }
  return 1;
}

[[nodiscard]] constexpr const char* to_string(MemPattern p) {
  switch (p) {
    case MemPattern::kCoalesced: return "coalesced";
    case MemPattern::kStrided2: return "strided2";
    case MemPattern::kStrided4: return "strided4";
    case MemPattern::kScatter8: return "scatter8";
    case MemPattern::kScatter32: return "scatter32";
  }
  return "?";
}

/// How addresses relate across loop iterations / warps: determines reuse.
enum class Locality : std::uint8_t {
  kStreaming,  ///< new lines every iteration (no temporal reuse)
  kWarpLocal,  ///< per-warp sliding window (reuse if the warp stays scheduled:
               ///< this is the pattern on which GTO-like schedulers beat LRR)
  kBlockLocal, ///< working set shared by warps of one block (L1 reuse)
  kGridShared, ///< read-only data shared by all blocks (L1/L2 reuse)
  kRandom      ///< hash-distributed over a large region (mostly misses)
};

[[nodiscard]] constexpr const char* to_string(Locality l) {
  switch (l) {
    case Locality::kStreaming: return "streaming";
    case Locality::kWarpLocal: return "warp-local";
    case Locality::kBlockLocal: return "block-local";
    case Locality::kGridShared: return "grid-shared";
    case Locality::kRandom: return "random";
  }
  return "?";
}

}  // namespace grs
