#include "isa/builder.h"

#include <utility>

#include "common/check.h"

namespace grs {

ProgramBuilder::ProgramBuilder(RegNum num_regs) : num_regs_(num_regs) {
  GRS_CHECK(num_regs >= 1);
}

void ProgramBuilder::emit(Instruction i) {
  GRS_CHECK_MSG(!built_, "builder already consumed");
  current_.push_back(i);
}

void ProgramBuilder::close_segment(std::uint32_t iterations) {
  if (current_.empty()) return;
  done_.push_back(Segment{std::move(current_), iterations});
  current_.clear();
}

ProgramBuilder& ProgramBuilder::alu(RegNum dst, RegNum src0, RegNum src1) {
  Instruction i;
  i.op = Op::kAlu;
  i.dst = dst;
  i.src0 = src0;
  i.src1 = src1;
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::sfu(RegNum dst, RegNum src0, RegNum src1) {
  Instruction i;
  i.op = Op::kSfu;
  i.dst = dst;
  i.src0 = src0;
  i.src1 = src1;
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::ld_global(RegNum dst, MemPattern pattern, Locality locality,
                                          std::uint8_t region, std::uint32_t footprint_lines,
                                          RegNum addr_reg,
                                          std::shared_ptr<const MemProfile> profile) {
  Instruction i;
  i.op = Op::kLdGlobal;
  i.dst = dst;
  i.src0 = addr_reg;
  i.pattern = pattern;
  i.locality = locality;
  i.region = region;
  i.footprint_lines = footprint_lines;
  i.profile = std::move(profile);
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::st_global(RegNum data_reg, MemPattern pattern,
                                          Locality locality, std::uint8_t region,
                                          std::uint32_t footprint_lines,
                                          std::shared_ptr<const MemProfile> profile) {
  Instruction i;
  i.op = Op::kStGlobal;
  i.src0 = data_reg;
  i.pattern = pattern;
  i.locality = locality;
  i.region = region;
  i.footprint_lines = footprint_lines;
  i.profile = std::move(profile);
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::ld_shared(RegNum dst, std::uint32_t smem_offset) {
  Instruction i;
  i.op = Op::kLdShared;
  i.dst = dst;
  i.smem_offset = smem_offset;
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::st_shared(RegNum data_reg, std::uint32_t smem_offset) {
  Instruction i;
  i.op = Op::kStShared;
  i.src0 = data_reg;
  i.smem_offset = smem_offset;
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::barrier() {
  Instruction i;
  i.op = Op::kBarrier;
  emit(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::loop(std::uint32_t iterations,
                                     const std::function<void(ProgramBuilder&)>& body) {
  GRS_CHECK_MSG(!in_loop_, "nested loops are not supported");
  GRS_CHECK(iterations >= 1);
  close_segment(1);  // flush preceding straight-line code
  in_loop_ = true;
  body(*this);
  in_loop_ = false;
  GRS_CHECK_MSG(!current_.empty(), "empty loop body");
  close_segment(iterations);
  return *this;
}

ProgramBuilder& ProgramBuilder::alu_chain(std::uint32_t n, std::initializer_list<RegNum> ring) {
  GRS_CHECK(ring.size() >= 1);
  std::vector<RegNum> regs(ring);
  for (std::uint32_t k = 0; k < n; ++k) {
    RegNum dst = regs[k % regs.size()];
    RegNum src = regs[(k + regs.size() - 1) % regs.size()];
    alu(dst, src, dst);
  }
  return *this;
}

Program ProgramBuilder::build() {
  GRS_CHECK_MSG(!built_, "builder already consumed");
  GRS_CHECK_MSG(!in_loop_, "build() inside loop body");
  Instruction e;
  e.op = Op::kExit;
  emit(e);
  close_segment(1);
  built_ = true;
  Program p(std::move(done_), num_regs_);
  p.validate();
  return p;
}

}  // namespace grs
