// Text names of the IR enums: parsing counterparts of the to_string()
// overloads in isa/opcode.h. The .gkd loader (workloads/format) resolves
// opcode / memory-pattern / locality tokens through these; error paths use
// the *_names() lists so messages can show every valid spelling.
#pragma once

#include <optional>
#include <string>

#include "isa/opcode.h"

namespace grs {

[[nodiscard]] std::optional<Op> op_from_string(const std::string& s);
[[nodiscard]] std::optional<MemPattern> mem_pattern_from_string(const std::string& s);
[[nodiscard]] std::optional<Locality> locality_from_string(const std::string& s);

/// Space-separated list of every valid text name, for error messages.
[[nodiscard]] std::string all_op_names();
[[nodiscard]] std::string all_mem_pattern_names();
[[nodiscard]] std::string all_locality_names();

}  // namespace grs
