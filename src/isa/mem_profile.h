// Measured memory behaviour of one global-memory instruction.
//
// A MemProfile replaces the synthetic MemPattern/Locality labels with
// per-instruction histograms reduced from a real address trace
// (workloads/trace): how many 128B lines one warp access touches
// (coalescing degree), how the warp's access base moves between consecutive
// dynamic accesses (stride, in lines), how often a line is revisited and at
// what distance (reuse), and how many distinct lines the instruction touches
// in total (footprint). The coalescer (memory/coalescer.h) samples addresses
// from these histograms with counter-based hashing of (warp, access index),
// so profile-backed address streams are bit-reproducible and identical in
// both execution modes — time never enters the draws.
//
// Histograms are canonical when buckets are sorted by value, values are
// unique, and every weight is positive; canonicalize() establishes this and
// check() verifies it, which is what makes the .gkd `profile` section
// round-trip byte-identically through the serializer/loader.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grs {

/// One histogram bucket: a sampled value with an integer weight (a count).
struct ProfileBucket {
  std::int64_t value = 0;
  std::uint64_t weight = 0;
};

struct MemProfile {
  /// Reuse-bucket value meaning "never seen before" (compulsory miss mass).
  static constexpr std::int64_t kColdReuse = -1;

  /// Distinct cache lines one warp access touches; values in [1, 32].
  std::vector<ProfileBucket> coalesce;

  /// Line delta between consecutive dynamic accesses of the same warp
  /// (signed; 0 = the warp re-reads the same place).
  std::vector<ProfileBucket> stride;

  /// Reuse distance in warp accesses since the line was last touched;
  /// kColdReuse marks lines never touched before.
  std::vector<ProfileBucket> reuse;

  /// Total distinct lines the instruction touches (bounds address synthesis).
  std::uint64_t footprint_lines = 1;

  /// Sort buckets by value and merge duplicates; drop zero weights.
  void canonicalize();

  /// Empty string when the profile is structurally valid (canonical order,
  /// positive weights, value ranges); otherwise a human-readable reason.
  [[nodiscard]] std::string check() const;

  // --- deterministic sampling (h = any well-mixed 64-bit hash) -------------
  [[nodiscard]] std::uint32_t sample_coalesce(std::uint64_t h) const;
  [[nodiscard]] std::int64_t sample_stride(std::uint64_t h) const;
  /// kColdReuse or a positive distance in accesses.
  [[nodiscard]] std::int64_t sample_reuse(std::uint64_t h) const;

  /// Highest-weight stride bucket (ties: smaller value). The coalescer walks
  /// the fresh-line position with this and treats other strides as transient
  /// excursions, keeping addresses a pure function of the access index.
  [[nodiscard]] std::int64_t dominant_stride() const;
};

[[nodiscard]] bool operator==(const MemProfile& a, const MemProfile& b);
[[nodiscard]] inline bool operator!=(const MemProfile& a, const MemProfile& b) {
  return !(a == b);
}

}  // namespace grs
