#include "isa/text.h"

namespace grs {

namespace {

constexpr Op kAllOps[] = {Op::kAlu,      Op::kSfu,      Op::kLdGlobal, Op::kStGlobal,
                          Op::kLdShared, Op::kStShared, Op::kBarrier,  Op::kExit};

constexpr MemPattern kAllPatterns[] = {MemPattern::kCoalesced, MemPattern::kStrided2,
                                       MemPattern::kStrided4, MemPattern::kScatter8,
                                       MemPattern::kScatter32};

constexpr Locality kAllLocalities[] = {Locality::kStreaming, Locality::kWarpLocal,
                                       Locality::kBlockLocal, Locality::kGridShared,
                                       Locality::kRandom};

template <typename E, std::size_t N>
std::optional<E> from_string(const E (&all)[N], const std::string& s) {
  for (E e : all) {
    if (s == to_string(e)) return e;
  }
  return std::nullopt;
}

template <typename E, std::size_t N>
std::string join_names(const E (&all)[N]) {
  std::string out;
  for (E e : all) {
    if (!out.empty()) out += ' ';
    out += to_string(e);
  }
  return out;
}

}  // namespace

std::optional<Op> op_from_string(const std::string& s) { return from_string(kAllOps, s); }

std::optional<MemPattern> mem_pattern_from_string(const std::string& s) {
  return from_string(kAllPatterns, s);
}

std::optional<Locality> locality_from_string(const std::string& s) {
  return from_string(kAllLocalities, s);
}

std::string all_op_names() { return join_names(kAllOps); }

std::string all_mem_pattern_names() { return join_names(kAllPatterns); }

std::string all_locality_names() { return join_names(kAllLocalities); }

}  // namespace grs
