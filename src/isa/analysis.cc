#include "isa/analysis.h"

#include <cstdio>

namespace grs {

MixSummary summarize_mix(const Program& p) {
  MixSummary m;
  for (const auto& s : p.segments()) {
    for (const auto& i : s.instrs) {
      const std::uint64_t n = s.iterations;
      switch (i.op) {
        case Op::kAlu: m.alu += n; break;
        case Op::kSfu: m.sfu += n; break;
        case Op::kLdGlobal:
        case Op::kStGlobal: m.global_mem += n; break;
        case Op::kLdShared:
        case Op::kStShared: m.shared_mem += n; break;
        case Op::kBarrier: m.barriers += n; break;
        case Op::kExit: break;
      }
      m.total += n;
    }
  }
  return m;
}

std::string MixSummary::to_text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "total=%llu alu=%llu sfu=%llu gmem=%llu smem=%llu bar=%llu (mem %.1f%%)",
                static_cast<unsigned long long>(total), static_cast<unsigned long long>(alu),
                static_cast<unsigned long long>(sfu),
                static_cast<unsigned long long>(global_mem),
                static_cast<unsigned long long>(shared_mem),
                static_cast<unsigned long long>(barriers), mem_fraction() * 100.0);
  return buf;
}

std::uint64_t instructions_before_shared_reg(const Program& p, RegNum unshared_regs) {
  ProgramCursor c(p);
  while (const Instruction* i = c.peek(p)) {
    const RegNum m = i->max_reg();
    if (m != kNoReg && m >= unshared_regs) return c.consumed();
    c.advance(p);
  }
  return p.dynamic_length();
}

std::uint64_t instructions_before_shared_smem(const Program& p, std::uint32_t unshared_bytes) {
  ProgramCursor c(p);
  while (const Instruction* i = c.peek(p)) {
    if (is_shared_mem(i->op) && i->smem_offset >= unshared_bytes) return c.consumed();
    c.advance(p);
  }
  return p.dynamic_length();
}

}  // namespace grs
