#include "isa/program.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace grs {

Program::Program(std::vector<Segment> segments, RegNum num_regs)
    : segments_(std::move(segments)), num_regs_(num_regs) {}

std::uint64_t Program::dynamic_length() const {
  std::uint64_t n = 0;
  for (const auto& s : segments_)
    n += static_cast<std::uint64_t>(s.instrs.size()) * s.iterations;
  return n;
}

std::size_t Program::static_length() const {
  std::size_t n = 0;
  for (const auto& s : segments_) n += s.instrs.size();
  return n;
}

std::uint32_t Program::max_smem_offset() const {
  std::uint32_t m = 0;
  for (const auto& s : segments_)
    for (const auto& i : s.instrs)
      if (is_shared_mem(i.op)) m = std::max(m, i.smem_offset);
  return m;
}

bool Program::has_barrier() const {
  for (const auto& s : segments_)
    for (const auto& i : s.instrs)
      if (i.op == Op::kBarrier) return true;
  return false;
}

void Program::validate() const {
  GRS_CHECK_MSG(!segments_.empty(), "program has no segments");
  std::size_t n_exit = 0;
  for (const auto& s : segments_) {
    GRS_CHECK_MSG(!s.instrs.empty(), "empty segment");
    GRS_CHECK_MSG(s.iterations >= 1, "segment with zero iterations");
    for (const auto& i : s.instrs) {
      for (RegNum r : {i.dst, i.src0, i.src1}) {
        if (r != kNoReg) GRS_CHECK_MSG(r < num_regs_, "register number out of range");
      }
      if (i.profile) {
        GRS_CHECK_MSG(is_global_mem(i.op), "memory profile on a non-global-memory op");
        GRS_CHECK_MSG(i.profile->check().empty(), "invalid memory profile");
      }
      if (i.op == Op::kExit) ++n_exit;
    }
  }
  GRS_CHECK_MSG(n_exit == 1, "program must contain exactly one exit");
  const Segment& last = segments_.back();
  GRS_CHECK_MSG(last.instrs.back().op == Op::kExit, "exit must be the last instruction");
  GRS_CHECK_MSG(last.iterations == 1, "exit segment must run exactly once");
}

std::string Program::to_text() const {
  std::string out;
  for (std::size_t si = 0; si < segments_.size(); ++si) {
    const auto& s = segments_[si];
    out += "segment " + std::to_string(si) + " x" + std::to_string(s.iterations) + ":\n";
    for (const auto& i : s.instrs) out += "  " + i.to_text() + "\n";
  }
  return out;
}

ProgramCursor::ProgramCursor(const Program& p) { skip_empty(p); }

void ProgramCursor::skip_empty(const Program& p) {
  while (seg_ < p.segments().size() && p.segments()[seg_].instrs.empty()) {
    ++seg_;
    idx_ = 0;
    iter_ = 0;
  }
}

const Instruction* ProgramCursor::peek(const Program& p) const {
  if (seg_ >= p.segments().size()) return nullptr;
  return &p.segments()[seg_].instrs[idx_];
}

void ProgramCursor::advance(const Program& p) {
  GRS_CHECK(seg_ < p.segments().size());
  const Segment& s = p.segments()[seg_];
  ++consumed_;
  if (++idx_ < s.instrs.size()) return;
  idx_ = 0;
  if (++iter_ < s.iterations) return;
  iter_ = 0;
  ++seg_;
  skip_empty(p);
}

}  // namespace grs
