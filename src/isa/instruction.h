// One instruction of the synthetic kernel IR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "isa/mem_profile.h"
#include "isa/opcode.h"

namespace grs {

struct Instruction {
  Op op = Op::kAlu;

  /// Destination / source architectural register numbers (per thread).
  /// kNoReg marks an unused slot. The sharing runtime classifies an access
  /// as *shared* when any operand register number exceeds the per-warp
  /// unshared threshold (paper Fig. 3 step (c)).
  RegNum dst = kNoReg;
  RegNum src0 = kNoReg;
  RegNum src1 = kNoReg;

  // --- global memory operands (valid when is_global_mem(op)) -------------
  MemPattern pattern = MemPattern::kCoalesced;
  Locality locality = Locality::kStreaming;
  /// Distinguishes independent data structures (different address regions).
  std::uint8_t region = 0;
  /// Footprint of the region in cache lines (locality-dependent meaning).
  std::uint32_t footprint_lines = 1 << 20;

  /// Measured per-instruction behaviour histograms (trace import or the
  /// generator). When set, the coalescer samples transaction count and line
  /// addresses from these instead of synthesizing from pattern/locality; the
  /// enum labels above stay as the fallback description. Shared: the same
  /// immutable profile is referenced by every copy of the instruction.
  std::shared_ptr<const MemProfile> profile;

  // --- scratchpad operand (valid when is_shared_mem(op)) -----------------
  /// Byte offset into the block's scratchpad allocation. The sharing runtime
  /// classifies offset > Rtb*t as a *shared* location (paper Fig. 4 step (c)).
  std::uint32_t smem_offset = 0;

  [[nodiscard]] bool reads(RegNum r) const { return src0 == r || src1 == r; }
  [[nodiscard]] bool writes(RegNum r) const { return dst == r; }

  /// Highest register number touched, or kNoReg if none.
  [[nodiscard]] RegNum max_reg() const;

  /// Worst-case line transactions one warp access can produce: the top
  /// coalesce bucket when a profile is attached, the pattern's fixed count
  /// otherwise. Structural pre-checks (LSU/MSHR) must use this bound — a
  /// histogram draw may exceed what the fallback pattern label suggests.
  [[nodiscard]] std::uint32_t max_transactions() const;

  [[nodiscard]] std::string to_text() const;
};

}  // namespace grs
