// Static analyses over kernel programs used by tests and benches.
#pragma once

#include <cstdint>
#include <string>

#include "isa/program.h"

namespace grs {

/// Instruction-mix summary (dynamic counts for one warp execution).
struct MixSummary {
  std::uint64_t alu = 0;
  std::uint64_t sfu = 0;
  std::uint64_t global_mem = 0;
  std::uint64_t shared_mem = 0;
  std::uint64_t barriers = 0;
  std::uint64_t total = 0;

  [[nodiscard]] double mem_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(global_mem) / static_cast<double>(total);
  }
  [[nodiscard]] std::string to_text() const;
};

[[nodiscard]] MixSummary summarize_mix(const Program& p);

/// Number of dynamic instructions a warp executes before its first access to
/// a register with number > unshared_regs (i.e. a *shared* register under
/// register sharing with Rw*t = unshared_regs). Returns the program's full
/// dynamic length if no such access exists. This is the quantity the
/// unroll/reorder optimization maximizes (paper §IV-B).
[[nodiscard]] std::uint64_t instructions_before_shared_reg(const Program& p,
                                                           RegNum unshared_regs);

/// Same for scratchpad: dynamic instructions before the first access to a
/// scratchpad offset > unshared_bytes (paper Fig. 4 step (c)); full length if
/// none (e.g. lavaMD's accessed footprint stays in the private region).
[[nodiscard]] std::uint64_t instructions_before_shared_smem(const Program& p,
                                                            std::uint32_t unshared_bytes);

}  // namespace grs
