// Fluent construction of kernel programs.
//
// Workloads (src/workloads) use this DSL to express each benchmark's
// prologue / loop / epilogue instruction mix. The builder also supports the
// "declaration-order" register numbering that PTXPlus exhibits (paper §IV-B,
// Fig. 7a): registers are *declared* up front in an order unrelated to first
// use, so early instructions may touch high register numbers — which the
// unroll/reorder pass (isa/reorder.h) then fixes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "isa/program.h"

namespace grs {

class ProgramBuilder {
 public:
  /// `num_regs` — architectural registers per thread (Table II's
  /// "Registers per thread" for the kernel being modelled).
  explicit ProgramBuilder(RegNum num_regs);

  // --- straight-line emission (into the current segment) ---------------
  ProgramBuilder& alu(RegNum dst, RegNum src0 = kNoReg, RegNum src1 = kNoReg);
  ProgramBuilder& sfu(RegNum dst, RegNum src0 = kNoReg, RegNum src1 = kNoReg);
  ProgramBuilder& ld_global(RegNum dst, MemPattern pattern, Locality locality,
                            std::uint8_t region, std::uint32_t footprint_lines,
                            RegNum addr_reg = kNoReg,
                            std::shared_ptr<const MemProfile> profile = nullptr);
  ProgramBuilder& st_global(RegNum data_reg, MemPattern pattern, Locality locality,
                            std::uint8_t region, std::uint32_t footprint_lines,
                            std::shared_ptr<const MemProfile> profile = nullptr);
  ProgramBuilder& ld_shared(RegNum dst, std::uint32_t smem_offset);
  ProgramBuilder& st_shared(RegNum data_reg, std::uint32_t smem_offset);
  ProgramBuilder& barrier();

  /// Repeat `body` `iterations` times (a loop segment). Nested loops are not
  /// supported (the cursor is single-level); express them by multiplying
  /// iteration counts.
  ProgramBuilder& loop(std::uint32_t iterations,
                       const std::function<void(ProgramBuilder&)>& body);

  /// Convenience: emit `n` dependent ALU ops chaining dst -> src through the
  /// given register ring (models arithmetic intensity).
  ProgramBuilder& alu_chain(std::uint32_t n, std::initializer_list<RegNum> ring);

  /// Finish with an Exit and return the validated program.
  [[nodiscard]] Program build();

 private:
  void emit(Instruction i);
  void close_segment(std::uint32_t iterations);

  RegNum num_regs_;
  std::vector<Segment> done_;
  std::vector<Instruction> current_;
  bool in_loop_ = false;
  bool built_ = false;
};

}  // namespace grs
