#include "isa/reorder.h"

#include "common/check.h"

namespace grs {

std::vector<RegNum> first_use_permutation(const Program& p) {
  const RegNum n = p.num_regs();
  std::vector<RegNum> map(n, kNoReg);
  RegNum next = 0;
  auto visit = [&](RegNum r) {
    if (r == kNoReg) return;
    if (map[r] == kNoReg) map[r] = next++;
  };
  // Static program order equals dynamic first-use order for first encounters:
  // segments execute in order and iteration 1 of a loop covers its body.
  for (const auto& s : p.segments()) {
    for (const auto& i : s.instrs) {
      // Source operands are "used" before the destination is written.
      visit(i.src0);
      visit(i.src1);
      visit(i.dst);
    }
  }
  // Unused registers keep relative order after all used ones.
  for (RegNum r = 0; r < n; ++r)
    if (map[r] == kNoReg) map[r] = next++;
  GRS_CHECK(next == n);
  return map;
}

Program reorder_registers_by_first_use(const Program& p) {
  const std::vector<RegNum> map = first_use_permutation(p);
  std::vector<Segment> segs = p.segments();
  auto remap = [&map](RegNum& r) {
    if (r != kNoReg) r = map[r];
  };
  for (auto& s : segs) {
    for (auto& i : s.instrs) {
      remap(i.dst);
      remap(i.src0);
      remap(i.src1);
    }
  }
  Program out(std::move(segs), p.num_regs());
  out.validate();
  return out;
}

}  // namespace grs
