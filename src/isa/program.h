// Kernel program: a loop-structured sequence of IR instructions.
//
// A program is a list of *segments*; each segment is a straight-line
// instruction vector executed `iterations` times before control falls through
// to the next segment. This models the prologue / main-loop / epilogue shape
// of the paper's benchmark kernels without needing a branch unit (the paper's
// mechanisms are orthogonal to control flow, see DESIGN.md §7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace grs {

struct Segment {
  std::vector<Instruction> instrs;
  std::uint32_t iterations = 1;
};

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Segment> segments, RegNum num_regs);

  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] RegNum num_regs() const { return num_regs_; }

  /// Dynamic warp-instruction count for one full execution.
  [[nodiscard]] std::uint64_t dynamic_length() const;

  /// Static instruction count (sum of segment sizes).
  [[nodiscard]] std::size_t static_length() const;

  /// Largest scratchpad offset referenced (bytes), or 0 if none.
  [[nodiscard]] std::uint32_t max_smem_offset() const;

  /// True if any instruction is a barrier.
  [[nodiscard]] bool has_barrier() const;

  /// Abort if malformed (register numbers out of range, empty segments,
  /// missing trailing Exit, Exit not last, zero iteration counts).
  void validate() const;

  /// Pretty-printed listing (tests, debugging).
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<Segment> segments_;
  RegNum num_regs_ = 0;
};

/// Iterates a Program one instruction at a time; the per-warp execution state.
/// Cheap to copy; stores no pointers into the program.
class ProgramCursor {
 public:
  ProgramCursor() = default;
  explicit ProgramCursor(const Program& p);

  /// nullptr when the program is exhausted.
  [[nodiscard]] const Instruction* peek(const Program& p) const;

  /// Advance past the instruction last returned by peek().
  void advance(const Program& p);

  [[nodiscard]] bool done(const Program& p) const { return seg_ >= p.segments().size(); }

  /// Number of dynamic instructions already consumed.
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

  // --- position of the instruction peek() returns ------------------------
  // Segments run exactly once each (in order), so `iteration()` is also the
  // number of times that instruction has already executed — the per-static-
  // instruction dynamic index that profile-backed address sampling keys on.
  [[nodiscard]] std::size_t segment_index() const { return seg_; }
  [[nodiscard]] std::uint32_t instr_index() const { return idx_; }
  [[nodiscard]] std::uint32_t iteration() const { return iter_; }

 private:
  void skip_empty(const Program& p);

  std::size_t seg_ = 0;
  std::uint32_t idx_ = 0;
  std::uint32_t iter_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace grs
