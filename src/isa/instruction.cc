#include "isa/instruction.h"

#include <algorithm>
#include <cstdio>

namespace grs {

RegNum Instruction::max_reg() const {
  RegNum m = kNoReg;
  auto consider = [&m](RegNum r) {
    if (r == kNoReg) return;
    if (m == kNoReg || r > m) m = r;
  };
  consider(dst);
  consider(src0);
  consider(src1);
  return m;
}

std::uint32_t Instruction::max_transactions() const {
  if (profile && !profile->coalesce.empty()) {
    // Canonical histograms are sorted by value; the last bucket is the max.
    const std::int64_t top = profile->coalesce.back().value;
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(top, 1, 32));
  }
  return transactions_per_access(pattern);
}

std::string Instruction::to_text() const {
  char buf[160];
  auto reg = [](RegNum r) -> std::string {
    return r == kNoReg ? std::string("-") : "$r" + std::to_string(r);
  };
  if (is_global_mem(op)) {
    std::snprintf(buf, sizeof(buf), "%-10s %s, %s [%s/%s region=%u]", to_string(op),
                  reg(dst).c_str(), reg(src0).c_str(), to_string(pattern),
                  to_string(locality), region);
  } else if (is_shared_mem(op)) {
    std::snprintf(buf, sizeof(buf), "%-10s %s, smem[%u]", to_string(op), reg(dst).c_str(),
                  smem_offset);
  } else {
    std::snprintf(buf, sizeof(buf), "%-10s %s, %s, %s", to_string(op), reg(dst).c_str(),
                  reg(src0).c_str(), reg(src1).c_str());
  }
  return buf;
}

}  // namespace grs
