// Content-addressed cache keys: the canonical fingerprint of one simulation.
//
// simulate() is pure and bit-deterministic (the repo's fuzz-verified core
// invariant), so one result is fully determined by (kernel, config,
// simulator schema). The key hashes exactly those three:
//
//   key = sha256( "grs-result-cache <schema_tag>\n"
//                 "config <GpuConfig::fingerprint()>\n"
//                 "kernel <sha256(gkd::serialize(kernel))>\n" )
//
// The kernel half rides on the canonical .gkd serialization (workloads/
// format), which already round-trips byte-identically; any instruction,
// resource, or grid change reaches the key through it. The config half is
// GpuConfig::canonical_kv() (every field, stable order, versioned). The
// schema tag folds in kSimSchemaVersion (simulator semantics) and
// kResultCodecVersion (payload layout), so a store can never serve entries
// written under different semantics — stale versions simply live under a
// different subdirectory until deleted.
#pragma once

#include <string>

#include "common/config.h"
#include "workloads/kernel_info.h"

namespace grs::cache {

/// Bump when simulate()'s observable statistics change for any (config,
/// kernel) — a new stat, a model fix, a semantic change. Cache entries
/// written under other versions are unreachable afterwards.
inline constexpr int kSimSchemaVersion = 1;

/// "v<sim>-r<codec>", e.g. "v1-r1": the store subdirectory for this schema.
[[nodiscard]] std::string schema_tag();

/// SHA-256 hex of the kernel's canonical .gkd serialization.
[[nodiscard]] std::string kernel_fingerprint(const KernelInfo& kernel);

/// The full 64-hex-digit content-addressed key for one simulation.
[[nodiscard]] std::string result_cache_key(const GpuConfig& cfg, const KernelInfo& kernel);

}  // namespace grs::cache
