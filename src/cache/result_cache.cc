#include "cache/result_cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cache/key.h"
#include "common/check.h"
#include "gpu/result_codec.h"

namespace grs::cache {

namespace fs = std::filesystem;

std::optional<CacheMode> parse_cache_mode(const std::string& s) {
  if (s == "off") return CacheMode::kOff;
  if (s == "read") return CacheMode::kRead;
  if (s == "readwrite") return CacheMode::kReadWrite;
  if (s == "verify") return CacheMode::kVerify;
  return std::nullopt;
}

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  hits += o.hits;
  misses += o.misses;
  corrupt += o.corrupt;
  stores += o.stores;
  verified += o.verified;
  verify_failures += o.verify_failures;
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  return *this;
}

std::string CacheStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu hits, %llu misses, %llu corrupt, %llu stored, %llu verified, "
                "%llu verify failures, %llu B read, %llu B written",
                static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(corrupt),
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(verified),
                static_cast<unsigned long long>(verify_failures),
                static_cast<unsigned long long>(bytes_read),
                static_cast<unsigned long long>(bytes_written));
  return buf;
}

ResultCache::ResultCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode) {
  GRS_CHECK_MSG(mode_ != CacheMode::kOff, "a ResultCache is never constructed in off mode");
  GRS_CHECK_MSG(!dir_.empty(), "result cache needs a directory");
}

std::string ResultCache::entry_path(const std::string& key) const {
  return dir_ + "/" + schema_tag() + "/" + key.substr(0, 2) + "/" + key + ".grsr";
}

bool ResultCache::lookup(const std::string& key, std::string* payload, SimResult* result) {
  const std::string path = entry_path(key);
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::ostringstream body;
  body << f.rdbuf();
  // A read error mid-stream leaves a short body; the strict decoder below
  // rejects it, so both failure shapes land in `corrupt`.
  const std::string bytes = body.str();
  SimResult decoded;
  if (!decode_result(bytes, decoded)) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes.size(), std::memory_order_relaxed);
  if (payload != nullptr) *payload = bytes;
  if (result != nullptr) *result = decoded;
  return true;
}

void ResultCache::store(const std::string& key, const SimResult& result) {
  const std::string payload = encode_result(result);
  const fs::path path = entry_path(key);

  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("result cache: cannot create " + path.parent_path().string() +
                             ": " + ec.message());
  }

  // Unique temp name in the final directory so rename() stays within one
  // filesystem (atomic on POSIX). pid + sequence uniquifies across the
  // processes and threads that may race on one key; whoever renames last
  // wins with an identical, content-addressed payload.
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    tmp_seq_.fetch_add(1, std::memory_order_relaxed)));
  const fs::path tmp = path.string() + suffix;
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("result cache: cannot write " + tmp.string());
    f << payload;
    f.flush();
    if (!f) {
      fs::remove(tmp, ec);
      throw std::runtime_error("result cache: short write to " + tmp.string());
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("result cache: cannot publish " + path.string() + ": " +
                             ec.message());
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(payload.size(), std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.verified = verified_.load(std::memory_order_relaxed);
  s.verify_failures = verify_failures_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace grs::cache
