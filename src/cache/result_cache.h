// Persistent on-disk, content-addressed store for SimResults.
//
// Layout (all under one root directory, safe to share between concurrent
// processes and threads):
//
//   <dir>/<schema_tag>/<key[0:2]>/<key>.grsr
//
// where <key> is result_cache_key(config, kernel) (cache/key.h) and the file
// body is exactly encode_result(result) (gpu/result_codec.h) — a versioned,
// self-describing text payload whose strict decoder treats any truncated,
// corrupted, or reordered entry as a miss, never an error. Writes go through
// a unique temp file in the final directory followed by rename(), so readers
// only ever observe absent or complete entries, and racing writers of the
// same key both land a full (identical, content-addressed) payload.
//
// Modes:
//   kOff        never touches the store (the differential fuzz oracle runs
//               here: a cached result would mask a cycle/event divergence)
//   kRead       lookups only; misses simulate but are not stored
//   kReadWrite  lookups + atomic stores on miss (the default for --cache)
//   kVerify     like kReadWrite, but every hit is re-simulated and the fresh
//               encoding byte-compared against the stored payload — the fuzz
//               bit-identity oracle recast as a cache-integrity check; any
//               diff is a hard failure
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/config.h"
#include "gpu/simulator.h"
#include "workloads/kernel_info.h"

namespace grs::cache {

enum class CacheMode : std::uint8_t { kOff, kRead, kReadWrite, kVerify };

[[nodiscard]] constexpr const char* to_string(CacheMode m) {
  switch (m) {
    case CacheMode::kOff: return "off";
    case CacheMode::kRead: return "read";
    case CacheMode::kReadWrite: return "readwrite";
    case CacheMode::kVerify: return "verify";
  }
  return "?";
}

/// The --cache-mode spellings; nullopt on anything else.
[[nodiscard]] std::optional<CacheMode> parse_cache_mode(const std::string& s);

/// Counters for one run; aggregated across benches by the CLIs.
struct CacheStats {
  std::uint64_t hits = 0;             ///< well-formed entries served
  std::uint64_t misses = 0;           ///< absent entries (simulated fresh)
  std::uint64_t corrupt = 0;          ///< present but undecodable (treated as miss)
  std::uint64_t stores = 0;           ///< entries written
  std::uint64_t verified = 0;         ///< verify-mode hits re-proven byte-identical
  std::uint64_t verify_failures = 0;  ///< verify-mode byte diffs (fatal)
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  CacheStats& operator+=(const CacheStats& o);

  /// One-line human summary, e.g. "420 hits, 36 misses, 36 stored, ...".
  [[nodiscard]] std::string summary() const;
};

class ResultCache {
 public:
  /// Opens (lazily creating) the store under `dir`. `mode` must not be kOff —
  /// callers skip constructing a cache entirely when caching is off.
  ResultCache(std::string dir, CacheMode mode);

  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Absolute/relative path of `key`'s entry inside the store.
  [[nodiscard]] std::string entry_path(const std::string& key) const;

  /// Look up `key`. True only for a present, fully well-formed entry:
  /// `payload` receives the exact stored bytes and `result` the decoded
  /// stats/occupancy (result.config is NOT restored — the key pins it, and
  /// the caller reassigns its own config). Absent entries count as misses;
  /// present-but-undecodable ones as corrupt (also a miss). Either out
  /// pointer may be null.
  [[nodiscard]] bool lookup(const std::string& key, std::string* payload, SimResult* result);

  /// Atomically store encode_result(result) under `key` (tmp + rename; safe
  /// under concurrent writers). I/O failures throw std::runtime_error.
  void store(const std::string& key, const SimResult& result);

  /// Count one verify-mode outcome (the engine drives verification so it can
  /// also own the re-simulation).
  void note_verified() { verified_.fetch_add(1, std::memory_order_relaxed); }
  void note_verify_failure() { verify_failures_.fetch_add(1, std::memory_order_relaxed); }

  /// Snapshot of the counters so far.
  [[nodiscard]] CacheStats stats() const;

 private:
  std::string dir_;
  CacheMode mode_;
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, corrupt_{0}, stores_{0};
  std::atomic<std::uint64_t> verified_{0}, verify_failures_{0};
  std::atomic<std::uint64_t> bytes_read_{0}, bytes_written_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};  ///< uniquifies temp file names
};

}  // namespace grs::cache
