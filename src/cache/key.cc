#include "cache/key.h"

#include "common/hash.h"
#include "gpu/result_codec.h"
#include "workloads/format/gkd.h"

namespace grs::cache {

std::string schema_tag() {
  return "v" + std::to_string(kSimSchemaVersion) + "-r" + std::to_string(kResultCodecVersion);
}

std::string kernel_fingerprint(const KernelInfo& kernel) {
  return sha256_hex(workloads::gkd::serialize(kernel));
}

std::string result_cache_key(const GpuConfig& cfg, const KernelInfo& kernel) {
  std::string material;
  material.reserve(256);
  material += "grs-result-cache ";
  material += schema_tag();
  material += "\nconfig ";
  material += cfg.fingerprint();
  material += "\nkernel ";
  material += kernel_fingerprint(kernel);
  material += '\n';
  return sha256_hex(material);
}

}  // namespace grs::cache
