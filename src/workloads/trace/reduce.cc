#include "workloads/trace/reduce.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace grs::workloads::trace {

namespace {

/// Accumulates value -> weight; ordered so reduction output is deterministic.
using Hist = std::map<std::int64_t, std::uint64_t>;

/// Round a reuse distance up to a power of two: 1,2,4,8,... keeps the
/// histogram small without losing the scheduler-relevant magnitude.
std::int64_t reuse_bucket(std::uint64_t distance) {
  std::uint64_t b = 1;
  while (b < distance && b < (1ull << 62)) b <<= 1;
  return static_cast<std::int64_t>(b);
}

/// Keep the `max_buckets` heaviest buckets; fold dropped weight into the
/// nearest surviving value so the total mass (and sampling totals) survive.
std::vector<ProfileBucket> cap_buckets(const Hist& h, std::uint32_t max_buckets) {
  std::vector<ProfileBucket> all;
  all.reserve(h.size());
  for (const auto& [value, weight] : h) all.push_back({value, weight});
  if (all.size() <= max_buckets || max_buckets == 0) return all;

  std::vector<ProfileBucket> by_weight = all;
  std::stable_sort(by_weight.begin(), by_weight.end(),
                   [](const ProfileBucket& a, const ProfileBucket& b) {
                     if (a.weight != b.weight) return a.weight > b.weight;
                     return std::llabs(a.value) < std::llabs(b.value);
                   });
  by_weight.resize(max_buckets);
  std::sort(by_weight.begin(), by_weight.end(),
            [](const ProfileBucket& a, const ProfileBucket& b) { return a.value < b.value; });

  auto nearest = [&](std::int64_t v) -> ProfileBucket& {
    std::size_t best = 0;
    std::uint64_t best_d = UINT64_MAX;
    for (std::size_t i = 0; i < by_weight.size(); ++i) {
      const std::int64_t d = by_weight[i].value - v;
      const std::uint64_t ad =
          d < 0 ? static_cast<std::uint64_t>(-d) : static_cast<std::uint64_t>(d);
      if (ad < best_d) {
        best_d = ad;
        best = i;
      }
    }
    return by_weight[best];
  };
  for (const ProfileBucket& b : all) {
    const bool kept =
        std::any_of(by_weight.begin(), by_weight.end(),
                    [&](const ProfileBucket& k) { return k.value == b.value; });
    if (!kept) nearest(b.value).weight += b.weight;
  }
  return by_weight;
}

/// Per-pc running state while walking the trace.
struct PcState {
  bool is_store = false;
  std::uint64_t store_instances = 0;
  std::uint64_t instances = 0;
  Hist coalesce;
  Hist stride;
  Hist reuse;
  std::uint64_t cold = 0;
  std::unordered_set<std::uint64_t> footprint;
  std::unordered_set<std::uint32_t> warps;
  /// Per warp: base line of the previous access (stride) and per-line last
  /// access index (reuse), counted in this warp's accesses of this pc.
  std::unordered_map<std::uint32_t, std::uint64_t> last_base;
  std::unordered_map<std::uint32_t, std::uint64_t> access_count;
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint64_t, std::uint64_t>> last_touch;
};

}  // namespace

std::vector<InstrStats> reduce_trace(const Trace& t, const ReduceOptions& opts) {
  const std::uint64_t line_bytes = opts.line_bytes == 0 ? 128 : opts.line_bytes;
  std::map<std::uint64_t, PcState> pcs;

  std::vector<std::uint64_t> lines;  // scratch: distinct lines of one access
  for (const WarpAccess& a : t.accesses) {
    PcState& s = pcs[a.pc];
    ++s.instances;
    if (a.is_store) ++s.store_instances;
    s.warps.insert(a.warp_id);

    lines.clear();
    for (const LaneAccess& lane : a.lanes) {
      const std::uint64_t first = lane.addr / line_bytes;
      const std::uint64_t last = (lane.addr + std::max(lane.size, 1u) - 1) / line_bytes;
      for (std::uint64_t ln = first; ln <= last; ++ln) lines.push_back(ln);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    if (lines.empty()) continue;
    ++s.coalesce[static_cast<std::int64_t>(std::min<std::size_t>(lines.size(), 32))];

    const std::uint64_t base = lines.front();
    if (const auto prev = s.last_base.find(a.warp_id); prev != s.last_base.end()) {
      ++s.stride[static_cast<std::int64_t>(base) - static_cast<std::int64_t>(prev->second)];
    }
    s.last_base[a.warp_id] = base;

    const std::uint64_t idx = ++s.access_count[a.warp_id];
    auto& touched = s.last_touch[a.warp_id];
    for (const std::uint64_t ln : lines) {
      if (const auto it = touched.find(ln); it != touched.end()) {
        ++s.reuse[reuse_bucket(idx - it->second)];
      } else {
        ++s.cold;
      }
      touched[ln] = idx;
      s.footprint.insert(ln);
    }
  }

  std::vector<InstrStats> out;
  out.reserve(pcs.size());
  for (auto& [pc, s] : pcs) {
    InstrStats r;
    r.pc = pc;
    r.is_store = s.store_instances * 2 > s.instances;
    r.instances = s.instances;
    r.warps = static_cast<std::uint32_t>(s.warps.size());
    r.profile.coalesce = cap_buckets(s.coalesce, opts.max_buckets);
    // A single-access pc has no observed stride; describe it as stationary.
    if (s.stride.empty()) s.stride[0] = 1;
    r.profile.stride = cap_buckets(s.stride, opts.max_buckets);
    if (s.cold > 0) r.profile.reuse.push_back({MemProfile::kColdReuse, s.cold});
    for (const ProfileBucket& b : cap_buckets(s.reuse, opts.max_buckets)) {
      r.profile.reuse.push_back(b);
    }
    // Clamp to the region-window limit MemProfile::check() enforces.
    r.profile.footprint_lines =
        std::clamp<std::uint64_t>(s.footprint.size(), 1, 1ull << 29);
    r.profile.canonicalize();
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace grs::workloads::trace
