// Trace import: build a simulatable KernelInfo from a real address trace.
//
// The pipeline is reader -> reducer -> kernel synthesis: every static memory
// instruction observed in the trace (every pc) becomes one profile-carrying
// ld.global/st.global in the synthesized program, in pc order, interleaved
// with ALU ops that thread register dependencies the way compiled kernels
// do. The loop trip count reproduces the mean dynamic access count per warp;
// grid and block shape derive from the observed thread ids unless
// overridden. The enum pattern/locality labels on each instruction are set
// to the nearest classical description of the measured histograms, so the
// kernel stays meaningful to tools that ignore profiles.
//
// The result always passes KernelInfo::validate() and fits the default
// GpuConfig (paper Table I), and serializing it to .gkd round-trips
// byte-identically — imported kernels are first-class workloads.
#pragma once

#include <string>

#include "workloads/kernel_info.h"
#include "workloads/trace/trace_reader.h"

namespace grs::workloads::trace {

struct ImportOptions {
  /// Kernel name; empty derives "trace-<file stem>" (or "trace" for text).
  std::string name;
  std::uint32_t threads_per_block = 256;
  std::uint32_t regs_per_thread = 16;
  std::uint32_t grid_blocks = 0;  ///< 0 = derive from the highest thread id
  std::uint32_t iterations = 0;   ///< 0 = derive from mean accesses per warp
  std::uint32_t line_bytes = 128;
  std::uint32_t warp_size = 32;
};

/// Import from already-parsed trace text. Throws TraceError on parse
/// failures and std::runtime_error on impossible options.
[[nodiscard]] KernelInfo import_trace(const std::string& text, const std::string& filename,
                                      const ImportOptions& opts = {});

/// Read, parse and import `path`.
[[nodiscard]] KernelInfo import_trace_file(const std::string& path,
                                           const ImportOptions& opts = {});

}  // namespace grs::workloads::trace
