// Histogram reduction: collapse a warp-access stream (trace/trace_reader.h)
// into one MemProfile per static memory instruction (per pc).
//
// For every pc, walking the trace in order:
//   - coalesce: distinct cache lines per warp access -> histogram
//   - stride:   delta (in lines) between a warp's consecutive access bases
//   - reuse:    per-warp distance, in accesses, since each line was last
//               touched; rounded up to a power of two; first touches are cold
//   - footprint: total distinct lines the pc touches across the whole trace
//
// The result is deterministic in the trace order and independent of any
// container iteration order, so the same trace always reduces to the same
// canonical histograms (and therefore the same .gkd bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/mem_profile.h"
#include "workloads/trace/trace_reader.h"

namespace grs::workloads::trace {

struct ReduceOptions {
  std::uint32_t line_bytes = 128;
  /// Histograms keep at most this many buckets; excess weight folds into the
  /// nearest surviving bucket (by value) so totals are preserved.
  std::uint32_t max_buckets = 8;
};

/// One static memory instruction's reduced behaviour.
struct InstrStats {
  std::uint64_t pc = 0;
  bool is_store = false;
  std::uint64_t instances = 0;  ///< dynamic warp accesses observed
  std::uint32_t warps = 0;      ///< distinct warps that executed the pc
  MemProfile profile;           ///< canonical; profile.check() is empty
};

/// Reduce `t` to per-pc profiles, sorted by pc ascending.
[[nodiscard]] std::vector<InstrStats> reduce_trace(const Trace& t,
                                                   const ReduceOptions& opts = {});

}  // namespace grs::workloads::trace
