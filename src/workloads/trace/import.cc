#include "workloads/trace/import.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common/config.h"
#include "common/io.h"
#include "workloads/trace/reduce.h"

namespace grs::workloads::trace {

namespace {

/// Nearest classical pattern label for a measured coalescing histogram: the
/// dominant transactions-per-access bucket, rounded up to the enum menu.
MemPattern pattern_label(const MemProfile& p) {
  std::int64_t dominant = 1;
  std::uint64_t best = 0;
  for (const ProfileBucket& b : p.coalesce) {
    if (b.weight > best) {
      best = b.weight;
      dominant = b.value;
    }
  }
  if (dominant <= 1) return MemPattern::kCoalesced;
  if (dominant <= 2) return MemPattern::kStrided2;
  if (dominant <= 4) return MemPattern::kStrided4;
  if (dominant <= 8) return MemPattern::kScatter8;
  return MemPattern::kScatter32;
}

/// Nearest classical locality label: mostly-cold accesses stream; a compact
/// footprint with real reuse behaves warp-locally; a scattered stride menu
/// over a large footprint is effectively random; the rest reads like a
/// shared table.
Locality locality_label(const MemProfile& p) {
  std::uint64_t total = 0, cold = 0;
  for (const ProfileBucket& b : p.reuse) {
    total += b.weight;
    if (b.value == MemProfile::kColdReuse) cold += b.weight;
  }
  if (total == 0 || cold * 4 >= total * 3) return Locality::kStreaming;
  if (p.footprint_lines <= 4096) return Locality::kWarpLocal;
  std::uint64_t stride_total = 0, dominant_w = 0;
  for (const ProfileBucket& b : p.stride) {
    stride_total += b.weight;
    dominant_w = std::max(dominant_w, b.weight);
  }
  if (stride_total > 0 && dominant_w * 5 < stride_total * 2) return Locality::kRandom;
  return Locality::kGridShared;
}

std::string file_stem(const std::string& path) {
  if (path.empty() || path[0] == '<') return "trace";  // "<trace>" pseudo-names
  const std::size_t slash = path.find_last_of("/\\");
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.erase(dot);
  return stem.empty() ? "trace" : stem;
}

}  // namespace

KernelInfo import_trace(const std::string& text, const std::string& filename,
                        const ImportOptions& opts) {
  const GpuConfig caps;  ///< imported kernels must fit the default SM
  if (opts.threads_per_block < 1 || opts.threads_per_block > caps.max_threads_per_sm) {
    throw std::runtime_error("threads_per_block must be in [1, " +
                             std::to_string(caps.max_threads_per_sm) + "]");
  }
  std::uint32_t regs = std::clamp(opts.regs_per_thread, 4u, 64u);
  regs = std::min(regs, caps.registers_per_sm / opts.threads_per_block);

  const Trace trace = parse_trace(text, filename, opts.warp_size);
  ReduceOptions ropts;
  ropts.line_bytes = opts.line_bytes;
  const std::vector<InstrStats> instrs = reduce_trace(trace, ropts);

  // Loop trip count: mean dynamic accesses per (pc, warp) pair, so one
  // simulated warp issues about as many accesses per instruction as a trace
  // warp did.
  std::uint32_t iters = opts.iterations;
  if (iters == 0) {
    std::uint64_t total = 0, pairs = 0;
    for (const InstrStats& s : instrs) {
      total += s.instances;
      pairs += std::max<std::uint64_t>(s.warps, 1);
    }
    iters = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(pairs == 0 ? 1 : (total + pairs - 1) / pairs, 1, 256));
  }

  std::uint32_t grid = opts.grid_blocks;
  if (grid == 0) {
    const std::uint64_t threads_total = static_cast<std::uint64_t>(trace.max_tid) + 1;
    grid = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        (threads_total + opts.threads_per_block - 1) / opts.threads_per_block, 1, 1u << 20));
  }

  // One loop segment walking the trace's instructions in pc order, ALU ops
  // threading a dependency through the register file between accesses.
  std::vector<Segment> segments;
  Segment body;
  body.iterations = iters;
  RegNum cursor = 0;
  auto next_reg = [&]() -> RegNum {
    const RegNum r = cursor;
    cursor = static_cast<RegNum>((cursor + 1) % regs);
    return r;
  };
  {
    Instruction seed;
    seed.op = Op::kAlu;
    seed.dst = next_reg();
    body.instrs.push_back(seed);
  }
  std::size_t idx = 0;
  for (const InstrStats& s : instrs) {
    Instruction m;
    m.op = s.is_store ? Op::kStGlobal : Op::kLdGlobal;
    m.pattern = pattern_label(s.profile);
    m.locality = locality_label(s.profile);
    m.region = static_cast<std::uint8_t>(1 + idx % 255);
    m.footprint_lines = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(s.profile.footprint_lines, UINT32_MAX));
    m.profile = std::make_shared<const MemProfile>(s.profile);
    const RegNum data = next_reg();
    if (s.is_store) {
      m.src0 = data;
    } else {
      m.dst = data;
    }
    body.instrs.push_back(m);

    Instruction mix;
    mix.op = Op::kAlu;
    mix.dst = next_reg();
    mix.src0 = data;
    body.instrs.push_back(mix);
    ++idx;
  }
  segments.push_back(std::move(body));

  Segment epilogue;
  epilogue.iterations = 1;
  Instruction exit;
  exit.op = Op::kExit;
  epilogue.instrs.push_back(exit);
  segments.push_back(std::move(epilogue));

  KernelInfo k;
  k.name = opts.name.empty() ? "trace-" + file_stem(filename) : opts.name;
  k.suite = "trace";
  k.set = "trace";
  k.resources = KernelResources{opts.threads_per_block, regs, 0};
  k.grid_blocks = grid;
  k.active_lanes = 32;
  k.program = Program(std::move(segments), static_cast<RegNum>(regs));
  k.validate();
  return k;
}

KernelInfo import_trace_file(const std::string& path, const ImportOptions& opts) {
  const std::optional<std::string> text = read_file(path);
  if (!text.has_value()) throw std::runtime_error("cannot open " + path);
  return import_trace(*text, path, opts);
}

}  // namespace grs::workloads::trace
