#include "workloads/trace/trace_reader.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "common/io.h"

namespace grs::workloads::trace {

namespace {

struct Cursor {
  const std::string& file;
  int line = 0;
};

[[noreturn]] void fail(const Cursor& c, const std::string& msg) {
  throw TraceError(c.file, c.line, msg);
}

std::string strip(const std::string& line) {
  std::string s = line;
  const std::size_t hash = s.find('#');
  if (hash != std::string::npos) s.erase(hash);
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' || s.back() == '\t')) s.pop_back();
  std::size_t start = 0;
  while (start < s.size() && (s[start] == ' ' || s[start] == '\t')) ++start;
  return s.substr(start);
}

std::uint64_t parse_u64_tok(const Cursor& c, const std::string& t, const char* what) {
  if (t.empty()) fail(c, std::string("empty ") + what + " field");
  std::uint64_t v = 0;
  if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    for (std::size_t i = 2; i < t.size(); ++i) {
      const char ch = t[i];
      std::uint64_t d;
      if (ch >= '0' && ch <= '9') d = static_cast<std::uint64_t>(ch - '0');
      else if (ch >= 'a' && ch <= 'f') d = static_cast<std::uint64_t>(ch - 'a') + 10;
      else if (ch >= 'A' && ch <= 'F') d = static_cast<std::uint64_t>(ch - 'A') + 10;
      else fail(c, std::string("bad hex digit in ") + what + " '" + t + "'");
      if (v > (UINT64_MAX - d) / 16) fail(c, std::string(what) + " is out of range");
      v = v * 16 + d;
    }
    return v;
  }
  for (const char ch : t) {
    if (ch < '0' || ch > '9') {
      fail(c, std::string("expected a number for ") + what + ", got '" + t + "'");
    }
    const auto d = static_cast<std::uint64_t>(ch - '0');
    if (v > (UINT64_MAX - d) / 10) fail(c, std::string(what) + " is out of range");
    v = v * 10 + d;
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    const std::string piece =
        s.substr(pos, next == std::string::npos ? std::string::npos : next - pos);
    std::string trimmed;
    for (const char c : piece) {
      if (c != ' ' && c != '\t') trimmed += c;
    }
    out.push_back(trimmed);
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool opcode_is_store(const Cursor& c, const std::string& op) {
  std::string lower;
  for (const char ch : op) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  if (lower.find("st") == 0 || lower.find(".st") != std::string::npos || lower == "w") return true;
  if (lower.find("ld") == 0 || lower.find(".ld") != std::string::npos || lower == "r") return false;
  fail(c, "cannot classify opcode '" + op + "' as a load or store");
}

void parse_csv(const std::string& text, const std::string& filename, Trace& out) {
  Cursor c{filename, 0};
  std::istringstream in(text);
  std::string raw;
  // Lanes seen in the currently open warp access, to detect a new dynamic
  // instance when a lane repeats.
  std::vector<std::uint32_t> open_lanes;
  while (std::getline(in, raw)) {
    ++c.line;
    const std::string line = strip(raw);
    if (line.empty()) continue;
    const std::vector<std::string> f = split(line, ',');
    if (c.line == 1 || out.records == 0) {
      // Optional header row.
      if (!f.empty() && f[0] == "pc") continue;
    }
    if (f.size() != 4 && f.size() != 5) {
      fail(c, "expected pc,tid,addr,size[,r|w], got " + std::to_string(f.size()) + " fields");
    }
    const std::uint64_t pc = parse_u64_tok(c, f[0], "pc");
    const std::uint64_t tid = parse_u64_tok(c, f[1], "tid");
    if (tid > UINT32_MAX) fail(c, "tid is out of range");
    const Addr addr = parse_u64_tok(c, f[2], "addr");
    std::uint64_t size = parse_u64_tok(c, f[3], "size");
    if (size == 0) size = 4;
    if (size > 4096) fail(c, "size " + std::to_string(size) + " is implausibly large");
    bool is_store = false;
    if (f.size() == 5) is_store = opcode_is_store(c, f[4]);

    const auto warp = static_cast<std::uint32_t>(tid / out.warp_size);
    const auto lane = static_cast<std::uint32_t>(tid % out.warp_size);
    const bool same_instr = !out.accesses.empty() && out.accesses.back().pc == pc &&
                            out.accesses.back().warp_id == warp &&
                            out.accesses.back().is_store == is_store;
    const bool lane_repeats =
        same_instr &&
        std::find(open_lanes.begin(), open_lanes.end(), lane) != open_lanes.end();
    if (!same_instr || lane_repeats) {
      out.accesses.push_back(WarpAccess{pc, warp, is_store, {}});
      open_lanes.clear();
    }
    out.accesses.back().lanes.push_back(LaneAccess{addr, static_cast<std::uint32_t>(size)});
    open_lanes.push_back(lane);
    ++out.records;
    out.max_tid = std::max(out.max_tid, static_cast<std::uint32_t>(tid));
  }
}

void parse_memlog(const std::string& text, const std::string& filename, Trace& out) {
  Cursor c{filename, 0};
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++c.line;
    const std::string line = strip(raw);
    if (line.empty()) continue;
    const std::vector<std::string> f = split_ws(line);
    if (f.size() < 4) {
      fail(c, "expected '<pc> <warp> <opcode> <addr...>', got " + std::to_string(f.size()) +
                  " fields");
    }
    WarpAccess a;
    a.pc = parse_u64_tok(c, f[0], "pc");
    const std::uint64_t warp = parse_u64_tok(c, f[1], "warp id");
    if (warp > UINT32_MAX / out.warp_size) fail(c, "warp id is out of range");
    a.warp_id = static_cast<std::uint32_t>(warp);
    a.is_store = opcode_is_store(c, f[2]);
    for (std::size_t k = 3; k < f.size(); ++k) {
      a.lanes.push_back(LaneAccess{parse_u64_tok(c, f[k], "addr"), 4});
    }
    if (a.lanes.size() > out.warp_size) {
      fail(c, "warp access has " + std::to_string(a.lanes.size()) +
                  " lanes but the warp size is " + std::to_string(out.warp_size));
    }
    out.records += a.lanes.size();
    out.max_tid =
        std::max(out.max_tid, a.warp_id * out.warp_size +
                                  static_cast<std::uint32_t>(a.lanes.size()) - 1);
    out.accesses.push_back(std::move(a));
  }
}

}  // namespace

Trace parse_trace(const std::string& text, const std::string& filename,
                  std::uint32_t warp_size) {
  Trace out;
  out.warp_size = warp_size == 0 ? 32 : warp_size;
  // Auto-detect: the generic format is comma-separated, the memory-log format
  // never contains a comma.
  bool csv = false;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = strip(raw);
    if (line.empty()) continue;
    csv = line.find(',') != std::string::npos;
    break;
  }
  if (csv) {
    parse_csv(text, filename, out);
  } else {
    parse_memlog(text, filename, out);
  }
  if (out.accesses.empty()) {
    throw TraceError(filename, 1, "trace contains no memory accesses");
  }
  return out;
}

Trace load_trace_file(const std::string& path, std::uint32_t warp_size) {
  const std::optional<std::string> text = read_file(path);
  if (!text.has_value()) throw std::runtime_error("cannot open " + path);
  return parse_trace(*text, path, warp_size);
}

}  // namespace grs::workloads::trace
