// Address-trace ingestion: parse real memory traces into a stream of
// warp-level accesses, the input of the histogram reducer (trace/reduce.h).
//
// Two formats are accepted, auto-detected per file:
//
// 1. Generic CSV (one record per thread access; header line optional):
//
//      pc,tid,addr,size
//      0x80,0,0x10000,4
//      0x80,1,0x10004,4
//
//    Numbers are decimal or 0x-hex; `size` is bytes (0 reads as 4); a fifth
//    column `r|w` (or `ld|st`) marks loads/stores, defaulting to load.
//    Consecutive records with the same pc and warp (tid / warp_size) fold
//    into one warp access; a repeated lane closes the current access and
//    opens the next dynamic instance.
//
// 2. Memory-log lines (GPGPU-Sim-style, one warp access per line):
//
//      0x0080 3 LDG 0x10000 0x10080 0x10100
//      <pc>  <warp> <opcode> <addr...>
//
//    The opcode token classifies loads vs stores (it contains "ld"/"LD" or
//    "st"/"ST"); per-lane addresses follow, all assumed 4-byte.
//
// '#' starts a comment in both formats; blank lines are skipped. Malformed
// input raises TraceError with a "file:line: message" what() — never an
// abort — so frontends can print it and exit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace grs::workloads::trace {

/// Positioned trace-parse failure; what() reads "file:line: message".
class TraceError : public std::runtime_error {
 public:
  TraceError(const std::string& file, int line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// One lane's contribution to a warp access.
struct LaneAccess {
  Addr addr = 0;
  std::uint32_t size = 4;  ///< bytes
};

/// One dynamic warp-level access of one memory instruction.
struct WarpAccess {
  std::uint64_t pc = 0;
  std::uint32_t warp_id = 0;
  bool is_store = false;
  std::vector<LaneAccess> lanes;
};

struct Trace {
  std::vector<WarpAccess> accesses;
  std::uint64_t records = 0;   ///< thread-level records consumed
  std::uint32_t max_tid = 0;   ///< highest thread id observed (sizing the grid)
  std::uint32_t warp_size = 32;
};

/// Parse trace text (format auto-detected). `filename` labels errors only.
[[nodiscard]] Trace parse_trace(const std::string& text,
                                const std::string& filename = "<trace>",
                                std::uint32_t warp_size = 32);

/// Read and parse `path`. Throws std::runtime_error when the file cannot be
/// read, TraceError when it cannot be parsed.
[[nodiscard]] Trace load_trace_file(const std::string& path, std::uint32_t warp_size = 32);

}  // namespace grs::workloads::trace
