#include "workloads/validate.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "common/io.h"
#include "core/occupancy.h"
#include "workloads/format/gkd.h"

namespace grs::workloads {

namespace {

/// 1-based line numbers of interesting constructs, recovered by a raw text
/// scan so semantic diagnostics can point at their source. The parser has
/// already accepted the document when this runs, so a lexical scan agrees
/// with it on what is where.
struct LineIndex {
  int header(const std::string& key) const {
    const auto it = header_lines.find(key);
    return it == header_lines.end() ? 1 : it->second;
  }
  std::map<std::string, int> header_lines;
  /// Lines of global-memory instructions carrying a `profile` block, in
  /// program order (matches the order of profiled instructions in the
  /// parsed Program).
  std::vector<int> profile_lines;
};

LineIndex index_lines(const std::string& text) {
  LineIndex idx;
  std::istringstream in(text);
  std::string raw;
  int number = 0;
  while (std::getline(in, raw)) {
    ++number;
    std::size_t start = raw.find_first_not_of(" \t");
    if (start == std::string::npos || raw[start] == '#') continue;
    const std::size_t end = raw.find_first_of(" \t", start);
    const std::string word = raw.substr(start, end == std::string::npos ? std::string::npos
                                                                        : end - start);
    for (const char* key : {"threads", "regs", "smem", "grid", "lanes", "kernel"}) {
      if (word == key && idx.header_lines.find(key) == idx.header_lines.end()) {
        idx.header_lines[key] = number;
      }
    }
    if ((word == "ld.global" || word == "st.global")) {
      const std::size_t hash = raw.find('#');
      const std::string code = hash == std::string::npos ? raw : raw.substr(0, hash);
      // Whitespace-preceded "profile" token; the loader accepts tabs too.
      for (std::size_t p = code.find("profile"); p != std::string::npos;
           p = code.find("profile", p + 1)) {
        if (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t')) {
          idx.profile_lines.push_back(number);
          break;
        }
      }
    }
  }
  return idx;
}

std::string at(const std::string& file, int line, const std::string& msg) {
  return file + ":" + std::to_string(line) + ": " + msg;
}

}  // namespace

std::vector<std::string> lint_gkd(const std::string& text, const std::string& filename,
                                  const GpuConfig& cfg) {
  std::vector<std::string> out;

  KernelInfo k;
  try {
    k = gkd::parse(text, filename);
  } catch (const gkd::ParseError& e) {
    out.push_back(e.what());  // already "file:line:col: message"
    return out;
  }
  const LineIndex idx = index_lines(text);

  // --- SM fit -------------------------------------------------------------
  const KernelResources& res = k.resources;
  if (res.threads_per_block > cfg.max_threads_per_sm) {
    out.push_back(at(filename, idx.header("threads"),
                     "block size " + std::to_string(res.threads_per_block) +
                         " exceeds the SM's " + std::to_string(cfg.max_threads_per_sm) +
                         "-thread limit"));
  }
  if (res.warps_per_block(cfg.warp_size) > cfg.max_warps_per_sm()) {
    out.push_back(at(filename, idx.header("threads"),
                     "block needs " + std::to_string(res.warps_per_block(cfg.warp_size)) +
                         " warps but the SM hosts at most " +
                         std::to_string(cfg.max_warps_per_sm())));
  }
  if (res.regs_per_block() > cfg.registers_per_sm) {
    out.push_back(at(filename, idx.header("regs"),
                     "block needs " + std::to_string(res.regs_per_block()) +
                         " registers but the SM has " +
                         std::to_string(cfg.registers_per_sm)));
  }
  if (res.smem_per_block > cfg.scratchpad_per_sm) {
    out.push_back(at(filename, idx.header("smem"),
                     "block needs " + std::to_string(res.smem_per_block) +
                         " scratchpad bytes but the SM has " +
                         std::to_string(cfg.scratchpad_per_sm)));
  }
  if (!out.empty()) return out;  // occupancy math below assumes a fitting kernel

  // --- occupancy / sharing t-range ----------------------------------------
  const Occupancy occ = compute_occupancy(cfg, res);
  if (k.grid_blocks < cfg.num_sms) {
    out.push_back(at(filename, idx.header("grid"),
                     "grid of " + std::to_string(k.grid_blocks) + " blocks leaves " +
                         std::to_string(cfg.num_sms - k.grid_blocks) + " of " +
                         std::to_string(cfg.num_sms) + " SMs idle"));
  }
  if (cfg.sharing.enabled) {
    const double t = cfg.sharing.threshold_t;
    if (!(t >= 0.001 && t <= 1.0)) {
      out.push_back(at(filename, 1,
                       "sharing threshold t=" + std::to_string(t) + " outside [0.001, 1]"));
    } else if (!occ.sharing_active) {
      out.push_back(at(filename, idx.header(cfg.sharing.resource == Resource::kScratchpad
                                                ? "smem"
                                                : "regs"),
                       std::string("sharing ") + to_string(cfg.sharing.resource) +
                           " at t=" + std::to_string(t) +
                           " launches no extra blocks for this kernel (limiter: " +
                           to_string(occ.limiter) + ")"));
    }
  }

  // --- profile-histogram sanity -------------------------------------------
  std::size_t profiled = 0;
  for (const Segment& s : k.program.segments()) {
    for (const Instruction& i : s.instrs) {
      if (!i.profile) continue;
      const int line = profiled < idx.profile_lines.size()
                           ? idx.profile_lines[profiled]
                           : 1;
      ++profiled;
      const MemProfile& p = *i.profile;
      for (const ProfileBucket& b : p.coalesce) {
        if (static_cast<std::uint64_t>(b.value) > k.active_lanes) {
          out.push_back(at(filename, line,
                           "coalesce degree " + std::to_string(b.value) +
                               " exceeds the kernel's " + std::to_string(k.active_lanes) +
                               " active lanes"));
        }
      }
      for (const ProfileBucket& b : p.stride) {
        const std::uint64_t mag = b.value < 0 ? static_cast<std::uint64_t>(-b.value)
                                              : static_cast<std::uint64_t>(b.value);
        if (mag >= p.footprint_lines && p.footprint_lines > 1) {
          out.push_back(at(filename, line,
                           "stride " + std::to_string(b.value) +
                               " never lands twice inside the " +
                               std::to_string(p.footprint_lines) + "-line footprint"));
        }
      }
      for (const ProfileBucket& b : p.reuse) {
        if (b.value != MemProfile::kColdReuse &&
            static_cast<std::uint64_t>(b.value) > (1ull << 32)) {
          out.push_back(at(filename, line,
                           "reuse distance " + std::to_string(b.value) +
                               " is implausibly large (> 2^32 accesses)"));
        }
      }
    }
  }
  return out;
}

std::vector<std::string> lint_gkd_file(const std::string& path, const GpuConfig& cfg) {
  const std::optional<std::string> text = read_file(path);
  if (!text.has_value()) return {path + ":1: cannot open file"};
  return lint_gkd(*text, path, cfg);
}

}  // namespace grs::workloads
