// The paper's benchmark kernels, reproduced as synthetic IR programs.
//
// Resource signatures (block size, registers/thread, scratchpad/block) are
// copied verbatim from paper Tables II-IV, so occupancy-derived results
// (Fig. 1, Fig. 8(a)/(b), Tables VI/VIII) reproduce exactly. Instruction
// mixes and memory behaviour are synthesized to match each application's
// published character (see each factory's comment and DESIGN.md §2).
//
// Register numbering follows PTXPlus declaration order, which is *not*
// first-use order (paper Fig. 7a); factories scramble register ids above a
// per-kernel watermark so the unroll/reorder pass (isa/reorder.h) has the
// same effect it has on real PTXPlus.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "workloads/kernel_info.h"

namespace grs::workloads {

// --- Set-1: register-limited (paper Table II) ---------------------------
[[nodiscard]] KernelInfo backprop();  ///< bpnn_adjust_weights_cuda, 256thr, 24reg
[[nodiscard]] KernelInfo btree();     ///< findRangeK, 508thr, 24reg
[[nodiscard]] KernelInfo hotspot();   ///< calculate_temp, 256thr, 36reg
[[nodiscard]] KernelInfo lib();       ///< Pathcalc_Portfolio_KernelGPU, 192thr, 36reg
[[nodiscard]] KernelInfo mum();       ///< mummergpuKernel, 256thr, 28reg
[[nodiscard]] KernelInfo mriq();      ///< ComputeQ_GPU, 256thr, 24reg
[[nodiscard]] KernelInfo sgemm();     ///< mysgemmNT, 128thr, 48reg
[[nodiscard]] KernelInfo stencil();   ///< block2D_hybrid_coarsen_x, 512thr, 28reg

// --- Set-2: scratchpad-limited (paper Table III) -------------------------
[[nodiscard]] KernelInfo conv1();     ///< convolutionRowsKernel, 64thr, 2560B
[[nodiscard]] KernelInfo conv2();     ///< convolutionColumnsKernel, 128thr, 5184B
[[nodiscard]] KernelInfo lavamd();    ///< kernel_gpu_cuda, 128thr, 7200B
[[nodiscard]] KernelInfo nw1();       ///< needle_cuda_shared_1, 16thr, 2180B
[[nodiscard]] KernelInfo nw2();       ///< needle_cuda_shared_2, 16thr, 2180B
[[nodiscard]] KernelInfo srad1();     ///< srad_cuda_1, 256thr, 6144B
[[nodiscard]] KernelInfo srad2();     ///< srad_cuda_2, 256thr, 5120B

// --- Set-3: limited by threads or blocks (paper Table IV) ----------------
[[nodiscard]] KernelInfo backprop_layerforward();  ///< threads-limited
[[nodiscard]] KernelInfo bfs();                    ///< threads-limited
[[nodiscard]] KernelInfo gaussian();               ///< blocks-limited
[[nodiscard]] KernelInfo nn();                     ///< blocks-limited

/// All kernels of a set, in the paper's figure order.
[[nodiscard]] std::vector<KernelInfo> set1();
[[nodiscard]] std::vector<KernelInfo> set2();
[[nodiscard]] std::vector<KernelInfo> set3();

/// Lookup by the paper's display name (e.g. "hotspot", "CONV1"); aborts on
/// unknown names after printing the offending name and the valid-name list.
[[nodiscard]] KernelInfo by_name(const std::string& name);

/// Non-aborting lookup: std::nullopt when `name` is not a built-in kernel.
[[nodiscard]] std::optional<KernelInfo> find_by_name(const std::string& name);

/// Every kernel name across all sets.
[[nodiscard]] std::vector<std::string> all_names();

}  // namespace grs::workloads
