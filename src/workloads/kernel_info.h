// A launchable kernel: program + execution configuration + resource demand.
#pragma once

#include <cstdint>
#include <string>

#include "core/occupancy.h"
#include "isa/program.h"

namespace grs {

struct KernelInfo {
  std::string name;
  KernelResources resources;    ///< block size, regs/thread, scratchpad/block
  std::uint32_t grid_blocks = 0;

  /// Average active lanes per warp (32 unless the kernel is modelled as
  /// divergent, e.g. MUM / BFS / b+tree; see DESIGN.md §7).
  std::uint32_t active_lanes = 32;

  Program program;

  /// Paper context: which benchmark suite and set the kernel comes from.
  std::string suite;
  std::string set;  ///< "set1" (register-limited), "set2" (scratchpad), "set3"

  void validate() const;
};

}  // namespace grs
