#include "workloads/gen/generator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/config.h"
#include "common/prng.h"
#include "core/occupancy.h"
#include "isa/builder.h"

namespace grs::workloads::gen {

namespace {

/// The op menu the generator draws from, with the profile's weights; shared
/// memory ops are dropped when the sampled kernel has no scratchpad.
struct Menu {
  struct Choice {
    Op op;
    std::uint32_t weight;
  };
  std::vector<Choice> choices;
  std::uint64_t total = 0;

  void add(Op op, std::uint32_t weight) {
    if (weight == 0) return;
    choices.push_back({op, weight});
    total += weight;
  }

  Op pick(SplitMix64& rng) const {
    if (total == 0) return Op::kAlu;
    std::uint64_t r = rng.next_below(total);
    for (const Choice& c : choices) {
      if (r < c.weight) return c.op;
      r -= c.weight;
    }
    return Op::kAlu;
  }
};

}  // namespace

KernelInfo generate(const GenProfile& p, std::uint64_t seed) {
  // Fold the profile name into the seed so distinct profiles draw distinct
  // streams from the same seed number.
  std::uint64_t h = mix64(seed);
  for (char c : p.name) h = hash_combine(h, static_cast<unsigned char>(c));
  SplitMix64 rng(h);

  const GpuConfig caps;  ///< default = paper Table I; generated kernels must fit it

  auto pick_u32 = [&rng](const std::vector<std::uint32_t>& v, std::uint32_t fallback) {
    return v.empty() ? fallback : v[rng.next_below(v.size())];
  };
  auto range = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return hi <= lo ? lo : lo + static_cast<std::uint32_t>(rng.next_below(hi - lo + 1));
  };

  // --- resource demand, clamped to fit the default SM ----------------------
  const std::uint32_t threads = std::min(pick_u32(p.block_sizes, 128), caps.max_threads_per_sm);
  std::uint32_t regs = range(p.regs_min, p.regs_max);
  regs = std::min(regs, caps.registers_per_sm / threads);
  regs = std::max<std::uint32_t>(regs, 2);
  std::uint32_t smem = p.smem_max == 0 ? 0 : range(p.smem_min, p.smem_max);
  smem = std::min(smem, caps.scratchpad_per_sm);
  if (smem > 0 && smem < 64) smem = 64;  // too small to be an interesting tile

  Menu menu;
  menu.add(Op::kAlu, p.w_alu);
  menu.add(Op::kSfu, p.w_sfu);
  menu.add(Op::kLdGlobal, p.w_ld_global);
  menu.add(Op::kStGlobal, p.w_st_global);
  if (smem > 0) {
    menu.add(Op::kLdShared, p.w_ld_shared);
    menu.add(Op::kStShared, p.w_st_shared);
  }
  menu.add(Op::kBarrier, p.w_barrier);

  // --- program ------------------------------------------------------------
  ProgramBuilder b(static_cast<RegNum>(regs));
  std::uint32_t intro = 0;  ///< registers introduced so far (first-use order)
  const std::uint32_t window = std::max<std::uint32_t>(p.dep_window, 1);

  auto pick_dst = [&]() -> RegNum {
    if (intro == 0 || (intro < regs && rng.next_below(100) < 55)) {
      return static_cast<RegNum>(intro++);
    }
    const std::uint32_t lo = intro > window ? intro - window : 0;
    return static_cast<RegNum>(lo + rng.next_below(intro - lo));
  };
  auto pick_src = [&]() -> RegNum {
    if (intro == 0) return kNoReg;
    const std::uint32_t lo = intro > window ? intro - window : 0;
    return static_cast<RegNum>(lo + rng.next_below(intro - lo));
  };
  auto pick_pattern = [&]() {
    return p.patterns.empty() ? MemPattern::kCoalesced
                              : p.patterns[rng.next_below(p.patterns.size())];
  };
  auto pick_locality = [&]() {
    return p.localities.empty() ? Locality::kStreaming
                                : p.localities[rng.next_below(p.localities.size())];
  };
  // Synthesized measured-behaviour histograms (isa/mem_profile.h). Guarded by
  // profile_percent so profiles with the default 0 draw exactly the streams
  // they always did — their (profile, seed) -> kernel mapping is unchanged.
  auto pick_mem_profile = [&]() -> std::shared_ptr<const MemProfile> {
    if (p.profile_percent == 0 || rng.next_below(100) >= p.profile_percent) return nullptr;
    MemProfile mp;
    const std::uint32_t degree_menu[] = {1, 2, 4, 8, 16, 32};
    const std::int64_t stride_menu[] = {-8, -1, 0, 1, 2, 4, 16, 64};
    const std::int64_t reuse_menu[] = {1, 2, 4, 8, 32, 128};
    const std::uint32_t n_coal = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t k = 0; k < n_coal; ++k) {
      const std::int64_t value = degree_menu[rng.next_below(6)];
      const std::uint64_t weight = 1 + rng.next_below(99);
      mp.coalesce.push_back({value, weight});
    }
    const std::uint32_t n_stride = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t k = 0; k < n_stride; ++k) {
      const std::int64_t value = stride_menu[rng.next_below(8)];
      const std::uint64_t weight = 1 + rng.next_below(99);
      mp.stride.push_back({value, weight});
    }
    const std::uint64_t cold_weight = 1 + rng.next_below(99);
    mp.reuse.push_back({MemProfile::kColdReuse, cold_weight});
    const std::uint32_t n_reuse = static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t k = 0; k < n_reuse; ++k) {
      const std::int64_t value = reuse_menu[rng.next_below(6)];
      const std::uint64_t weight = 1 + rng.next_below(99);
      mp.reuse.push_back({value, weight});
    }
    mp.footprint_lines = 1 + rng.next_below(std::max(p.footprint_lines_max, 1u));
    mp.canonicalize();
    return std::make_shared<const MemProfile>(std::move(mp));
  };
  // Every rng-consuming call below is hoisted into a named local: argument
  // evaluation order is unspecified in C++, and a draw order that varied by
  // compiler would break the deterministic-per-(profile, seed) contract.
  auto emit = [&](ProgramBuilder& out, Op op) {
    switch (op) {
      case Op::kAlu: {
        const RegNum dst = pick_dst();
        const RegNum src0 = pick_src();
        const RegNum src1 = rng.next_below(2) == 0 ? pick_src() : kNoReg;
        out.alu(dst, src0, src1);
        break;
      }
      case Op::kSfu: {
        const RegNum dst = pick_dst();
        const RegNum src0 = pick_src();
        out.sfu(dst, src0);
        break;
      }
      case Op::kLdGlobal: {
        const MemPattern pat = pick_pattern();
        const Locality loc = pick_locality();
        const auto region =
            static_cast<std::uint8_t>(1 + rng.next_below(std::min(p.regions_max, 255u)));
        const auto lines =
            static_cast<std::uint32_t>(1 + rng.next_below(std::max(p.footprint_lines_max, 1u)));
        const RegNum addr = rng.next_below(4) == 0 ? pick_src() : kNoReg;
        const RegNum dst = pick_dst();
        auto prof = pick_mem_profile();
        out.ld_global(dst, pat, loc, region, lines, addr, std::move(prof));
        break;
      }
      case Op::kStGlobal: {
        const MemPattern pat = pick_pattern();
        const Locality loc = pick_locality();
        const auto region =
            static_cast<std::uint8_t>(1 + rng.next_below(std::min(p.regions_max, 255u)));
        const auto lines =
            static_cast<std::uint32_t>(1 + rng.next_below(std::max(p.footprint_lines_max, 1u)));
        const RegNum data = pick_src();
        auto prof = pick_mem_profile();
        out.st_global(data, pat, loc, region, lines, std::move(prof));
        break;
      }
      case Op::kLdShared: {
        const RegNum dst = pick_dst();
        const auto offset = static_cast<std::uint32_t>(rng.next_below(smem));
        out.ld_shared(dst, offset);
        break;
      }
      case Op::kStShared: {
        const RegNum src = pick_src();
        const auto offset = static_cast<std::uint32_t>(rng.next_below(smem));
        out.st_shared(src, offset);
        break;
      }
      case Op::kBarrier:
        out.barrier();
        break;
      case Op::kExit:
        break;  // appended by build()
    }
  };

  const std::uint32_t n_segments = range(std::max(p.segments_min, 1u), p.segments_max);
  std::uint64_t budget = std::max<std::uint32_t>(p.max_dynamic_length, 16);
  for (std::uint32_t seg = 0; seg < n_segments; ++seg) {
    const std::uint32_t body = std::max(range(p.body_min, p.body_max), 1u);
    const std::uint64_t iters_cap =
        std::min<std::uint64_t>(std::max<std::uint32_t>(p.iters_max, 1),
                                std::max<std::uint64_t>(budget / body, 1));
    const auto iters = static_cast<std::uint32_t>(1 + rng.next_below(iters_cap));
    b.loop(iters, [&](ProgramBuilder& l) {
      for (std::uint32_t k = 0; k < body; ++k) {
        // The very first instruction introduces a register, so later source
        // picks always have something real to read.
        const Op op = (seg == 0 && k == 0) ? Op::kAlu : menu.pick(rng);
        emit(l, op);
      }
    });
    budget -= std::min<std::uint64_t>(budget, static_cast<std::uint64_t>(body) * iters);
  }

  KernelInfo k;
  k.name = "gen-" + p.name + "-" + std::to_string(seed);
  k.suite = "generated";
  k.set = "gen";
  k.resources = KernelResources{threads, regs, smem};
  k.grid_blocks = range(std::max(p.grid_min, 1u), p.grid_max);
  k.active_lanes = pick_u32(p.lane_choices, 32);
  k.program = b.build();
  k.validate();
  // Aborting here would be a generator bug, not bad input: the clamps above
  // guarantee at least one resident block under the default config.
  (void)compute_occupancy(caps, k.resources);
  return k;
}

}  // namespace grs::workloads::gen
