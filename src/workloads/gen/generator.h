// Deterministic seeded kernel generator.
//
// generate(profile, seed) samples a complete KernelInfo from the profile's
// ranges using only common/prng.h streams: the same (profile, seed) pair
// produces the same kernel on every platform and build. Every generated
// kernel passes KernelInfo::validate() and fits the default GpuConfig
// (paper Table I) with at least one resident block, so callers can hand it
// straight to simulate() — which is what the grs_fuzz differential harness
// does at scale.
#pragma once

#include <cstdint>

#include "workloads/gen/profile.h"
#include "workloads/kernel_info.h"

namespace grs::workloads::gen {

/// Generated kernels are named "gen-<profile>-<seed>" with suite "generated"
/// and set "gen".
[[nodiscard]] KernelInfo generate(const GenProfile& profile, std::uint64_t seed);

}  // namespace grs::workloads::gen
