#include "workloads/gen/profile.h"

#include <stdexcept>

namespace grs::workloads::gen {

GenProfile register_limited() {
  GenProfile p;
  p.name = "register_limited";
  p.block_sizes = {128, 192, 256, 512};
  p.regs_min = 24;
  p.regs_max = 56;
  p.smem_min = 0;
  p.smem_max = 0;
  p.grid_min = 42;
  p.grid_max = 112;
  p.lane_choices = {32, 32, 32, 24};
  p.segments_min = 2;
  p.segments_max = 4;
  p.iters_max = 12;
  p.body_min = 3;
  p.body_max = 12;
  p.max_dynamic_length = 320;
  p.w_alu = 8;
  p.w_sfu = 1;
  p.w_ld_global = 2;
  p.w_st_global = 1;
  p.dep_window = 6;
  p.patterns = {MemPattern::kCoalesced, MemPattern::kCoalesced, MemPattern::kStrided2};
  p.localities = {Locality::kStreaming, Locality::kGridShared, Locality::kBlockLocal,
                  Locality::kWarpLocal};
  p.footprint_lines_max = 1536;
  p.regions_max = 4;
  return p;
}

GenProfile scratchpad_limited() {
  GenProfile p;
  p.name = "scratchpad_limited";
  p.block_sizes = {64, 128, 256};
  p.regs_min = 10;
  p.regs_max = 18;
  p.smem_min = 2048;
  p.smem_max = 8192;
  p.grid_min = 42;
  p.grid_max = 112;
  p.lane_choices = {32};
  p.segments_min = 2;
  p.segments_max = 4;
  p.iters_max = 14;
  p.body_min = 3;
  p.body_max = 10;
  p.max_dynamic_length = 300;
  p.w_alu = 5;
  p.w_ld_global = 1;
  p.w_st_global = 1;
  p.w_ld_shared = 4;
  p.w_st_shared = 2;
  p.w_barrier = 1;
  p.dep_window = 4;
  p.patterns = {MemPattern::kCoalesced};
  p.localities = {Locality::kStreaming, Locality::kGridShared};
  p.footprint_lines_max = 1024;
  p.regions_max = 3;
  return p;
}

GenProfile balanced() {
  GenProfile p;
  p.name = "balanced";
  p.block_sizes = {64, 128, 256, 384};
  p.regs_min = 12;
  p.regs_max = 32;
  p.smem_min = 0;
  p.smem_max = 4096;
  p.grid_min = 28;
  p.grid_max = 98;
  p.lane_choices = {32, 32, 24, 16};
  p.segments_min = 2;
  p.segments_max = 5;
  p.iters_max = 10;
  p.body_min = 2;
  p.body_max = 10;
  p.max_dynamic_length = 280;
  p.w_alu = 6;
  p.w_sfu = 1;
  p.w_ld_global = 2;
  p.w_st_global = 1;
  p.w_ld_shared = 1;
  p.w_st_shared = 1;
  p.w_barrier = 1;
  p.dep_window = 4;
  p.patterns = {MemPattern::kCoalesced, MemPattern::kStrided2, MemPattern::kStrided4};
  p.localities = {Locality::kStreaming, Locality::kWarpLocal, Locality::kBlockLocal,
                  Locality::kGridShared};
  p.footprint_lines_max = 2048;
  p.regions_max = 4;
  return p;
}

GenProfile memory_bound() {
  GenProfile p;
  p.name = "memory_bound";
  p.block_sizes = {128, 256, 512};
  p.regs_min = 10;
  p.regs_max = 28;
  p.smem_min = 0;
  p.smem_max = 0;
  p.grid_min = 28;
  p.grid_max = 84;
  p.lane_choices = {32, 24, 16};
  p.segments_min = 1;
  p.segments_max = 3;
  p.iters_max = 12;
  p.body_min = 2;
  p.body_max = 8;
  p.max_dynamic_length = 220;
  p.w_alu = 2;
  p.w_ld_global = 5;
  p.w_st_global = 2;
  p.dep_window = 3;
  p.patterns = {MemPattern::kStrided2, MemPattern::kStrided4, MemPattern::kScatter8,
                MemPattern::kScatter32};
  p.localities = {Locality::kStreaming, Locality::kRandom, Locality::kRandom,
                  Locality::kGridShared};
  p.footprint_lines_max = 12288;  ///< 2x the 768KB L2 in 128B lines
  p.regions_max = 6;
  return p;
}

GenProfile adversarial() {
  GenProfile p;
  p.name = "adversarial";
  p.block_sizes = {16, 48, 96, 224, 508};
  p.regs_min = 2;
  p.regs_max = 64;
  p.smem_min = 0;
  p.smem_max = 16384;
  p.grid_min = 14;
  p.grid_max = 70;
  p.lane_choices = {1, 7, 16, 32};
  p.segments_min = 1;
  p.segments_max = 6;
  p.iters_max = 24;
  p.body_min = 1;
  p.body_max = 14;
  p.max_dynamic_length = 360;
  p.w_alu = 3;
  p.w_sfu = 2;
  p.w_ld_global = 2;
  p.w_st_global = 2;
  p.w_ld_shared = 2;
  p.w_st_shared = 2;
  p.w_barrier = 2;
  p.dep_window = 1;
  p.patterns = {MemPattern::kCoalesced, MemPattern::kScatter8, MemPattern::kScatter32};
  p.localities = {Locality::kStreaming, Locality::kWarpLocal, Locality::kBlockLocal,
                  Locality::kGridShared, Locality::kRandom};
  p.footprint_lines_max = 12288;
  p.regions_max = 255;
  return p;
}

GenProfile profiled() {
  GenProfile p = balanced();
  p.name = "profiled";
  p.lane_choices = {32};  // histogram coalesce degrees run up to full warps
  p.w_ld_global = 4;
  p.w_st_global = 2;
  p.footprint_lines_max = 8192;
  p.profile_percent = 70;
  return p;
}

std::vector<GenProfile> all_profiles() {
  return {register_limited(), scratchpad_limited(), balanced(), memory_bound(), adversarial(),
          profiled()};
}

GenProfile profile_by_name(const std::string& name) {
  std::string valid;
  for (const GenProfile& p : all_profiles()) {
    if (p.name == name) return p;
    if (!valid.empty()) valid += ' ';
    valid += p.name;
  }
  throw std::runtime_error("unknown generator profile '" + name + "' (valid: " + valid + ")");
}

}  // namespace grs::workloads::gen
