#include "workloads/gen/profile.h"

#include <optional>
#include <stdexcept>

#include "common/parse.h"

namespace grs::workloads::gen {

namespace {

/// Parse a canonical study tag "study-r<u32>-sm<u32>-m<u32>-l<u32>" with the
/// strict whole-token parsers (common/parse.h) — no sscanf overflow UB.
std::optional<StudyAxes> parse_study_tag(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t dash = name.find('-', start);
    const std::size_t end = dash == std::string::npos ? name.size() : dash;
    parts.push_back(name.substr(start, end - start));
    start = end + 1;
    if (dash == std::string::npos) break;
  }
  if (parts.size() != 5 || parts[0] != "study") return std::nullopt;
  const char* prefixes[4] = {"r", "sm", "m", "l"};
  std::uint32_t values[4];
  for (int i = 0; i < 4; ++i) {
    const std::string& part = parts[i + 1];
    const std::size_t plen = std::char_traits<char>::length(prefixes[i]);
    if (part.compare(0, plen, prefixes[i]) != 0) return std::nullopt;
    const std::optional<std::uint32_t> v = parse_u32(part.substr(plen));
    if (!v.has_value()) return std::nullopt;
    values[i] = *v;
  }
  return StudyAxes{values[0], values[1], values[2], values[3]};
}

}  // namespace

GenProfile register_limited() {
  GenProfile p;
  p.name = "register_limited";
  p.block_sizes = {128, 192, 256, 512};
  p.regs_min = 24;
  p.regs_max = 56;
  p.smem_min = 0;
  p.smem_max = 0;
  p.grid_min = 42;
  p.grid_max = 112;
  p.lane_choices = {32, 32, 32, 24};
  p.segments_min = 2;
  p.segments_max = 4;
  p.iters_max = 12;
  p.body_min = 3;
  p.body_max = 12;
  p.max_dynamic_length = 320;
  p.w_alu = 8;
  p.w_sfu = 1;
  p.w_ld_global = 2;
  p.w_st_global = 1;
  p.dep_window = 6;
  p.patterns = {MemPattern::kCoalesced, MemPattern::kCoalesced, MemPattern::kStrided2};
  p.localities = {Locality::kStreaming, Locality::kGridShared, Locality::kBlockLocal,
                  Locality::kWarpLocal};
  p.footprint_lines_max = 1536;
  p.regions_max = 4;
  return p;
}

GenProfile scratchpad_limited() {
  GenProfile p;
  p.name = "scratchpad_limited";
  p.block_sizes = {64, 128, 256};
  p.regs_min = 10;
  p.regs_max = 18;
  p.smem_min = 2048;
  p.smem_max = 8192;
  p.grid_min = 42;
  p.grid_max = 112;
  p.lane_choices = {32};
  p.segments_min = 2;
  p.segments_max = 4;
  p.iters_max = 14;
  p.body_min = 3;
  p.body_max = 10;
  p.max_dynamic_length = 300;
  p.w_alu = 5;
  p.w_ld_global = 1;
  p.w_st_global = 1;
  p.w_ld_shared = 4;
  p.w_st_shared = 2;
  p.w_barrier = 1;
  p.dep_window = 4;
  p.patterns = {MemPattern::kCoalesced};
  p.localities = {Locality::kStreaming, Locality::kGridShared};
  p.footprint_lines_max = 1024;
  p.regions_max = 3;
  return p;
}

GenProfile balanced() {
  GenProfile p;
  p.name = "balanced";
  p.block_sizes = {64, 128, 256, 384};
  p.regs_min = 12;
  p.regs_max = 32;
  p.smem_min = 0;
  p.smem_max = 4096;
  p.grid_min = 28;
  p.grid_max = 98;
  p.lane_choices = {32, 32, 24, 16};
  p.segments_min = 2;
  p.segments_max = 5;
  p.iters_max = 10;
  p.body_min = 2;
  p.body_max = 10;
  p.max_dynamic_length = 280;
  p.w_alu = 6;
  p.w_sfu = 1;
  p.w_ld_global = 2;
  p.w_st_global = 1;
  p.w_ld_shared = 1;
  p.w_st_shared = 1;
  p.w_barrier = 1;
  p.dep_window = 4;
  p.patterns = {MemPattern::kCoalesced, MemPattern::kStrided2, MemPattern::kStrided4};
  p.localities = {Locality::kStreaming, Locality::kWarpLocal, Locality::kBlockLocal,
                  Locality::kGridShared};
  p.footprint_lines_max = 2048;
  p.regions_max = 4;
  return p;
}

GenProfile memory_bound() {
  GenProfile p;
  p.name = "memory_bound";
  p.block_sizes = {128, 256, 512};
  p.regs_min = 10;
  p.regs_max = 28;
  p.smem_min = 0;
  p.smem_max = 0;
  p.grid_min = 28;
  p.grid_max = 84;
  p.lane_choices = {32, 24, 16};
  p.segments_min = 1;
  p.segments_max = 3;
  p.iters_max = 12;
  p.body_min = 2;
  p.body_max = 8;
  p.max_dynamic_length = 220;
  p.w_alu = 2;
  p.w_ld_global = 5;
  p.w_st_global = 2;
  p.dep_window = 3;
  p.patterns = {MemPattern::kStrided2, MemPattern::kStrided4, MemPattern::kScatter8,
                MemPattern::kScatter32};
  p.localities = {Locality::kStreaming, Locality::kRandom, Locality::kRandom,
                  Locality::kGridShared};
  p.footprint_lines_max = 12288;  ///< 2x the 768KB L2 in 128B lines
  p.regions_max = 6;
  return p;
}

GenProfile adversarial() {
  GenProfile p;
  p.name = "adversarial";
  p.block_sizes = {16, 48, 96, 224, 508};
  p.regs_min = 2;
  p.regs_max = 64;
  p.smem_min = 0;
  p.smem_max = 16384;
  p.grid_min = 14;
  p.grid_max = 70;
  p.lane_choices = {1, 7, 16, 32};
  p.segments_min = 1;
  p.segments_max = 6;
  p.iters_max = 24;
  p.body_min = 1;
  p.body_max = 14;
  p.max_dynamic_length = 360;
  p.w_alu = 3;
  p.w_sfu = 2;
  p.w_ld_global = 2;
  p.w_st_global = 2;
  p.w_ld_shared = 2;
  p.w_st_shared = 2;
  p.w_barrier = 2;
  p.dep_window = 1;
  p.patterns = {MemPattern::kCoalesced, MemPattern::kScatter8, MemPattern::kScatter32};
  p.localities = {Locality::kStreaming, Locality::kWarpLocal, Locality::kBlockLocal,
                  Locality::kGridShared, Locality::kRandom};
  p.footprint_lines_max = 12288;
  p.regions_max = 255;
  return p;
}

GenProfile profiled() {
  GenProfile p = balanced();
  p.name = "profiled";
  p.lane_choices = {32};  // histogram coalesce degrees run up to full warps
  p.w_ld_global = 4;
  p.w_st_global = 2;
  p.footprint_lines_max = 8192;
  p.profile_percent = 70;
  return p;
}

std::string StudyAxes::tag() const {
  return "r" + std::to_string(regs_per_thread) + "-sm" + std::to_string(smem_per_block) + "-m" +
         std::to_string(mem_intensity) + "-l" + std::to_string(lanes);
}

GenProfile study_profile(const StudyAxes& axes) {
  GenProfile p;
  p.name = "study-" + axes.tag();

  // Pinned dimensions: one block size / grid / segment shape for the whole
  // grid, so cells differ only along the four axes. 256-thread blocks give
  // the paper-typical register-pressure spread (6 blocks by threads,
  // floor(32768 / (256 * regs)) by registers). The grid supplies 6 blocks of
  // work per SM — as much as the thread limit can ever host — so higher
  // residency always converts into fewer dispatch waves; a smaller grid
  // would leave the recovered blocks with nothing to run and flatten every
  // sharing series (the paper sweeps launch thousands of blocks).
  p.block_sizes = {256};
  p.regs_min = p.regs_max = axes.regs_per_thread;
  p.smem_min = p.smem_max = axes.smem_per_block;
  p.grid_min = p.grid_max = 84;
  p.lane_choices = {axes.lanes};
  p.segments_min = p.segments_max = 3;
  p.iters_max = 6;
  p.body_min = p.body_max = 5;
  p.max_dynamic_length = 96;
  p.dep_window = 3;

  switch (axes.mem_intensity) {
    case 0:  // light: compute-bound, cache-resident coalesced streams
      p.w_alu = 8;
      p.w_sfu = 1;
      p.w_ld_global = 1;
      p.w_st_global = 1;
      p.patterns = {MemPattern::kCoalesced};
      p.localities = {Locality::kBlockLocal, Locality::kStreaming};
      p.footprint_lines_max = 256;
      p.regions_max = 2;
      break;
    case 1:  // medium: L2-latency-bound. Reuse-heavy localities over an
             // L2-resident working set make the 160-cycle L2 round trip the
             // dominant stall (not DRAM bandwidth), and memory stays under
             // half the issue mix so the 1-per-cycle LSU port is not the
             // binding constraint — extra warps can actually hide latency.
      p.w_alu = 6;
      p.w_sfu = 0;
      p.w_ld_global = 2;
      p.w_st_global = 1;
      p.patterns = {MemPattern::kCoalesced, MemPattern::kStrided2};
      p.localities = {Locality::kGridShared, Locality::kBlockLocal};
      p.footprint_lines_max = 1024;
      p.regions_max = 4;
      break;
    default:  // heavy: DRAM-latency-bound. Coalesced cold streams over 2x the
              // L2 keep every access a miss without multiplying transactions
              // — the warp starves on the ~200-cycle round trip, not on
              // saturated DRAM bandwidth, so recovered blocks have latency
              // left to hide (scatter patterns would saturate the banks and
              // flatten the sharing series instead).
      p.w_alu = 4;
      p.w_sfu = 0;
      p.w_ld_global = 3;
      p.w_st_global = 1;
      p.patterns = {MemPattern::kCoalesced, MemPattern::kStrided2};
      p.localities = {Locality::kStreaming};
      p.footprint_lines_max = 12288;
      p.regions_max = 6;
      break;
  }

  if (axes.smem_per_block > 0) {
    p.w_ld_shared = 2;
    p.w_st_shared = 1;
    p.w_barrier = 1;
  }
  return p;
}

std::vector<GenProfile> all_profiles() {
  return {register_limited(), scratchpad_limited(), balanced(), memory_bound(), adversarial(),
          profiled()};
}

GenProfile profile_by_name(const std::string& name) {
  if (name.compare(0, 6, "study-") == 0) {
    const std::optional<StudyAxes> axes = parse_study_tag(name);
    if (axes.has_value() && axes->regs_per_thread >= 2 && axes->regs_per_thread <= 128 &&
        axes->smem_per_block <= 16384 && axes->mem_intensity <= 2 && axes->lanes >= 1 &&
        axes->lanes <= 32) {
      GenProfile p = study_profile(*axes);
      if (p.name == name) return p;  // reject non-canonical spellings, e.g. "-sm04-"
    }
    throw std::runtime_error("bad study profile '" + name +
                             "' (expected study-r<regs>-sm<bytes>-m<0|1|2>-l<1..32>)");
  }
  std::string valid;
  for (const GenProfile& p : all_profiles()) {
    if (p.name == name) return p;
    if (!valid.empty()) valid += ' ';
    valid += p.name;
  }
  throw std::runtime_error("unknown generator profile '" + name + "' (valid: " + valid + ")");
}

}  // namespace grs::workloads::gen
