// Composable sampling profiles for the seeded kernel generator.
//
// A GenProfile bounds every dimension the generator (gen/generator.h)
// samples: resource demand (block size, registers/thread, scratchpad/block,
// grid), divergence, program shape (segment count, loop trip counts, body
// sizes, total dynamic-length budget), instruction-mix weights, dependency
// depth, and the global-memory stride/locality menu. The five built-in
// profiles mirror the paper's workload classes — register-limited (Table II),
// scratchpad-limited (Table III), balanced, memory-bound — plus an
// adversarial corner-case hunter for the differential fuzzer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.h"

namespace grs::workloads::gen {

struct GenProfile {
  std::string name;

  // --- resource demand ----------------------------------------------------
  std::vector<std::uint32_t> block_sizes;      ///< threads-per-block choices
  std::uint32_t regs_min = 8, regs_max = 32;   ///< registers per thread
  std::uint32_t smem_min = 0, smem_max = 0;    ///< scratchpad bytes per block
  std::uint32_t grid_min = 28, grid_max = 84;  ///< blocks in the grid
  std::vector<std::uint32_t> lane_choices;     ///< active lanes per warp (divergence)

  // --- program shape ------------------------------------------------------
  std::uint32_t segments_min = 2, segments_max = 4;
  std::uint32_t iters_max = 16;               ///< loop segments run 1..iters_max times
  std::uint32_t body_min = 2, body_max = 10;  ///< instructions per segment body
  std::uint32_t max_dynamic_length = 320;     ///< per-warp dynamic instruction budget

  // --- instruction mix (relative weights) ----------------------------------
  std::uint32_t w_alu = 6, w_sfu = 0;
  std::uint32_t w_ld_global = 2, w_st_global = 1;
  std::uint32_t w_ld_shared = 0, w_st_shared = 0;
  std::uint32_t w_barrier = 0;

  /// How far back (in first-use register order) a source operand may reach:
  /// 1 yields serial dependency chains, large windows yield ILP.
  std::uint32_t dep_window = 4;

  // --- global-memory behaviour ---------------------------------------------
  std::vector<MemPattern> patterns{MemPattern::kCoalesced};
  std::vector<Locality> localities{Locality::kStreaming};
  std::uint32_t footprint_lines_max = 2048;  ///< region footprints drawn from [1, max]
  std::uint32_t regions_max = 4;             ///< address regions drawn from [1, max]

  /// Percentage of global-memory instructions that carry a synthesized
  /// MemProfile histogram (isa/mem_profile.h) instead of relying on the
  /// pattern/locality labels alone. 0 keeps generation byte-identical to
  /// pre-profile builds; the "profiled" built-in exercises the
  /// histogram-backed address path in the fuzzer.
  std::uint32_t profile_percent = 0;
};

/// High register pressure, barely any scratchpad: paper Set-1 territory.
[[nodiscard]] GenProfile register_limited();

/// Scratchpad tiles with barrier phases: paper Set-2 territory.
[[nodiscard]] GenProfile scratchpad_limited();

/// Moderate everything; the default exploration profile.
[[nodiscard]] GenProfile balanced();

/// Scattered, poorly-cached global traffic that stresses the memory system
/// and the event loop's idle-window logic.
[[nodiscard]] GenProfile memory_bound();

/// Deliberately nasty corners: odd block sizes, deep serial chains, dense
/// barriers, full-scatter accesses, single-lane divergence.
[[nodiscard]] GenProfile adversarial();

/// Histogram-backed memory behaviour: most global accesses carry synthesized
/// MemProfiles (stride/coalesce/reuse draws), exercising the same
/// address-generation path as trace-imported kernels.
[[nodiscard]] GenProfile profiled();

/// One point of the sharing-study grid (src/study/): the four axes the study
/// sweeps, everything else pinned. Values are raw knob settings, not level
/// indices, so a StudyAxes is self-describing in kernel names and reports.
struct StudyAxes {
  std::uint32_t regs_per_thread = 24;  ///< register pressure
  std::uint32_t smem_per_block = 0;    ///< staging: scratchpad tile bytes (0 = none)
  std::uint32_t mem_intensity = 1;     ///< memory-boundedness: 0 light, 1 medium, 2 heavy
  std::uint32_t lanes = 32;            ///< divergence: active lanes per warp

  /// Compact coordinate tag, e.g. "r24-sm4096-m1-l32" (used in kernel names,
  /// report rows and CSV columns).
  [[nodiscard]] std::string tag() const;
};

/// Axis-parameterized profile for the sharing study: every range the
/// generator samples is collapsed to a single value (block size 256, grid 84,
/// fixed segment shape), so the four StudyAxes are the only signal separating
/// two cells. smem > 0 turns on scratchpad staging traffic (ld/st.shared +
/// barriers); mem_intensity selects instruction mix, access patterns and
/// footprint together, from cache-resident coalesced streams (0) through
/// L2-latency-bound reuse (1) to DRAM-latency-bound cold streams over 2x the
/// L2 (2) — each level latency-bound rather than bandwidth-bound, so blocks
/// recovered by sharing have stalls left to hide. The profile name is
/// "study-" + axes.tag(), so generated kernels are named
/// "gen-study-<tag>-<seed>".
[[nodiscard]] GenProfile study_profile(const StudyAxes& axes);

/// All built-in profiles, in a fixed order.
[[nodiscard]] std::vector<GenProfile> all_profiles();

/// Lookup by name; throws std::runtime_error listing the valid names.
/// Besides the built-ins, parametric study profiles are addressable by their
/// canonical tag — "study-r44-sm0-m2-l32" — so any cell of a docs/study
/// report can be regenerated from the CLI (`--kernel gen:study-<tag>:<seed>`).
[[nodiscard]] GenProfile profile_by_name(const std::string& name);

}  // namespace grs::workloads::gen
