// Canonical .gkd emission. The loader (loader.cc) is the exact inverse on
// this output, which is what makes round-trips byte-identical.
#include <string>

#include "workloads/format/gkd.h"

namespace grs::workloads::gkd {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string reg_text(RegNum r) {
  return r == kNoReg ? std::string("-") : "$r" + std::to_string(r);
}

std::string global_mem_suffix(const Instruction& i) {
  std::string out = std::string(to_string(i.pattern)) + " " + to_string(i.locality) +
                    " region=" + std::to_string(i.region) +
                    " lines=" + std::to_string(i.footprint_lines);
  return out;
}

/// `is_reuse` maps the kColdReuse sentinel to "cold"; stride histograms keep
/// plain -1 (a backwards unit stride).
std::string bucket_entries(const std::vector<ProfileBucket>& h, bool is_reuse) {
  std::string out;
  for (const ProfileBucket& b : h) {
    out += ' ';
    out += is_reuse && b.value == MemProfile::kColdReuse ? std::string("cold")
                                                         : std::to_string(b.value);
    out += ':' + std::to_string(b.weight);
  }
  return out;
}

/// The `profile { ... }` block trailing a global-memory instruction line.
/// Field order and bucket order (canonical: sorted by value) are fixed so
/// serialize -> parse -> serialize stays byte-identical.
std::string profile_block(const MemProfile& p) {
  std::string out = " profile {\n";
  out += "    coalesce" + bucket_entries(p.coalesce, false) + "\n";
  out += "    stride" + bucket_entries(p.stride, false) + "\n";
  out += "    reuse" + bucket_entries(p.reuse, true) + "\n";
  out += "    footprint " + std::to_string(p.footprint_lines) + "\n";
  out += "  }";
  return out;
}

std::string instr_text(const Instruction& i) {
  const std::string op = to_string(i.op);
  switch (i.op) {
    case Op::kAlu:
    case Op::kSfu: {
      // Print operands up to the last used slot; '-' fills interior holes.
      int last = -1;
      const RegNum ops[3] = {i.dst, i.src0, i.src1};
      for (int k = 0; k < 3; ++k) {
        if (ops[k] != kNoReg) last = k;
      }
      std::string out = op;
      for (int k = 0; k <= last; ++k) {
        out += k == 0 ? " " : ", ";
        out += reg_text(ops[k]);
      }
      return out;
    }
    case Op::kLdGlobal: {
      std::string out = op + " " + reg_text(i.dst) + ", " + global_mem_suffix(i);
      if (i.src0 != kNoReg) out += " addr=" + reg_text(i.src0);
      if (i.profile) out += profile_block(*i.profile);
      return out;
    }
    case Op::kStGlobal: {
      std::string out = op + " " + reg_text(i.src0) + ", " + global_mem_suffix(i);
      if (i.profile) out += profile_block(*i.profile);
      return out;
    }
    case Op::kLdShared:
      return op + " " + reg_text(i.dst) + ", smem[" + std::to_string(i.smem_offset) + "]";
    case Op::kStShared:
      return op + " " + reg_text(i.src0) + ", smem[" + std::to_string(i.smem_offset) + "]";
    case Op::kBarrier:
    case Op::kExit:
      return op;
  }
  return op;
}

}  // namespace

std::string serialize(const KernelInfo& k) {
  std::string out;
  out += "gkd 1\n";
  out += "kernel " + quoted(k.name) + "\n";
  out += "suite " + quoted(k.suite) + "\n";
  out += "set " + quoted(k.set) + "\n";
  out += "threads " + std::to_string(k.resources.threads_per_block) + "\n";
  out += "regs " + std::to_string(k.resources.regs_per_thread) + "\n";
  out += "smem " + std::to_string(k.resources.smem_per_block) + "\n";
  out += "grid " + std::to_string(k.grid_blocks) + "\n";
  out += "lanes " + std::to_string(k.active_lanes) + "\n";
  for (const Segment& s : k.program.segments()) {
    out += "\nsegment x" + std::to_string(s.iterations) + " {\n";
    for (const Instruction& i : s.instrs) out += "  " + instr_text(i) + "\n";
    out += "}\n";
  }
  return out;
}

}  // namespace grs::workloads::gkd
