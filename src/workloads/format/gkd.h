// .gkd — the human-readable text format for kernel descriptions.
//
// A .gkd document carries everything a KernelInfo holds: name, suite/set
// labels, resource demand (threads/block, registers/thread, scratchpad
// bytes/block), grid size, active lanes, and the full segmented instruction
// stream. serialize() emits a canonical form; parse() accepts that form plus
// comments ('#' to end of line) and flexible whitespace, and reports every
// malformed input as a ParseError carrying the 1-based line:column position —
// it never aborts the process. Round-trip fidelity is exact:
// serialize(parse(serialize(k))) == serialize(k) byte for byte.
//
//   gkd 1
//   kernel "hotspot"
//   suite "RODINIA"
//   set "set1"
//   threads 256
//   regs 36
//   smem 512
//   grid 252
//   lanes 32
//
//   segment x5 {
//     ld.global $r0, coalesced grid-shared region=1 lines=512
//     alu $r1, $r0, $r1
//   }
//   segment x1 {
//     exit
//   }
//
// Header keys kernel/threads/regs/grid are required; suite/set default to ""
// and smem/lanes to 0/32. Instruction forms (one per line, '-' marks an
// unused register operand):
//
//   alu|sfu   $rD[, $rS0[, $rS1]]
//   ld.global $rD, PATTERN LOCALITY region=N lines=N [addr=$rA] [profile {...}]
//   st.global $rS, PATTERN LOCALITY region=N lines=N [profile {...}]
//   ld.shared $rD, smem[OFFSET]
//   st.shared $rS, smem[OFFSET]
//   bar.sync
//   exit
//
// PATTERN / LOCALITY use the to_string() spellings from isa/opcode.h
// (coalesced, strided2, ... / streaming, warp-local, ...). The loader
// enforces the same structural rules as Program::validate() and
// KernelInfo::validate() — register numbers below `regs`, scratchpad offsets
// inside the `smem` allocation, exactly one trailing exit — but reports them
// as positioned ParseErrors instead of aborting.
//
// A global-memory instruction may carry a measured-behaviour `profile` block
// (isa/mem_profile.h, produced by the trace importer in workloads/trace);
// when present, the simulator samples addresses from these histograms and
// the PATTERN/LOCALITY labels become a descriptive fallback:
//
//   ld.global $r0, coalesced streaming region=1 lines=512 profile {
//     coalesce 1:90 2:10          # lines per warp access : weight
//     stride 1:95 16:5            # line delta between accesses : weight
//     reuse cold:60 2:25 8:15     # reuse distance in accesses : weight
//     footprint 4096              # distinct lines touched in total
//   }
//
// All four fields are required; entries are VALUE:WEIGHT with integer
// weights >= 1, stride values may be negative, and `cold` (no reuse) is only
// valid in `reuse`. The canonical form the serializer emits sorts every
// histogram by value (cold first), which keeps round-trips byte-identical.
#pragma once

#include <stdexcept>
#include <string>

#include "workloads/kernel_info.h"

namespace grs::workloads::gkd {

/// Positioned parse failure; what() reads "file:line:col: message".
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& file, int line, int col, const std::string& message);

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  int line_;
  int col_;
};

/// Canonical text form of `k` (ends with a newline).
[[nodiscard]] std::string serialize(const KernelInfo& k);

/// Parse a .gkd document. `filename` only labels error messages.
[[nodiscard]] KernelInfo parse(const std::string& text, const std::string& filename = "<gkd>");

/// Read and parse `path`. Throws std::runtime_error when the file cannot be
/// read, ParseError when it cannot be parsed.
[[nodiscard]] KernelInfo load_file(const std::string& path);

/// Write serialize(k) to `path`; throws std::runtime_error on I/O failure.
void dump_file(const KernelInfo& k, const std::string& path);

}  // namespace grs::workloads::gkd
