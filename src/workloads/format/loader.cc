// .gkd parsing with positioned errors. Accepts the canonical serializer
// output plus comments and flexible whitespace; every structural rule that
// Program::validate()/KernelInfo::validate() would abort on is caught here
// first and reported as a ParseError with a 1-based line:column.
#include <fstream>
#include <memory>
#include <optional>
#include <vector>

#include "common/io.h"
#include "isa/text.h"
#include "workloads/format/gkd.h"

namespace grs::workloads::gkd {

ParseError::ParseError(const std::string& file, int line, int col, const std::string& message)
    : std::runtime_error(file + ":" + std::to_string(line) + ":" + std::to_string(col) + ": " +
                         message),
      line_(line),
      col_(col) {}

namespace {

struct Token {
  std::string text;
  int col = 0;  ///< 1-based column of the first character
  bool quoted = false;
};

struct TokenLine {
  int number = 0;  ///< 1-based source line
  std::vector<Token> toks;
};

/// Maximum header values the format accepts; keeps downstream u32 resource
/// arithmetic (regs_per_block = regs * threads) far from overflow.
constexpr std::uint64_t kMaxThreads = 1u << 16;
constexpr std::uint64_t kMaxRegs = 4096;

class Parser {
 public:
  Parser(const std::string& text, const std::string& filename) : file_(filename) {
    split_lines(text);
  }

  KernelInfo run() {
    parse_magic();
    parse_header();
    while (cursor_ < lines_.size()) parse_segment();
    return finish();
  }

 private:
  [[noreturn]] void fail(int line, int col, const std::string& msg) const {
    throw ParseError(file_, line, col, msg);
  }
  [[noreturn]] void fail_at(const TokenLine& l, const Token& t, const std::string& msg) const {
    fail(l.number, t.col, msg);
  }

  void split_lines(const std::string& text) {
    std::string line;
    int number = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t nl = text.find('\n', pos);
      line = text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
      ++number;
      TokenLine tl{number, tokenize(line, number)};
      if (!tl.toks.empty()) lines_.push_back(std::move(tl));
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
    end_line_ = number + 1;
  }

  std::vector<Token> tokenize(const std::string& line, int number) const {
    std::vector<Token> toks;
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++i;
      } else if (c == '#') {
        break;
      } else if (c == '"') {
        const int col = static_cast<int>(i) + 1;
        std::string value;
        ++i;
        bool closed = false;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            value += line[i + 1];
            i += 2;
          } else if (line[i] == '"') {
            ++i;
            closed = true;
            break;
          } else {
            value += line[i];
            ++i;
          }
        }
        if (!closed) fail(number, col, "unterminated string");
        toks.push_back(Token{value, col, true});
      } else if (c == ',' || c == '{' || c == '}') {
        toks.push_back(Token{std::string(1, c), static_cast<int>(i) + 1, false});
        ++i;
      } else {
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' &&
               line[i] != ',' && line[i] != '{' && line[i] != '}' && line[i] != '"' &&
               line[i] != '#') {
          ++i;
        }
        toks.push_back(
            Token{line.substr(start, i - start), static_cast<int>(start) + 1, false});
      }
    }
    return toks;
  }

  // --- token-level helpers -------------------------------------------------

  std::uint64_t parse_number(const TokenLine& l, const Token& t, const std::string& what) const {
    if (t.quoted || t.text.empty()) fail_at(l, t, "expected a number for " + what);
    std::uint64_t v = 0;
    for (char c : t.text) {
      if (c < '0' || c > '9') {
        fail_at(l, t, "expected a number for " + what + ", got '" + t.text + "'");
      }
      if (v > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
        fail_at(l, t, what + " is out of range");
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  /// "$rN" or "-"; checks the register number against the declared count.
  RegNum parse_reg(const TokenLine& l, const Token& t) const {
    if (t.text == "-") return kNoReg;
    if (t.text.size() < 3 || t.text[0] != '$' || t.text[1] != 'r') {
      fail_at(l, t, "expected a register operand ($rN or -), got '" + t.text + "'");
    }
    const Token digits{t.text.substr(2), t.col + 2, false};
    const std::uint64_t v = parse_number(l, digits, "register number");
    if (v >= regs_) {
      fail_at(l, t,
              "register $r" + std::to_string(v) + " out of range; kernel declares " +
                  std::to_string(regs_) + " registers");
    }
    return static_cast<RegNum>(v);
  }

  // --- grammar -------------------------------------------------------------

  void parse_magic() {
    if (lines_.empty()) fail(end_line_, 1, "empty document; expected 'gkd 1' magic header");
    const TokenLine& l = lines_[cursor_];
    if (l.toks[0].quoted || l.toks[0].text != "gkd") {
      fail_at(l, l.toks[0], "expected 'gkd 1' magic header");
    }
    if (l.toks.size() != 2) fail_at(l, l.toks[0], "expected 'gkd 1' magic header");
    const std::uint64_t version = parse_number(l, l.toks[1], "gkd version");
    if (version != 1) {
      fail_at(l, l.toks[1],
              "unsupported gkd version " + std::to_string(version) + " (this build reads 1)");
    }
    ++cursor_;
  }

  void header_string(const TokenLine& l, std::optional<std::string>& slot) {
    if (slot.has_value()) fail_at(l, l.toks[0], "duplicate header field '" + l.toks[0].text + "'");
    if (l.toks.size() != 2 || !l.toks[1].quoted) {
      fail_at(l, l.toks[0], "'" + l.toks[0].text + "' expects one quoted string");
    }
    slot = l.toks[1].text;
  }

  void header_number(const TokenLine& l, std::optional<std::uint64_t>& slot) {
    if (slot.has_value()) fail_at(l, l.toks[0], "duplicate header field '" + l.toks[0].text + "'");
    if (l.toks.size() != 2) fail_at(l, l.toks[0], "'" + l.toks[0].text + "' expects one number");
    slot = parse_number(l, l.toks[1], l.toks[0].text);
  }

  void parse_header() {
    std::optional<std::string> name, suite, set;
    std::optional<std::uint64_t> threads, regs, smem, grid, lanes;
    while (cursor_ < lines_.size()) {
      const TokenLine& l = lines_[cursor_];
      const Token& key = l.toks[0];
      if (key.quoted) fail_at(l, key, "expected a header field or 'segment'");
      if (key.text == "segment") break;
      if (key.text == "kernel") {
        header_string(l, name);
      } else if (key.text == "suite") {
        header_string(l, suite);
      } else if (key.text == "set") {
        header_string(l, set);
      } else if (key.text == "threads") {
        header_number(l, threads);
      } else if (key.text == "regs") {
        header_number(l, regs);
      } else if (key.text == "smem") {
        header_number(l, smem);
      } else if (key.text == "grid") {
        header_number(l, grid);
      } else if (key.text == "lanes") {
        header_number(l, lanes);
      } else {
        fail_at(l, key,
                "unknown header field '" + key.text +
                    "' (valid: kernel suite set threads regs smem grid lanes)");
      }
      ++cursor_;
    }
    const int here = cursor_ < lines_.size() ? lines_[cursor_].number : end_line_;
    auto require = [&](const auto& slot, const char* field) {
      if (!slot.has_value()) {
        fail(here, 1, std::string("missing required header field '") + field + "'");
      }
    };
    require(name, "kernel");
    require(threads, "threads");
    require(regs, "regs");
    require(grid, "grid");
    if (name->empty()) fail(here, 1, "kernel name must not be empty");
    if (*threads < 1 || *threads > kMaxThreads) {
      fail(here, 1, "threads must be in [1, " + std::to_string(kMaxThreads) + "]");
    }
    if (*regs < 1 || *regs > kMaxRegs) {
      fail(here, 1, "regs must be in [1, " + std::to_string(kMaxRegs) + "]");
    }
    if (*grid < 1 || *grid > UINT32_MAX) fail(here, 1, "grid must be in [1, 2^32)");
    if (smem.value_or(0) > UINT32_MAX) fail(here, 1, "smem is out of range");
    if (lanes.value_or(32) < 1 || lanes.value_or(32) > 32) {
      fail(here, 1, "lanes must be in [1, 32]");
    }
    kernel_.name = *name;
    kernel_.suite = suite.value_or("");
    kernel_.set = set.value_or("");
    kernel_.resources.threads_per_block = static_cast<std::uint32_t>(*threads);
    kernel_.resources.regs_per_thread = static_cast<std::uint32_t>(*regs);
    kernel_.resources.smem_per_block = static_cast<std::uint32_t>(smem.value_or(0));
    kernel_.grid_blocks = static_cast<std::uint32_t>(*grid);
    kernel_.active_lanes = static_cast<std::uint32_t>(lanes.value_or(32));
    regs_ = static_cast<std::uint32_t>(*regs);
    smem_ = kernel_.resources.smem_per_block;
  }

  void parse_segment() {
    const TokenLine& head = lines_[cursor_];
    if (head.toks[0].quoted || head.toks[0].text != "segment") {
      fail_at(head, head.toks[0], "expected 'segment xN {'");
    }
    if (head.toks.size() != 3 || head.toks[2].text != "{") {
      fail_at(head, head.toks[0], "expected 'segment xN {'");
    }
    const Token& iters_tok = head.toks[1];
    if (iters_tok.quoted || iters_tok.text.size() < 2 || iters_tok.text[0] != 'x') {
      fail_at(head, iters_tok, "expected an iteration count xN");
    }
    const Token digits{iters_tok.text.substr(1), iters_tok.col + 1, false};
    const std::uint64_t iters = parse_number(head, digits, "iteration count");
    if (iters < 1 || iters > UINT32_MAX) {
      fail_at(head, iters_tok, "segment iteration count must be in [1, 2^32)");
    }
    ++cursor_;

    Segment seg;
    seg.iterations = static_cast<std::uint32_t>(iters);
    bool closed = false;
    while (cursor_ < lines_.size()) {
      const TokenLine& l = lines_[cursor_];
      if (l.toks[0].text == "}" && !l.toks[0].quoted) {
        if (l.toks.size() != 1) fail_at(l, l.toks[1], "unexpected token after '}'");
        if (seg.instrs.empty()) fail_at(l, l.toks[0], "empty segment");
        ++cursor_;
        closed = true;
        break;
      }
      seg.instrs.push_back(parse_instruction(l));
      ++cursor_;
    }
    if (!closed) fail(end_line_, 1, "unterminated segment (missing '}')");
    segments_.push_back(std::move(seg));
  }

  Instruction parse_instruction(const TokenLine& l) {
    const Token& op_tok = l.toks[0];
    if (op_tok.quoted) fail_at(l, op_tok, "expected an opcode");
    const std::optional<Op> op = op_from_string(op_tok.text);
    if (!op.has_value()) {
      fail_at(l, op_tok,
              "unknown opcode '" + op_tok.text + "' (valid: " + all_op_names() + ")");
    }
    Instruction i;
    i.op = *op;
    std::size_t pos = 1;
    auto done = [&]() { return pos >= l.toks.size(); };
    auto cur = [&]() -> const Token& { return l.toks[pos]; };
    auto expect_comma = [&]() {
      if (done() || cur().text != ",") {
        fail(l.number, done() ? last_col(l) : cur().col, "expected ','");
      }
      ++pos;
    };
    auto expect_operand = [&](const char* what) -> const Token& {
      if (done()) fail(l.number, last_col(l), std::string("expected ") + what);
      return l.toks[pos++];
    };

    switch (*op) {
      case Op::kAlu:
      case Op::kSfu: {
        RegNum* slots[3] = {&i.dst, &i.src0, &i.src1};
        for (int k = 0; k < 3 && !done(); ++k) {
          if (k > 0) expect_comma();
          *slots[k] = parse_reg(l, expect_operand("a register operand"));
        }
        break;
      }
      case Op::kLdGlobal:
      case Op::kStGlobal: {
        const Token& reg = expect_operand("a register operand");
        if (*op == Op::kLdGlobal) {
          i.dst = parse_reg(l, reg);
        } else {
          i.src0 = parse_reg(l, reg);
        }
        expect_comma();
        const Token& pat = expect_operand("a memory pattern");
        const std::optional<MemPattern> pattern = mem_pattern_from_string(pat.text);
        if (!pattern.has_value()) {
          fail_at(l, pat,
                  "unknown memory pattern '" + pat.text + "' (valid: " +
                      all_mem_pattern_names() + ")");
        }
        i.pattern = *pattern;
        const Token& loc = expect_operand("a locality");
        const std::optional<Locality> locality = locality_from_string(loc.text);
        if (!locality.has_value()) {
          fail_at(l, loc,
                  "unknown locality '" + loc.text + "' (valid: " + all_locality_names() + ")");
        }
        i.locality = *locality;
        const std::uint64_t region = parse_keyed_number(l, expect_operand("region=N"), "region");
        if (region > 255) fail_at(l, l.toks[pos - 1], "region must be <= 255");
        i.region = static_cast<std::uint8_t>(region);
        const std::uint64_t lines = parse_keyed_number(l, expect_operand("lines=N"), "lines");
        if (lines > UINT32_MAX) fail_at(l, l.toks[pos - 1], "lines is out of range");
        i.footprint_lines = static_cast<std::uint32_t>(lines);
        if (!done() && *op == Op::kLdGlobal && !cur().quoted &&
            cur().text.compare(0, 5, "addr=") == 0) {
          const Token& addr = l.toks[pos++];
          const Token reg_tok{addr.text.substr(5), addr.col + 5, false};
          i.src0 = parse_reg(l, reg_tok);
        }
        if (!done() && !cur().quoted && cur().text == "profile") {
          const Token& kw = l.toks[pos++];
          if (done() || cur().quoted || cur().text != "{") {
            fail(l.number, done() ? last_col(l) : cur().col, "expected '{' after 'profile'");
          }
          ++pos;
          if (!done()) fail_at(l, cur(), "unexpected token after 'profile {'");
          i.profile = parse_profile_block(l, kw);
        }
        break;
      }
      case Op::kLdShared:
      case Op::kStShared: {
        const Token& reg = expect_operand("a register operand");
        if (*op == Op::kLdShared) {
          i.dst = parse_reg(l, reg);
        } else {
          i.src0 = parse_reg(l, reg);
        }
        expect_comma();
        const Token& off = expect_operand("smem[OFFSET]");
        i.smem_offset = parse_smem_offset(l, off);
        break;
      }
      case Op::kBarrier:
        break;
      case Op::kExit:
        if (exit_line_ != 0) {
          fail_at(l, op_tok, "program must contain exactly one exit");
        }
        exit_line_ = l.number;
        exit_col_ = op_tok.col;
        exit_seg_ = segments_.size();  // index of the segment being parsed
        break;
    }
    if (!done()) {
      fail_at(l, cur(), "unexpected token '" + cur().text + "' after '" + op_tok.text + "'");
    }
    if (i.op == Op::kExit) exit_is_last_in_seg_ = true;
    if (i.op != Op::kExit && exit_line_ != 0 && exit_seg_ == segments_.size()) {
      exit_is_last_in_seg_ = false;
    }
    return i;
  }

  /// One `value:weight` histogram entry; `cold` is legal only in `reuse`.
  ProfileBucket parse_bucket(const TokenLine& l, const Token& t, bool allow_cold) {
    const std::size_t colon = t.text.find(':');
    if (t.quoted || colon == std::string::npos || colon == 0 ||
        colon + 1 >= t.text.size()) {
      fail_at(l, t, "expected a VALUE:WEIGHT histogram entry, got '" + t.text + "'");
    }
    ProfileBucket b;
    const std::string value = t.text.substr(0, colon);
    if (value == "cold") {
      if (!allow_cold) fail_at(l, t, "'cold' is only valid in the reuse histogram");
      b.value = MemProfile::kColdReuse;
    } else {
      const bool neg = value[0] == '-';
      const Token digits{value.substr(neg ? 1 : 0), t.col + (neg ? 1 : 0), false};
      const std::uint64_t v = parse_number(l, digits, "histogram value");
      if (v > static_cast<std::uint64_t>(INT64_MAX)) {
        fail_at(l, t, "histogram value is out of range");
      }
      b.value = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
    }
    const Token weight{t.text.substr(colon + 1), t.col + static_cast<int>(colon) + 1, false};
    b.weight = parse_number(l, weight, "histogram weight");
    if (b.weight == 0) fail_at(l, weight, "histogram weight must be >= 1");
    return b;
  }

  void parse_profile_hist(const TokenLine& l, std::vector<ProfileBucket>& out, bool& seen,
                          bool allow_cold) {
    if (seen) fail_at(l, l.toks[0], "duplicate profile field '" + l.toks[0].text + "'");
    seen = true;
    if (l.toks.size() < 2) {
      fail(l.number, last_col(l), "'" + l.toks[0].text + "' expects VALUE:WEIGHT entries");
    }
    for (std::size_t k = 1; k < l.toks.size(); ++k) {
      out.push_back(parse_bucket(l, l.toks[k], allow_cold));
    }
  }

  /// The multi-line `profile { ... }` block opened on `head`; consumes lines
  /// up to its closing '}' and leaves cursor_ on that line (the segment loop
  /// steps past it).
  std::shared_ptr<const MemProfile> parse_profile_block(const TokenLine& head,
                                                        const Token& kw) {
    MemProfile p;
    bool coalesce = false, stride = false, reuse = false, footprint = false;
    ++cursor_;
    bool closed = false;
    while (cursor_ < lines_.size()) {
      const TokenLine& l = lines_[cursor_];
      const Token& key = l.toks[0];
      if (!key.quoted && key.text == "}") {
        if (l.toks.size() != 1) fail_at(l, l.toks[1], "unexpected token after '}'");
        closed = true;
        break;
      }
      if (key.quoted) fail_at(l, key, "expected a profile field or '}'");
      if (key.text == "coalesce") {
        parse_profile_hist(l, p.coalesce, coalesce, false);
      } else if (key.text == "stride") {
        parse_profile_hist(l, p.stride, stride, false);
      } else if (key.text == "reuse") {
        parse_profile_hist(l, p.reuse, reuse, true);
      } else if (key.text == "footprint") {
        if (footprint) fail_at(l, key, "duplicate profile field 'footprint'");
        footprint = true;
        if (l.toks.size() != 2) fail_at(l, key, "'footprint' expects one number");
        p.footprint_lines = parse_number(l, l.toks[1], "footprint");
      } else {
        fail_at(l, key,
                "unknown profile field '" + key.text +
                    "' (valid: coalesce stride reuse footprint)");
      }
      ++cursor_;
    }
    if (!closed) fail(end_line_, 1, "unterminated profile block (missing '}')");
    auto require = [&](bool seen, const char* field) {
      if (!seen) {
        fail(lines_[cursor_].number, lines_[cursor_].toks[0].col,
             std::string("profile block is missing the '") + field + "' field");
      }
    };
    require(coalesce, "coalesce");
    require(stride, "stride");
    require(reuse, "reuse");
    require(footprint, "footprint");
    p.canonicalize();
    if (const std::string e = p.check(); !e.empty()) {
      fail_at(head, kw, "invalid profile: " + e);
    }
    return std::make_shared<const MemProfile>(std::move(p));
  }

  std::uint64_t parse_keyed_number(const TokenLine& l, const Token& t, const std::string& key) {
    const std::string prefix = key + "=";
    if (t.quoted || t.text.compare(0, prefix.size(), prefix) != 0) {
      fail_at(l, t, "expected " + key + "=N, got '" + t.text + "'");
    }
    const Token digits{t.text.substr(prefix.size()), t.col + static_cast<int>(prefix.size()),
                       false};
    return parse_number(l, digits, key);
  }

  std::uint32_t parse_smem_offset(const TokenLine& l, const Token& t) const {
    if (t.quoted || t.text.compare(0, 5, "smem[") != 0 || t.text.back() != ']') {
      fail_at(l, t, "expected smem[OFFSET], got '" + t.text + "'");
    }
    const Token digits{t.text.substr(5, t.text.size() - 6), t.col + 5, false};
    const std::uint64_t off = parse_number(l, digits, "scratchpad offset");
    if (smem_ == 0) {
      fail_at(l, t, "scratchpad access in a kernel that declares smem 0");
    }
    if (off >= smem_) {
      fail_at(l, t,
              "scratchpad offset " + std::to_string(off) + " is outside the " +
                  std::to_string(smem_) + "-byte block allocation");
    }
    return static_cast<std::uint32_t>(off);
  }

  int last_col(const TokenLine& l) const {
    const Token& t = l.toks.back();
    return t.col + static_cast<int>(t.text.size());
  }

  KernelInfo finish() {
    if (segments_.empty()) fail(end_line_, 1, "document has no segments");
    if (exit_line_ == 0) fail(end_line_, 1, "program must end with an 'exit' instruction");
    if (exit_seg_ != segments_.size() - 1 || !exit_is_last_in_seg_) {
      fail(exit_line_, exit_col_, "exit must be the last instruction of the last segment");
    }
    if (segments_.back().iterations != 1) {
      fail(exit_line_, exit_col_, "the exit segment must run exactly once (x1)");
    }
    kernel_.program = Program(std::move(segments_), static_cast<RegNum>(regs_));
    // Belt and braces: the checks above are a superset of validate()'s, so a
    // failure here is a loader bug, not bad input.
    kernel_.validate();
    return std::move(kernel_);
  }

  std::string file_;
  std::vector<TokenLine> lines_;
  std::size_t cursor_ = 0;
  int end_line_ = 1;  ///< 1-based line just past the document, for EOF errors

  KernelInfo kernel_;
  std::uint32_t regs_ = 0;
  std::uint32_t smem_ = 0;
  std::vector<Segment> segments_;
  int exit_line_ = 0;
  int exit_col_ = 0;
  std::size_t exit_seg_ = 0;
  bool exit_is_last_in_seg_ = false;
};

}  // namespace

KernelInfo parse(const std::string& text, const std::string& filename) {
  return Parser(text, filename).run();
}

KernelInfo load_file(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text.has_value()) throw std::runtime_error("cannot open " + path);
  return parse(*text, path);
}

void dump_file(const KernelInfo& k, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f << serialize(k);
  if (!f) throw std::runtime_error("failed writing " + path);
}

}  // namespace grs::workloads::gkd
