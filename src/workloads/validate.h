// .gkd lint: check a kernel description against a GpuConfig without
// simulating — parseability, SM fit, occupancy/sharing plausibility, and
// profile-histogram sanity — reporting positioned "file:line: message"
// diagnostics instead of aborting. Backing for `grs_cli --validate`.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"

namespace grs::workloads {

/// Lint `text` as a .gkd document against `cfg`. Returns one fully formatted
/// "file:line: message" diagnostic per problem; empty means clean. Never
/// throws on malformed input (parse failures become diagnostics).
[[nodiscard]] std::vector<std::string> lint_gkd(const std::string& text,
                                                const std::string& filename,
                                                const GpuConfig& cfg);

/// Read `path` and lint it; unreadable files yield a single diagnostic.
[[nodiscard]] std::vector<std::string> lint_gkd_file(const std::string& path,
                                                     const GpuConfig& cfg);

}  // namespace grs::workloads
