#include "workloads/suites.h"

#include <utility>

#include "common/check.h"
#include "common/prng.h"
#include "isa/builder.h"

namespace grs::workloads {

namespace {

/// Permute register ids >= `keep` with a seeded pseudo-random permutation.
/// Models PTXPlus declaration order, where register numbers are assigned in
/// declaration order rather than first-use order (paper Fig. 7a): programs
/// below are written in first-use order, then scrambled; the unroll/reorder
/// pass recovers first-use order exactly. `keep` controls how benign the
/// natural declaration order is for a kernel (registers below `keep` stay in
/// place, so a staging loop that only uses them survives without the unroll
/// optimization — as hotspot's does in the paper, where the no-optimization
/// configuration already gains 13.65%).
Program scramble_registers(const Program& p, std::uint64_t seed, RegNum keep) {
  const RegNum n = p.num_regs();
  GRS_CHECK(keep <= n);
  std::vector<RegNum> perm(n);
  for (RegNum r = 0; r < n; ++r) perm[r] = r;
  SplitMix64 rng(seed);
  for (RegNum i = n; i > keep + 1; --i) {  // Fisher-Yates over [keep, n)
    const RegNum j = keep + static_cast<RegNum>(rng.next_below(i - keep));
    std::swap(perm[i - 1], perm[j]);
  }
  std::vector<Segment> segs = p.segments();
  auto remap = [&perm](RegNum& r) {
    if (r != kNoReg) r = perm[r];
  };
  for (auto& s : segs) {
    for (auto& i : s.instrs) {
      remap(i.dst);
      remap(i.src0);
      remap(i.src1);
    }
  }
  return Program(std::move(segs), n);
}

KernelInfo make(std::string name, std::string suite, std::string set,
                std::uint32_t threads, std::uint32_t regs, std::uint32_t smem,
                std::uint32_t grid, std::uint32_t lanes, Program program) {
  KernelInfo k;
  k.name = std::move(name);
  k.suite = std::move(suite);
  k.set = std::move(set);
  k.resources = KernelResources{threads, regs, smem};
  k.grid_blocks = grid;
  k.active_lanes = lanes;
  k.program = std::move(program);
  k.validate();
  return k;
}

/// Emit ALU ops that introduce registers from..upto-1 in first-use order.
void introduce_regs(ProgramBuilder& b, RegNum from, RegNum upto) {
  for (RegNum r = from; r < upto; ++r) b.alu(r, r > 0 ? static_cast<RegNum>(r - 1) : kNoReg);
}

/// A dependent ALU chain cycling through regs [lo, hi).
void alu_sweep(ProgramBuilder& b, RegNum lo, RegNum hi, std::uint32_t n) {
  GRS_CHECK(hi > lo);
  const RegNum span = static_cast<RegNum>(hi - lo);
  for (std::uint32_t i = 0; i < n; ++i) {
    const RegNum dst = static_cast<RegNum>(lo + (i + 1) % span);
    const RegNum src = static_cast<RegNum>(lo + i % span);
    b.alu(dst, src, dst);
  }
}

constexpr std::uint32_t kL2Lines = 6144;  ///< 768KB / 128B

}  // namespace

// ===========================================================================
// Set-1: register-limited kernels (paper Table II)
//
// Shape shared by all Set-1 programs (mirrors the dynamic register-usage skew
// of real PTXPlus, where a handful of registers carry most instructions):
//   stage A  staging loop touching only registers {0,1} — exactly the
//            instructions a non-owner warp can run on its private registers
//            at 90% sharing (floor(regs*0.1) >= 2 for every Set-1 kernel);
//   stage B  main loop over roughly the lower half of the register file;
//   stage C  epilogue loop touching every register.
// The per-kernel knobs are the stage lengths (how much work a non-owner can
// overlap), the memory behaviour per stage, and the scramble watermark (how
// much the unroll/reorder pass recovers).
// ===========================================================================

// backprop/bpnn_adjust_weights: coalesced streaming weight update, modest
// arithmetic, tiny staging phase. Paper: +5.82%, realized only once OWF
// stops the extra warps from interfering.
KernelInfo backprop() {
  ProgramBuilder b(24);
  b.loop(18, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 2, 1024);
    l.alu(1, 0, 1);
  });
  b.loop(26, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kGridShared, 2, 1024);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kBlockLocal, 4, 8);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3).alu(7, 6, 4);
    l.alu(8, 7, 5).alu(9, 8, 6).alu(10, 9, 7).alu(11, 10, 8);
    l.st_global(11, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  b.loop(4, [](ProgramBuilder& l) {
    l.ld_global(12, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    alu_sweep(l, 12, 24, 12);
    l.st_global(23, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  return make("backprop", "GPGPU-Sim", "set1", 256, 24, 0, 420, 32,
              scramble_registers(b.build(), 0xB5CB01u, 2));
}

// b+tree/findRangeK: irregular range lookup over a grid-shared node pool,
// divergent (24/32 lanes). A real staging phase (key setup + first levels in
// two registers) lets non-owner warps overlap ~15% of the program; behaves
// like hotspot in the paper's ablation. Paper: +11.98%.
KernelInfo btree() {
  ProgramBuilder b(24);
  b.loop(22, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 1, 2048);
    l.alu(1, 0, 1).alu(1, 1);
  });
  b.loop(22, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kStrided4, Locality::kGridShared, 1, 2048);
    l.alu(3, 2).alu(4, 3, 2).alu(5, 4);
    l.ld_global(6, MemPattern::kStrided4, Locality::kGridShared, 1, 2048, 5);
    l.alu(7, 6, 5).alu(8, 7).alu(9, 8, 7);
  });
  b.loop(4, [](ProgramBuilder& l) {
    alu_sweep(l, 9, 24, 15);
    l.st_global(20, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });
  return make("b+tree", "GPGPU-Sim", "set1", 508, 24, 0, 168, 24,
              scramble_registers(b.build(), 0xB7EEu, 2));
}

// hotspot/calculate_temp: 2D thermal stencil, compute-bound, strong per-warp
// window reuse. Its natural declaration order already favours the staging
// loop (scramble watermark 2), matching the paper where hotspot gains 13.65%
// with *no* optimization and unrolling adds only ~1.5 points. Paper: +21.76%
// with the full stack.
KernelInfo hotspot() {
  ProgramBuilder b(36);
  b.loop(5, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 1, 512);
    l.alu(1, 0, 1).alu(1, 1);
  });
  b.loop(26, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kGridShared, 1, 512);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kBlockLocal, 2, 10);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3).alu(7, 6, 4).alu(8, 7, 5);
    l.alu(9, 8, 6).alu(10, 9, 7).alu(11, 10, 8).alu(12, 11, 9);
    l.st_global(12, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  b.loop(4, [](ProgramBuilder& l) {
    l.ld_global(13, MemPattern::kCoalesced, Locality::kBlockLocal, 2, 10);
    alu_sweep(l, 13, 36, 18);
    l.st_global(30, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  return make("hotspot", "RODINIA", "set1", 256, 36, 512, 252, 32,
              scramble_registers(b.build(), 0x407590u, 2));
}

// LIB/Pathcalc: Monte-Carlo path calculation; the whole register file is hot
// from the first iteration (no staging phase to speak of) and the working
// set sits at the L2 capacity, so the extra shared blocks buy almost
// nothing. Paper: +0.84%.
KernelInfo lib() {
  ProgramBuilder b(36);
  introduce_regs(b, 0, 2);
  b.loop(34, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kRandom, 1, kL2Lines);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kRandom, 1, kL2Lines);
    l.alu(4, 2, 3).alu(5, 4).alu(6, 5, 4).alu(7, 6);
    alu_sweep(l, 8, 36, 6);
    l.st_global(9, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });
  return make("LIB", "GPGPU-Sim", "set1", 192, 36, 0, 336, 32,
              scramble_registers(b.build(), 0x11Bu, 2));
}

// MUM/mummergpu: suffix-tree matching; memory-bound, divergent (20/32), and
// its long staging phase is itself made of scattered reads — so non-owner
// warps thrash L1/L2 unless Dyn/OWF rein them in. Paper: -0.15% with no
// optimization, +6.45% with Dyn, +24.14% with the full stack.
KernelInfo mum() {
  ProgramBuilder b(28);
  b.loop(8, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kStrided2, Locality::kRandom, 1, kL2Lines);
    l.alu(1, 0, 1).alu(1, 1).alu(1, 1, 0);
  });
  b.loop(20, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kStrided2, Locality::kRandom, 1, kL2Lines);
    l.alu(3, 2).alu(4, 3, 2).alu(5, 4);
    l.ld_global(6, MemPattern::kStrided2, Locality::kGridShared, 2, 1024, 5);
    l.alu(7, 6).alu(8, 7, 6).alu(9, 8);
  });
  b.loop(4, [](ProgramBuilder& l) {
    alu_sweep(l, 9, 28, 14);
    l.st_global(20, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  return make("MUM", "RODINIA", "set1", 256, 28, 0, 336, 20,
              scramble_registers(b.build(), 0x3503u, 2));
}

// mri-q/ComputeQ: compute-bound sin/cos chains over a read-only table whose
// footprint just fits L1 at 5 resident blocks; the sixth (shared) block
// pushes it over capacity. Paper: -0.72%, the only Set-1 slowdown.
KernelInfo mriq() {
  ProgramBuilder b(24);
  b.loop(4, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kBlockLocal, 1, 24);
    l.alu(1, 0, 1);
  });
  b.loop(30, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kBlockLocal, 1, 24);
    l.sfu(3, 2).sfu(4, 3);
    l.alu(5, 4, 3).alu(6, 5).alu(7, 6, 5).alu(8, 7).alu(9, 8, 7).alu(10, 9);
    l.alu(11, 10, 9).alu(12, 11);
  });
  b.loop(4, [](ProgramBuilder& l) {
    alu_sweep(l, 12, 24, 12);
    l.st_global(18, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });
  return make("mri-q", "PARBOIL", "set1", 256, 24, 0, 420, 32,
              scramble_registers(b.build(), 0x3419u, 2));
}

// sgemm/mysgemmNT: register-blocked matrix multiply. The paper's Fig. 7 shows
// exactly this kernel's PTXPlus declarations putting hot registers at high
// numbers, so the no-optimization configuration gets no staging overlap at
// all (scramble watermark 0) and gains appear only with the optimizations.
// Paper: +4.06%.
KernelInfo sgemm() {
  ProgramBuilder b(48);
  b.loop(10, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.st_shared(0, 256);
    l.alu(1, 0, 1);
  });
  b.barrier();
  b.loop(24, [](ProgramBuilder& l) {
    l.ld_shared(2, 128);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kGridShared, 2, 768);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3).alu(7, 6, 4).alu(8, 7, 5);
    l.alu(9, 8, 6).alu(10, 9, 7).alu(11, 10, 8).alu(12, 11, 9);
    alu_sweep(l, 13, 24, 5);
  });
  b.loop(6, [](ProgramBuilder& l) {
    alu_sweep(l, 24, 48, 24);
    l.st_global(40, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  return make("sgemm", "PARBOIL", "set1", 128, 48, 1024, 420, 32,
              scramble_registers(b.build(), 0x56E33u, 0));
}

// stencil/block2D: 3D 7-point stencil; streams one plane while re-reading
// two planes from the warp's sliding window. Latency-bound at 2 resident
// blocks, so both the third block and GTO-like scheduling pay off. Paper:
// +23.45%, realized with OWF.
KernelInfo stencil() {
  ProgramBuilder b(28);
  b.loop(26, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 4, 1536);
    l.alu(1, 0, 1);
  });
  b.loop(26, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kGridShared, 4, 1536);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kBlockLocal, 3, 6);
    l.ld_global(4, MemPattern::kCoalesced, Locality::kBlockLocal, 3, 6);
    l.alu(5, 2, 3).alu(6, 5, 4).alu(7, 6, 2).alu(8, 7, 3).alu(9, 8, 4).alu(10, 9, 5);
    l.st_global(10, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });
  b.loop(3, [](ProgramBuilder& l) {
    alu_sweep(l, 10, 28, 16);
    l.st_global(20, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });
  return make("stencil", "PARBOIL", "set1", 512, 28, 0, 168, 32,
              scramble_registers(b.build(), 0x57E2C11u, 2));
}

// ===========================================================================
// Set-2: scratchpad-limited kernels (paper Table III)
//
// The analogous shape in scratchpad-offset space: a staging phase confined to
// the private region (offsets below t*Rtb), then full-tile phases. The
// private region at 90% sharing is t*Rtb = 10% of the allocation.
// ===========================================================================

// convolutionSeparable rows pass: the tile fills the whole 2560B allocation
// almost immediately (halo at the top), so the staging phase is short; gains
// come mostly from the two extra resident blocks and OWF adds nothing (the
// paper reports CONV1 slightly *better* without optimization).
KernelInfo conv1() {
  ProgramBuilder b(16);
  b.loop(4, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 1, 768);
    l.st_shared(0, 128);  // private region (< 256B at 90% sharing)
    l.alu(1, 0, 1);
  });
  b.loop(20, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kGridShared, 1, 768);
    l.st_shared(2, 2304);  // halo: top of the tile
    l.barrier();
    l.ld_shared(3, 0);
    l.ld_shared(4, 1280);
    l.ld_shared(5, 2432);
    l.alu(6, 3, 4).alu(7, 6, 5).alu(8, 7, 3).alu(9, 8, 4);
    l.st_global(9, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
    l.barrier();
  });
  return make("CONV1", "CUDA-SDK", "set2", 64, 16, 2560, 504, 32, b.build());
}

// convolutionSeparable columns pass: the first quarter of the program stages
// data through the low 10% of the 5184B tile, so non-owner blocks overlap
// real work before blocking. Paper: +15.85% with OWF.
KernelInfo conv2() {
  ProgramBuilder b(16);
  b.loop(14, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 1, 768);
    l.st_shared(0, 256);  // private region (< 518B at 90% sharing)
    l.ld_shared(1, 384);
    l.alu(1, 1, 0);
  });
  b.barrier();
  b.loop(20, [](ProgramBuilder& l) {
    l.ld_shared(2, 640);
    l.ld_shared(3, 2592);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3);
    l.ld_shared(7, 4992);
    l.alu(8, 7, 6).alu(9, 8, 7).alu(10, 9);
    l.st_global(10, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  });
  return make("CONV2", "CUDA-SDK", "set2", 128, 16, 5184, 252, 32, b.build());
}

// lavaMD/kernel_gpu_cuda: particle interactions; compute-heavy, and — as the
// paper observes — none of its scratchpad *accesses* land in the shared
// region (the tail of the 7200B allocation is padding), so the extra blocks
// run completely unhindered: a true residency doubling. Paper: +28% with no
// optimization, +29.96% with OWF — the best scratchpad result.
KernelInfo lavamd() {
  ProgramBuilder b(20);
  introduce_regs(b, 0, 2);
  b.st_shared(0, 0);
  b.st_shared(1, 256);
  b.barrier();
  b.loop(26, [](ProgramBuilder& l) {
    l.ld_shared(2, 128);
    l.ld_shared(3, 512);  // all accesses stay below 700B (paper §VI-B)
    // four independent chains: the real kernel has ample ILP
    l.alu(4, 2, 3).alu(5, 3, 2).alu(6, 2, 3).alu(7, 3, 2);
    l.alu(8, 4, 2).alu(9, 5, 3).alu(10, 6, 2).alu(11, 7, 3);
    l.ld_global(12, MemPattern::kCoalesced, Locality::kBlockLocal, 1, 20);
    l.alu(13, 12, 10).alu(14, 13, 11);
    alu_sweep(l, 15, 20, 5);
  });
  b.st_global(18, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  return make("lavaMD", "RODINIA", "set2", 128, 20, 7200, 168, 32, b.build());
}

namespace {
// needle (Needleman-Wunsch) passes: tiny 16-thread blocks (1 warp), a
// wavefront over a scratchpad tile with a barrier per diagonal. Gains come
// from lifting residency from 7 to 8 blocks, plus whatever fraction of the
// sweep stays in the private region — NW2's second pass works longer in the
// low part of the tile than NW1's first pass. Paper: NW1 +5.62%, NW2 +9.03%.
KernelInfo make_nw(const char* name, std::uint32_t staging_iters) {
  ProgramBuilder b(16);
  b.loop(staging_iters, [](ProgramBuilder& l) {
    l.ld_shared(0, 64);  // private region (< 218B at 90% sharing)
    l.alu(1, 0, 1);
    l.st_shared(1, 128);
    l.barrier();
  });
  b.loop(14, [](ProgramBuilder& l) {
    l.ld_shared(2, 512);
    l.ld_shared(3, 1024);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3);
    l.st_shared(6, 2048);
    l.barrier();
  });
  b.st_global(6, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
  return make(name, "RODINIA", "set2", 16, 16, 2180, 784, 16, b.build());
}
}  // namespace

KernelInfo nw1() { return make_nw("NW1", 2); }
KernelInfo nw2() { return make_nw("NW2", 9); }

// srad_cuda_1: the loop's first instruction reads from high in the tile with
// a barrier placed right next to it (paper §VI-B), which pins non-owner
// blocks at the very top of every iteration at 90% sharing. At 50% sharing
// the loop's working range (<= 3072B) is entirely private, so the single
// extra pair overlaps almost the whole program — SRAD1 peaks mid-sweep in
// the paper's Table VII.
KernelInfo srad1() {
  ProgramBuilder b(16);
  introduce_regs(b, 0, 2);
  b.loop(22, [](ProgramBuilder& l) {
    l.ld_shared(2, 2560);  // shared at 90% (>614B) but private at 50% (<3072B)
    l.barrier();           // "barrier placed next to" the shared access
    l.alu(3, 2).alu(4, 3, 2).alu(5, 4).alu(6, 5, 4);
    l.ld_global(7, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.alu(8, 7, 6);
    l.st_shared(8, 1024);
    l.barrier();
  });
  b.st_shared(8, 5888);  // one halo spill at the very top of the tile
  b.barrier();
  b.st_global(8, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  return make("SRAD1", "RODINIA", "set2", 256, 16, 6144, 168, 32, b.build());
}

// srad_cuda_2: diffusion update; a long staging phase in the low 10% of the
// 5120B tile gives non-owner blocks substantial overlap even at 90% sharing.
// Paper: +25.73%.
KernelInfo srad2() {
  ProgramBuilder b(16);
  b.loop(18, [](ProgramBuilder& l) {
    l.ld_global(0, MemPattern::kCoalesced, Locality::kGridShared, 1, 1024);
    l.st_shared(0, 192);  // private region (< 512B at 90% sharing)
    l.ld_shared(1, 320);
    l.alu(1, 1, 0);
  });
  b.barrier();
  b.loop(16, [](ProgramBuilder& l) {
    l.ld_shared(2, 832);
    l.ld_shared(3, 1856);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3).alu(7, 6, 4);
    l.ld_global(8, MemPattern::kCoalesced, Locality::kGridShared, 1, 1024);
    l.alu(9, 8, 7).alu(10, 9, 8);
    l.st_shared(10, 4800);
  });
  b.barrier();
  b.st_global(10, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  return make("SRAD2", "RODINIA", "set2", 256, 16, 5120, 252, 32, b.build());
}

// ===========================================================================
// Set-3: kernels limited by threads or blocks (paper Table IV). The sharing
// runtime must leave these untouched: no extra blocks fit, so every block
// launches in unsharing mode and Shared-X behaves exactly like Unshared-X.
// ===========================================================================

// backprop/bpnn_layerforward: thread-limited (6 blocks of 256 threads fill
// the 1536-thread cap before any resource runs out).
KernelInfo backprop_layerforward() {
  ProgramBuilder b(16);
  introduce_regs(b, 0, 2);
  b.st_shared(0, 0);
  b.barrier();
  b.loop(24, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.ld_shared(3, 128);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3).alu(7, 6, 4);
    l.st_shared(7, 256);
    l.barrier();
  });
  b.st_global(7, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  return make("backprop-L", "RODINIA", "set3", 256, 16, 1088, 210, 32, b.build());
}

// BFS: frontier expansion; thread-limited, divergent, scattered reads.
KernelInfo bfs() {
  ProgramBuilder b(12);
  introduce_regs(b, 0, 2);
  b.loop(26, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kScatter8, Locality::kRandom, 1, 2 * kL2Lines);
    l.alu(3, 2).alu(4, 3, 2);
    l.st_global(4, MemPattern::kScatter8, Locality::kRandom, 2, 2 * kL2Lines);
  });
  introduce_regs(b, 5, 12);
  return make("BFS", "GPGPU-Sim", "set3", 512, 12, 0, 126, 16, b.build());
}

// gaussian/FAN2: small 64-thread blocks; the 8-blocks/SM cap binds first.
KernelInfo gaussian() {
  ProgramBuilder b(14);
  introduce_regs(b, 0, 2);
  b.loop(24, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kStreaming, 1, 0);
    l.ld_global(3, MemPattern::kCoalesced, Locality::kGridShared, 2, 512);
    l.alu(4, 2, 3).alu(5, 4, 2).alu(6, 5, 3);
    l.st_global(6, MemPattern::kCoalesced, Locality::kStreaming, 3, 0);
  });
  introduce_regs(b, 7, 14);
  return make("gaussian", "RODINIA", "set3", 64, 14, 0, 336, 32, b.build());
}

// NN/executeSecondLayer: blocks-limited; small compute-heavy blocks.
KernelInfo nn() {
  ProgramBuilder b(12);
  introduce_regs(b, 0, 2);
  b.loop(22, [](ProgramBuilder& l) {
    l.ld_global(2, MemPattern::kCoalesced, Locality::kGridShared, 1, 1024);
    l.alu(3, 2).alu(4, 3, 2).alu(5, 4, 3).alu(6, 5, 4).alu(7, 6, 5).alu(8, 7, 6);
  });
  introduce_regs(b, 9, 12);
  b.st_global(9, MemPattern::kCoalesced, Locality::kStreaming, 2, 0);
  return make("NN", "GPGPU-Sim", "set3", 128, 12, 0, 336, 32, b.build());
}

// ===========================================================================
// Registry
// ===========================================================================

std::vector<KernelInfo> set1() {
  return {backprop(), btree(), hotspot(), lib(), mum(), mriq(), sgemm(), stencil()};
}

std::vector<KernelInfo> set2() {
  return {conv1(), conv2(), lavamd(), nw1(), nw2(), srad1(), srad2()};
}

std::vector<KernelInfo> set3() {
  return {backprop_layerforward(), bfs(), gaussian(), nn()};
}

std::optional<KernelInfo> find_by_name(const std::string& name) {
  for (auto set_fn : {set1, set2, set3}) {
    for (auto& k : set_fn()) {
      if (k.name == name) return std::move(k);
    }
  }
  return std::nullopt;
}

KernelInfo by_name(const std::string& name) {
  if (auto k = find_by_name(name)) return *std::move(k);
  std::fprintf(stderr, "unknown kernel '%s'; valid names:", name.c_str());
  for (const auto& n : all_names()) std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  GRS_CHECK_MSG(false, "unknown kernel name");
  return {};
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (auto set_fn : {set1, set2, set3}) {
    for (auto& k : set_fn()) names.push_back(k.name);
  }
  return names;
}

}  // namespace grs::workloads
