#include "workloads/kernel_info.h"

#include "common/check.h"

namespace grs {

void KernelInfo::validate() const {
  GRS_CHECK_MSG(!name.empty(), "kernel needs a name");
  GRS_CHECK(resources.threads_per_block >= 1);
  GRS_CHECK(grid_blocks >= 1);
  GRS_CHECK(active_lanes >= 1 && active_lanes <= 32);
  program.validate();
  GRS_CHECK_MSG(program.num_regs() == resources.regs_per_thread,
                "program register count must match the kernel's declared demand");
  GRS_CHECK_MSG(program.max_smem_offset() < std::max<std::uint32_t>(resources.smem_per_block, 1),
                "program touches scratchpad beyond the block's allocation");
}

}  // namespace grs
