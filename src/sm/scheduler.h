// Warp scheduling policies (paper §II, §IV-A, §VI).
//
// Each SM runs `num_schedulers` independent scheduler instances; warps are
// statically assigned by slot parity. Every cycle the SM hands a scheduler
// the list of its warps that are *issuable* this cycle and the scheduler
// picks one according to its policy:
//
//   LRR       loose round-robin over warp slots (GPGPU-Sim baseline).
//   GTO       greedy-then-oldest: stay on the last issued warp while it is
//             issuable, else the oldest (smallest dynamic id).
//   Two-Level fetch groups of `group_size` warps; round-robin inside the
//             active group; switch groups when the active group has nothing
//             to issue (Narasiman et al.).
//   OWF       owner-warp-first (the paper's policy): strict class priority
//             shared-owner > unshared > shared-non-owner, GTO order within
//             a class. With no shared blocks resident all warps are
//             unshared and OWF degenerates to GTO (paper §VI-B.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace grs {

/// One issuable warp as seen by the scheduler.
struct SchedCandidate {
  std::uint32_t slot = 0;      ///< warp slot within the SM
  std::uint64_t age = 0;       ///< dynamic id (smaller = older)
  WarpClass cls = WarpClass::kUnshared;
};

class WarpScheduler {
 public:
  WarpScheduler(SchedulerKind kind, std::uint32_t total_slots, std::uint32_t group_size);

  /// Pick one of `cands` (non-empty, sorted by slot ascending). Returns an
  /// index into `cands` and updates policy state.
  [[nodiscard]] std::size_t select(const std::vector<SchedCandidate>& cands);

  [[nodiscard]] SchedulerKind kind() const { return kind_; }

 private:
  [[nodiscard]] std::size_t select_lrr(const std::vector<SchedCandidate>& cands);
  [[nodiscard]] std::size_t select_gto(const std::vector<SchedCandidate>& cands);
  [[nodiscard]] std::size_t select_two_level(const std::vector<SchedCandidate>& cands);
  [[nodiscard]] std::size_t select_owf(const std::vector<SchedCandidate>& cands);

  [[nodiscard]] static std::size_t oldest_index(const std::vector<SchedCandidate>& cands,
                                                std::size_t begin, std::size_t end);

  SchedulerKind kind_;
  std::uint32_t total_slots_;
  std::uint32_t group_size_;

  /// LRR / Two-Level rotation point. Starts at the kInvalidSlot sentinel
  /// ("nothing issued yet") so the very first selection falls through to the
  /// lowest-slot candidate; a 0 start would skip slot 0 on the first pick
  /// ("strictly after the last issued slot") forever disadvantaging it.
  std::uint32_t last_slot_ = kInvalidSlot;
  std::uint32_t greedy_slot_ = kInvalidSlot;  ///< GTO / OWF sticky warp
  std::uint32_t active_group_ = 0;  ///< Two-Level
};

/// Priority rank for OWF (lower issues first).
[[nodiscard]] constexpr int owf_rank(WarpClass c) {
  switch (c) {
    case WarpClass::kSharedOwner: return 0;
    case WarpClass::kUnshared: return 1;
    case WarpClass::kSharedNonOwner: return 2;
  }
  return 3;
}

}  // namespace grs
