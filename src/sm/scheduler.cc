#include "sm/scheduler.h"

#include "common/check.h"

namespace grs {

WarpScheduler::WarpScheduler(SchedulerKind kind, std::uint32_t total_slots,
                             std::uint32_t group_size)
    : kind_(kind), total_slots_(total_slots), group_size_(group_size) {
  GRS_CHECK(total_slots >= 1);
  GRS_CHECK(group_size >= 1);
}

std::size_t WarpScheduler::oldest_index(const std::vector<SchedCandidate>& cands,
                                        std::size_t begin, std::size_t end) {
  std::size_t best = begin;
  for (std::size_t i = begin + 1; i < end; ++i)
    if (cands[i].age < cands[best].age) best = i;
  return best;
}

std::size_t WarpScheduler::select(const std::vector<SchedCandidate>& cands) {
  GRS_CHECK(!cands.empty());
  std::size_t pick = 0;
  switch (kind_) {
    case SchedulerKind::kLrr: pick = select_lrr(cands); break;
    case SchedulerKind::kGto: pick = select_gto(cands); break;
    case SchedulerKind::kTwoLevel: pick = select_two_level(cands); break;
    case SchedulerKind::kOwf: pick = select_owf(cands); break;
  }
  last_slot_ = cands[pick].slot;
  greedy_slot_ = cands[pick].slot;
  return pick;
}

std::size_t WarpScheduler::select_lrr(const std::vector<SchedCandidate>& cands) {
  // First candidate with slot strictly after the last issued slot, wrapping.
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i].slot > last_slot_) return i;
  return 0;
}

std::size_t WarpScheduler::select_gto(const std::vector<SchedCandidate>& cands) {
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i].slot == greedy_slot_) return i;
  return oldest_index(cands, 0, cands.size());
}

std::size_t WarpScheduler::select_two_level(const std::vector<SchedCandidate>& cands) {
  const std::uint32_t n_groups = (total_slots_ + group_size_ - 1) / group_size_;
  // Try the active group first, then subsequent groups in round-robin order.
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    const std::uint32_t group = (active_group_ + g) % n_groups;
    const std::uint32_t lo = group * group_size_;
    const std::uint32_t hi = lo + group_size_;
    // Round-robin inside the group, continuing after last_slot_.
    std::size_t first_in_group = cands.size();
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].slot < lo || cands[i].slot >= hi) continue;
      if (first_in_group == cands.size()) first_in_group = i;
      if (cands[i].slot > last_slot_) {
        active_group_ = group;
        return i;
      }
    }
    if (first_in_group != cands.size()) {
      active_group_ = group;
      return first_in_group;
    }
  }
  return 0;  // unreachable for non-empty cands
}

std::size_t WarpScheduler::select_owf(const std::vector<SchedCandidate>& cands) {
  int best_rank = 4;
  for (const auto& c : cands) best_rank = std::min(best_rank, owf_rank(c.cls));
  // Greedy within the best class, else oldest within the best class.
  std::size_t oldest = cands.size();
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (owf_rank(cands[i].cls) != best_rank) continue;
    if (cands[i].slot == greedy_slot_) return i;
    if (oldest == cands.size() || cands[i].age < cands[oldest].age) oldest = i;
  }
  GRS_CHECK(oldest < cands.size());
  return oldest;
}

}  // namespace grs
