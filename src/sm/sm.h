// Streaming Multiprocessor: the per-core cycle model.
//
// Owns the resident warps and thread blocks, the private L1 data cache, the
// warp schedulers, and the sharing-pair lock/ownership state. Each cycle
// (`step`) it retires completed instructions and lets each scheduler issue at
// most one instruction from its highest-priority ready warp, classifying the
// cycle as issued / stall / idle (see common/stats.h for the definitions).
//
// The sharing runtime hooks live exactly where the paper puts them:
//  * issue-time register classification per Fig. 3 (unshared warp? RegNo
//    below threshold? lock acquired?);
//  * issue-time scratchpad classification per Fig. 4;
//  * ownership transfer and non-owner relaunch at block finish (§IV-A);
//  * the Dyn gate in front of non-owner global-memory issues (§IV-C).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/dyn_throttle.h"
#include "core/locks.h"
#include "core/occupancy.h"
#include "isa/program.h"
#include "memory/cache.h"
#include "memory/coalescer.h"
#include "memory/memsys.h"
#include "sm/block.h"
#include "sm/scheduler.h"
#include "sm/warp.h"

namespace grs {

namespace obs {
class SimObserver;
}
namespace prof {
class HostProfiler;
}

class StreamingMultiprocessor {
 public:
  /// Invoked when a resident block finishes, so the dispatcher can refill
  /// the slot. Called after ownership transfer has been applied.
  using BlockFinishFn = std::function<void(SmId, BlockSlot)>;

  /// `obs` (optional) receives event-trace hooks; it is consulted once here
  /// and ignored thereafter unless tracing is enabled, so the default-null
  /// case costs one untaken branch per hook site (src/obs/obs.h). `prof`
  /// (optional) receives host-phase timings under the same null-guarded
  /// contract (src/prof/prof.h).
  StreamingMultiprocessor(SmId id, const GpuConfig& cfg, const Program& program,
                          const KernelResources& res, const Occupancy& occ,
                          std::uint32_t active_lanes, MemorySystem& memsys,
                          const DynThrottle* dyn, obs::SimObserver* obs = nullptr,
                          prof::HostProfiler* prof = nullptr);

  void set_block_finish_callback(BlockFinishFn fn) { on_block_finish_ = std::move(fn); }

  /// Install a new block into `slot` (mapping: slots [0, U) are unshared,
  /// slots U+2p and U+2p+1 are the two sides of pair p).
  void launch_block(BlockSlot slot, std::uint64_t block_uid);

  /// Advance one GPU cycle. Returns true when any scheduler issued an
  /// instruction (the event-driven loop may only skip cycles in which no SM
  /// issued anything).
  bool step(Cycle now);

  /// True when no blocks are resident and no instructions are in flight.
  [[nodiscard]] bool drained() const;

  // --- event-driven execution (gpu/gpu.cc, exec_mode = kEvent) -----------
  /// Event-aware wrapper around step(): while inside a known-idle window
  /// (`now < idle_until()`) the call is O(1) — the scan is provably identical
  /// to the last one and is accounted in bulk when the SM wakes (or at
  /// flush_idle_accounting). A scan that issues nothing opens a window up to
  /// the SM's next timed wakeup. Statistics stay bit-identical to calling
  /// step() every cycle.
  bool tick(Cycle now);

  /// End of the current known-idle window: this SM's scan cannot change
  /// before this cycle. 0 when the SM must be stepped next cycle;
  /// kNeverCycle when only external termination can end the window.
  [[nodiscard]] Cycle idle_until() const { return idle_until_; }

  /// Account a still-open idle window through `final_cycle` (inclusive).
  /// Must be called once after the simulation loop exits so skipped trailing
  /// cycles are reflected in the counters.
  void flush_idle_accounting(Cycle final_cycle);

  /// Earliest future cycle at which this SM's candidate scan can change on
  /// its own: the head of the writeback event queue or the first L1 MSHR
  /// fill (which can unblock MSHR-capacity stalls before the owning warp's
  /// completion event). kNeverCycle when neither is pending. Everything else
  /// that affects issuability (locks, barriers, ownership, dispatch) only
  /// moves when some warp on this SM issues.
  [[nodiscard]] Cycle next_wakeup() const;

  /// Account `n` further cycles that are provably identical to the (issue-
  /// free) cycle just stepped: replays the last step's counter increments
  /// n more times without re-scanning.
  void repeat_idle_accounting(std::uint64_t n);

  /// Copy the L1 counters into the stats block and return it.
  [[nodiscard]] const SmStats& finalize_stats();

  [[nodiscard]] const SmStats& stats() const { return stats_; }
  [[nodiscard]] SmId id() const { return id_; }
  [[nodiscard]] const Occupancy& occupancy() const { return occ_; }
  [[nodiscard]] std::uint32_t resident_blocks() const { return resident_blocks_; }
  [[nodiscard]] std::uint32_t resident_warps() const { return resident_warps_; }

  // --- timeline sampling (gpu/gpu.cc; event mode) ------------------------
  /// Counters as they will stand at cycle `c` >= the last stepped cycle,
  /// assuming the SM sleeps through the gap: the last scan's per-cycle delta
  /// replayed `c - last_stepped` times without touching live state. This is
  /// the same replay flush_idle_accounting() applies at the end of the run,
  /// so sampled values are bit-identical to stepping every cycle.
  [[nodiscard]] SmStats stats_at(Cycle c) const {
    SmStats s = stats_;
    if (c > last_stepped_) s.accumulate_scaled_delta(step_begin_stats_, stats_, c - last_stepped_);
    return s;
  }
  [[nodiscard]] std::uint64_t l1_accesses() const { return l1_.accesses; }
  [[nodiscard]] std::uint64_t l1_misses() const { return l1_.misses; }
  [[nodiscard]] std::uint32_t l1_mshr_inflight() const {
    return static_cast<std::uint32_t>(l1_.inflight());
  }
  [[nodiscard]] std::uint32_t warp_slots() const {
    return static_cast<std::uint32_t>(warps_.size());
  }

  // --- introspection for tests -------------------------------------------
  [[nodiscard]] const ResidentBlock& block(BlockSlot s) const { return blocks_[s]; }
  [[nodiscard]] const Warp& warp(std::uint32_t slot) const { return warps_[slot]; }
  [[nodiscard]] int pair_owner_side(std::uint32_t pair_id) const;
  [[nodiscard]] WarpClass classify(const Warp& w) const;
  [[nodiscard]] std::uint32_t warps_per_block() const { return warps_per_block_; }

 private:
  struct PairState {
    explicit PairState(std::uint32_t warp_positions) : locks(warp_positions) {}
    int owner_side = PairLockState::kNoSide;
    PairLockState locks;
  };

  struct Event {
    Cycle cycle = 0;
    std::uint32_t slot = 0;
    std::uint64_t dst_mask = 0;
    bool mem = false;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const { return a.cycle > b.cycle; }
  };

  void drain_events(Cycle now);
  bool run_scheduler(std::uint32_t sched_id, Cycle now);
  void issue(Warp& w, const Instruction& ins, Cycle now);
  void do_global_access(Warp& w, const Instruction& ins, Cycle now, std::uint64_t instr_seq,
                        std::uint64_t instr_uid);
  void handle_exit(Warp& w, Cycle now);
  void finish_block(BlockSlot bs, Cycle now);
  void release_barrier_if_complete(ResidentBlock& b);
  [[nodiscard]] bool needs_reg_lock(const ResidentBlock& b, const Instruction& ins) const;
  [[nodiscard]] bool needs_smem_lock(const ResidentBlock& b, const Instruction& ins) const;
  void acquire_with_ownership(PairState& p, int side, bool reg, std::uint32_t pos, Cycle now);
  [[nodiscard]] std::uint32_t pair_id_of(const PairState& p) const {
    return static_cast<std::uint32_t>(&p - pairs_.data());
  }
  [[nodiscard]] std::uint32_t warp_slot_of(const Warp& w) const {
    return static_cast<std::uint32_t>(&w - warps_.data());
  }

  SmId id_;
  GpuConfig cfg_;
  const Program* program_;
  KernelResources res_;
  Occupancy occ_;
  std::uint32_t kernel_active_lanes_;
  MemorySystem* memsys_;
  const DynThrottle* dyn_;

  Cache l1_;
  Coalescer coalescer_;

  std::uint32_t warps_per_block_;
  std::vector<Warp> warps_;          ///< total_blocks * warps_per_block slots
  std::vector<ResidentBlock> blocks_;
  std::vector<PairState> pairs_;
  std::vector<WarpScheduler> schedulers_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint32_t lsu_inflight_ = 0;
  std::uint32_t lsu_port_ = 0;  ///< per-cycle issue-port counters
  std::uint32_t sfu_port_ = 0;
  std::uint64_t next_dynamic_id_ = 0;
  std::uint32_t resident_blocks_ = 0;
  std::uint32_t resident_warps_ = 0;

  SmStats stats_;
  SmStats step_begin_stats_;            ///< snapshot for repeat_idle_accounting
  /// Last scan let a warp through a fractional Dyn gate (without issuing):
  /// the same warp may be gated next cycle, reshuffling blocked counters.
  bool scan_gate_passed_ = false;
  /// Warps the last scan blocked at a fractional Dyn gate; their per-cycle
  /// hash draws are the only cycle-dependent part of an issue-free scan, so
  /// tick() can fast-forward to the first cycle any of them is allowed.
  std::vector<std::uint64_t> dyn_blocked_uids_;
  Cycle idle_until_ = 0;                ///< end of the current known-idle window
  Cycle last_stepped_ = 0;              ///< last cycle step() actually ran
  BlockFinishFn on_block_finish_;
  obs::SimObserver* trace_ = nullptr;   ///< null unless event tracing is on
  prof::HostProfiler* prof_ = nullptr;  ///< null unless --prof/--prof-folded
  /// Cycle currently being stepped; lets dispatcher-driven launch_block()
  /// (called from inside finish_block) stamp trace events. 0 = initial fill.
  Cycle now_ = 0;

  // scratch buffers (avoid per-cycle allocation)
  std::vector<SchedCandidate> cands_;
  std::vector<Addr> txns_;
};

}  // namespace grs
