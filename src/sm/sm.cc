#include "sm/sm.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"
#include "prof/prof.h"

namespace grs {

StreamingMultiprocessor::StreamingMultiprocessor(SmId id, const GpuConfig& cfg,
                                                 const Program& program,
                                                 const KernelResources& res,
                                                 const Occupancy& occ,
                                                 std::uint32_t active_lanes,
                                                 MemorySystem& memsys,
                                                 const DynThrottle* dyn,
                                                 obs::SimObserver* obs,
                                                 prof::HostProfiler* prof)
    : id_(id),
      cfg_(cfg),
      program_(&program),
      res_(res),
      occ_(occ),
      kernel_active_lanes_(active_lanes),
      memsys_(&memsys),
      dyn_(dyn),
      l1_(cfg.l1),
      coalescer_(cfg.l1.line_bytes),
      warps_per_block_(res.warps_per_block(cfg.warp_size)) {
  GRS_CHECK_MSG(program.num_regs() <= 64, "scoreboard supports at most 64 registers/thread");
  GRS_CHECK(occ.total_blocks >= 1);
  GRS_CHECK(occ.total_blocks * warps_per_block_ <= cfg.max_warps_per_sm());
  warps_.resize(static_cast<std::size_t>(occ.total_blocks) * warps_per_block_);
  blocks_.resize(occ.total_blocks);
  pairs_.reserve(occ.shared_pairs);
  for (std::uint32_t p = 0; p < occ.shared_pairs; ++p) pairs_.emplace_back(warps_per_block_);
  schedulers_.reserve(cfg.num_schedulers);
  for (std::uint32_t s = 0; s < cfg.num_schedulers; ++s)
    schedulers_.emplace_back(cfg.scheduler, static_cast<std::uint32_t>(warps_.size()),
                             cfg.two_level_group_size);
  cands_.reserve(warps_.size());
  txns_.reserve(32);
  if (obs != nullptr && obs->trace_enabled()) trace_ = obs;
  prof_ = prof;
}

int StreamingMultiprocessor::pair_owner_side(std::uint32_t pair_id) const {
  GRS_CHECK(pair_id < pairs_.size());
  return pairs_[pair_id].owner_side;
}

WarpClass StreamingMultiprocessor::classify(const Warp& w) const {
  const ResidentBlock& b = blocks_[w.block];
  if (!b.is_shared()) return WarpClass::kUnshared;
  const PairState& p = pairs_[b.pair_id];
  return p.owner_side == b.side ? WarpClass::kSharedOwner : WarpClass::kSharedNonOwner;
}

void StreamingMultiprocessor::launch_block(BlockSlot slot, std::uint64_t block_uid) {
  GRS_CHECK(slot < blocks_.size());
  ResidentBlock& b = blocks_[slot];
  GRS_CHECK_MSG(!b.active, "launch into an occupied block slot");

  b = ResidentBlock{};
  b.active = true;
  b.block_uid = block_uid;
  b.num_warps = warps_per_block_;
  b.first_warp_slot = slot * warps_per_block_;

  if (slot >= occ_.unshared_blocks) {
    b.pair_id = static_cast<int>((slot - occ_.unshared_blocks) / 2);
    b.side = static_cast<int>((slot - occ_.unshared_blocks) % 2);
    PairState& p = pairs_[b.pair_id];
    p.locks.on_block_replace(b.side);
    // First occupant of an empty pair owns the shared pool.
    if (p.owner_side == PairLockState::kNoSide) p.owner_side = b.side;
  }

  const std::uint32_t tail_threads = res_.threads_per_block % cfg_.warp_size;
  for (std::uint32_t i = 0; i < warps_per_block_; ++i) {
    Warp& w = warps_[b.first_warp_slot + i];
    GRS_CHECK(!w.active);
    w.reset();
    w.active = true;
    w.pos_in_block = i;
    w.block = slot;
    w.warp_uid = block_uid * warps_per_block_ + i;
    w.dynamic_id = next_dynamic_id_++;
    w.cursor = ProgramCursor(*program_);
    w.active_lanes = kernel_active_lanes_;
    if (i + 1 == warps_per_block_ && tail_threads != 0)
      w.active_lanes = std::min(w.active_lanes, tail_threads);
  }

  ++resident_blocks_;
  resident_warps_ += warps_per_block_;
  ++stats_.blocks_launched;
  stats_.max_resident_blocks = std::max(stats_.max_resident_blocks, resident_blocks_);
  stats_.max_resident_warps = std::max(stats_.max_resident_warps, resident_warps_);

  if (trace_) {
    const bool owner = b.is_shared() && pairs_[b.pair_id].owner_side == b.side;
    trace_->block_launch(id_, slot, block_uid, now_, b.is_shared() ? b.pair_id : -1, b.side,
                         owner);
  }
}

void StreamingMultiprocessor::drain_events(Cycle now) {
  while (!events_.empty() && events_.top().cycle <= now) {
    const Event e = events_.top();
    events_.pop();
    Warp& w = warps_[e.slot];
    w.pending_writes &= ~e.dst_mask;
    GRS_CHECK(w.inflight > 0);
    --w.inflight;
    if (e.mem) {
      GRS_CHECK(lsu_inflight_ > 0);
      --lsu_inflight_;
    }
  }
}

bool StreamingMultiprocessor::needs_reg_lock(const ResidentBlock& b,
                                             const Instruction& ins) const {
  if (!b.is_shared() || cfg_.sharing.resource != Resource::kRegisters) return false;
  const RegNum m = ins.max_reg();
  return m != kNoReg && m >= occ_.unshared_regs_per_thread;
}

bool StreamingMultiprocessor::needs_smem_lock(const ResidentBlock& b,
                                              const Instruction& ins) const {
  if (!b.is_shared() || cfg_.sharing.resource != Resource::kScratchpad) return false;
  return is_shared_mem(ins.op) && ins.smem_offset >= occ_.unshared_smem_bytes;
}

void StreamingMultiprocessor::acquire_with_ownership(PairState& p, int side, bool reg,
                                                     std::uint32_t pos, Cycle now) {
  // Paper §IV-A: the block whose warps enter the shared region first becomes
  // the owner block (a waiting partner then "waits for shared resources from
  // the owner").
  const bool first_lock = p.locks.locked_side() == PairLockState::kNoSide;
  bool newly = false;
  if (reg) {
    newly = !p.locks.reg_held(side, pos);
    p.locks.reg_acquire(side, pos);
  } else {
    newly = p.locks.smem_holder() != side;
    p.locks.smem_acquire(side);
  }
  if (newly) {
    ++stats_.lock_acquisitions;
    if (first_lock) {
      // First access to the shared pool in this pair epoch: the accessing
      // block becomes the owner and is entitled to the pool (paper §III).
      p.owner_side = side;
      p.locks.set_entitled(side);
    }
    if (trace_) trace_->lock_acquire(id_, pair_id_of(p), now, reg, side, pos, first_lock);
  }
}

bool StreamingMultiprocessor::step(Cycle now) {
  now_ = now;
  {
    prof::ScopedPhase prof_scope(prof_, prof::Phase::kExecute);
    drain_events(now);
    l1_.drain(now);
  }
  lsu_port_ = 0;
  sfu_port_ = 0;
  if (cfg_.exec_mode == ExecMode::kEvent) {
    // Only tick() replays deltas; keep the naive loop free of the snapshot.
    step_begin_stats_ = stats_;
  }
  scan_gate_passed_ = false;
  dyn_blocked_uids_.clear();
  bool issued = false;
  {
    prof::ScopedPhase prof_scope(prof_, prof::Phase::kSchedulerScan);
    for (std::uint32_t s = 0; s < schedulers_.size(); ++s) issued |= run_scheduler(s, now);
  }
  return issued;
}

Cycle StreamingMultiprocessor::next_wakeup() const {
  Cycle next = events_.empty() ? kNeverCycle : events_.top().cycle;
  return std::min(next, l1_.next_ready());
}

bool StreamingMultiprocessor::tick(Cycle now) {
  if (now < idle_until_) return false;  // known idle; accounted on wake/flush
  if (now > last_stepped_ + 1) {
    prof::ScopedPhase prof_scope(prof_, prof::Phase::kEventSleep);
    repeat_idle_accounting(now - last_stepped_ - 1);
  }
  const bool issued = step(now);
  last_stepped_ = now;
  if (issued) {
    idle_until_ = 0;  // machine state moved; re-scan next cycle
    return true;
  }
  // Nothing issued: until a timed wakeup fires, every future scan repeats
  // this one — locks, barriers, ownership, and dispatch only move when a
  // warp on this SM issues. Dyn caveats: a scan taken on a monitoring
  // boundary used probabilities that on_period_end is about to replace, and
  // a warp that PASSED a fractional gate (then stalled structurally) may be
  // gated next cycle, so both pin us to the next cycle. Warps BLOCKED at a
  // fractional gate are handled exactly: their per-cycle hash draws are the
  // only cycle-dependent input, so replay the gate sequence (two
  // hash_combines per warp-cycle, far cheaper than a scan) and stop at the
  // first cycle any of them would be let through. Never sleep across a
  // monitoring boundary, where probabilities (and with them the scan) move.
  prof::ScopedPhase prof_scope(prof_, prof::Phase::kEventSleep);
  Cycle w = next_wakeup();
  if (dyn_ != nullptr && dyn_->enabled()) {
    if (scan_gate_passed_ || now % dyn_->period() == 0) {
      w = now + 1;
    } else {
      w = std::min(w, dyn_->next_period_boundary(now));
      if (!dyn_blocked_uids_.empty()) {
        Cycle t = now + 1;
        for (; t < w; ++t) {
          bool any_allowed = false;
          for (const std::uint64_t uid : dyn_blocked_uids_) {
            if (dyn_->allow(id_, t, uid)) {
              any_allowed = true;
              break;
            }
          }
          if (any_allowed) break;
        }
        w = t;
      }
    }
  }
  idle_until_ = w;
  return false;
}

void StreamingMultiprocessor::flush_idle_accounting(Cycle final_cycle) {
  if (final_cycle > last_stepped_) {
    repeat_idle_accounting(final_cycle - last_stepped_);
    last_stepped_ = final_cycle;
  }
}

void StreamingMultiprocessor::repeat_idle_accounting(std::uint64_t n) {
  const SmStats after = stats_;
  stats_.accumulate_scaled_delta(step_begin_stats_, after, n);
}

bool StreamingMultiprocessor::run_scheduler(std::uint32_t sched_id, Cycle now) {
  cands_.clear();
  bool saw_stall = false;
  // The scan classifies every live warp; with tracing on, each
  // classification is mirrored to the observer, which turns the stream into
  // state-transition slices (obs/events.h explains why that stays
  // byte-identical across exec modes).
  obs::SimObserver* const tr = trace_;

  const auto n_sched = static_cast<std::uint32_t>(schedulers_.size());
  for (std::uint32_t slot = sched_id; slot < warps_.size(); slot += n_sched) {
    Warp& w = warps_[slot];
    if (!w.live()) continue;
    if (w.at_barrier) {  // synchronization wait -> idle class
      ++stats_.blocked_barrier;
      if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kBarrier);
      continue;
    }

    const Instruction* ins = w.cursor.peek(*program_);
    GRS_CHECK_MSG(ins != nullptr, "live warp with exhausted program");

    // Scoreboard: RAW/WAW on in-flight results -> dependency wait (idle class).
    if ((w.pending_writes & hazard_mask(*ins)) != 0) {
      ++stats_.blocked_scoreboard;
      if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kScoreboard);
      continue;
    }
    if (ins->op == Op::kExit && w.inflight != 0) {  // drain before exit
      if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kDrainExit);
      continue;
    }

    const ResidentBlock& b = blocks_[w.block];

    // Sharing locks (paper Fig. 3/4 step (d)-(e)): the warp busy-waits; like
    // a scoreboard dependency it is "not ready", so a cycle with only
    // lock-blocked warps counts as idle, not as a pipeline stall.
    if (needs_reg_lock(b, *ins) &&
        !pairs_[b.pair_id].locks.reg_can_acquire(b.side, w.pos_in_block)) {
      ++stats_.lock_wait_cycles;
      if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kLockWait);
      continue;
    }
    if (needs_smem_lock(b, *ins) && !pairs_[b.pair_id].locks.smem_can_acquire(b.side)) {
      ++stats_.lock_wait_cycles;
      if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kLockWait);
      continue;
    }

    const WarpClass cls = classify(w);

    // Dynamic warp execution gate (paper §IV-C): suppressed issue, also
    // "not ready" this cycle. With a fractional probability the decision may
    // flip from one cycle to the next; record which way it went so tick()
    // knows how far this scan can be replayed.
    if (dyn_ != nullptr && dyn_->enabled() && is_global_mem(ins->op) &&
        cls == WarpClass::kSharedNonOwner) {
      const bool cycle_dependent = dyn_->gate_is_cycle_dependent(id_);
      if (!dyn_->allow(id_, now, w.warp_uid)) {
        ++stats_.dyn_throttled_issues;
        if (cycle_dependent) dyn_blocked_uids_.push_back(w.warp_uid);
        if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kDynGated);
        continue;
      }
      scan_gate_passed_ |= cycle_dependent;
    }

    // Structural hazards -> stall class.
    if (is_mem(ins->op)) {
      if (lsu_port_ >= cfg_.lsu_issue_per_cycle) {
        saw_stall = true;
        ++stats_.blocked_lsu_port;
        if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kLsuPort);
        continue;
      }
      if (lsu_inflight_ >= cfg_.lsu_max_inflight) {
        saw_stall = true;
        ++stats_.blocked_lsu_inflight;
        if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kLsuQueue);
        continue;
      }
      if (ins->op == Op::kLdGlobal) {  // stores bypass the MSHR (no-allocate)
        const std::uint32_t txns = ins->max_transactions();
        if (l1_.inflight() + txns > cfg_.l1.mshr_entries) {
          saw_stall = true;
          ++stats_.blocked_mshr;
          if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kMshrFull);
          continue;
        }
      }
    } else if (ins->op == Op::kSfu && sfu_port_ >= cfg_.sfu_issue_per_cycle) {
      saw_stall = true;
      ++stats_.blocked_sfu_port;
      if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kSfuPort);
      continue;
    }

    if (tr) tr->warp_scan(id_, slot, now, obs::WarpState::kEligible);
    cands_.push_back(SchedCandidate{slot, w.dynamic_id, cls});
  }

  if (cands_.empty()) {
    if (saw_stall) {
      ++stats_.stall_cycles;
    } else {
      ++stats_.idle_cycles;
    }
    return false;
  }

  prof::ScopedPhase prof_scope(prof_, prof::Phase::kIssue);
  const std::size_t pick = schedulers_[sched_id].select(cands_);
  const std::uint32_t picked_slot = cands_[pick].slot;
  Warp& w = warps_[picked_slot];
  const Instruction ins = *w.cursor.peek(*program_);
  if (tr) tr->warp_issue(id_, picked_slot, now, ins.op);
  issue(w, ins, now);
  ++stats_.issued_cycles;
  ++stats_.warp_instructions;
  stats_.thread_instructions += w.active_lanes;
  return true;
}

void StreamingMultiprocessor::issue(Warp& w, const Instruction& ins, Cycle now) {
  ResidentBlock& b = blocks_[w.block];

  // Take sharing locks (legality was established during candidate scan).
  if (needs_reg_lock(b, ins))
    acquire_with_ownership(pairs_[b.pair_id], b.side, /*reg=*/true, w.pos_in_block, now);
  if (needs_smem_lock(b, ins))
    acquire_with_ownership(pairs_[b.pair_id], b.side, /*reg=*/false, 0, now);

  // Static identity and per-instruction execution index of `ins`, captured
  // before the cursor moves (profile-backed address sampling keys on them).
  const std::uint64_t instr_uid =
      (static_cast<std::uint64_t>(w.cursor.segment_index()) << 32) | w.cursor.instr_index();
  const std::uint64_t instr_seq = w.cursor.iteration();

  w.cursor.advance(*program_);

  switch (ins.op) {
    case Op::kAlu: {
      events_.push(Event{now + cfg_.alu_latency, warp_slot_of(w), reg_bit(ins.dst), false});
      w.pending_writes |= reg_bit(ins.dst);
      ++w.inflight;
      break;
    }
    case Op::kSfu: {
      ++sfu_port_;
      events_.push(Event{now + cfg_.sfu_latency, warp_slot_of(w), reg_bit(ins.dst), false});
      w.pending_writes |= reg_bit(ins.dst);
      ++w.inflight;
      break;
    }
    case Op::kLdShared:
    case Op::kStShared: {
      ++lsu_port_;
      ++lsu_inflight_;
      events_.push(
          Event{now + cfg_.scratchpad_latency, warp_slot_of(w), reg_bit(ins.dst), true});
      w.pending_writes |= reg_bit(ins.dst);
      ++w.inflight;
      break;
    }
    case Op::kLdGlobal:
    case Op::kStGlobal: {
      ++lsu_port_;
      do_global_access(w, ins, now, instr_seq, instr_uid);
      break;
    }
    case Op::kBarrier: {
      w.at_barrier = true;
      ++b.barrier_arrived;
      release_barrier_if_complete(b);
      break;
    }
    case Op::kExit: {
      handle_exit(w, now);
      break;
    }
  }
}

void StreamingMultiprocessor::do_global_access(Warp& w, const Instruction& ins, Cycle now,
                                               std::uint64_t instr_seq,
                                               std::uint64_t instr_uid) {
  txns_.clear();
  const MemAccessContext ctx{w.warp_uid, blocks_[w.block].block_uid, w.mem_seq, instr_seq,
                             instr_uid};
  ++w.mem_seq;
  coalescer_.expand(ins, ctx, txns_);

  Cycle completion = now + cfg_.l1_hit_latency;
  if (ins.op == Op::kStGlobal) {
    // Write-through, no-allocate, fire-and-forget: the store consumes L2 and
    // DRAM bandwidth but the warp only waits for the write-queue handoff
    // (GPGPU-Sim models global stores the same way).
    for (const Addr line : txns_) {
      const Cache::LookupResult r = l1_.lookup(line, now);
      if (!r.hit && !r.mshr_merge && !r.mshr_full) {
        (void)memsys_->access(line, now);  // bandwidth/occupancy only
      }
      if (trace_) trace_->l1_transaction(id_, now, line, obs::L1Outcome::kStore, now);
    }
  } else {
    for (const Addr line : txns_) {
      const Cache::LookupResult r = l1_.lookup(line, now);
      GRS_CHECK_MSG(!r.mshr_full, "MSHR availability was pre-checked for loads");
      Cycle t;
      obs::L1Outcome outcome;
      if (r.hit) {
        t = now + cfg_.l1_hit_latency;
        outcome = obs::L1Outcome::kHit;
      } else if (r.mshr_merge) {
        t = std::max(r.ready, now + cfg_.l1_hit_latency);
        outcome = obs::L1Outcome::kMerge;
      } else {
        t = memsys_->access(line, now);
        l1_.fill_inflight(line, t);
        outcome = obs::L1Outcome::kMiss;
      }
      if (trace_) trace_->l1_transaction(id_, now, line, outcome, t);
      completion = std::max(completion, t);
    }
  }

  ++lsu_inflight_;
  events_.push(Event{completion, warp_slot_of(w), reg_bit(ins.dst), true});
  w.pending_writes |= reg_bit(ins.dst);
  ++w.inflight;
}

void StreamingMultiprocessor::release_barrier_if_complete(ResidentBlock& b) {
  if (b.barrier_arrived == 0) return;
  if (b.barrier_arrived + b.warps_exited != b.num_warps) return;
  for (std::uint32_t i = 0; i < b.num_warps; ++i) warps_[b.first_warp_slot + i].at_barrier = false;
  b.barrier_arrived = 0;
}

void StreamingMultiprocessor::handle_exit(Warp& w, Cycle now) {
  GRS_CHECK(w.inflight == 0 && w.pending_writes == 0);
  w.exited = true;
  ResidentBlock& b = blocks_[w.block];
  ++b.warps_exited;
  GRS_CHECK(resident_warps_ > 0);
  --resident_warps_;

  if (trace_) trace_->warp_exit(id_, warp_slot_of(w), now);

  if (b.is_shared() && cfg_.sharing.resource == Resource::kRegisters) {
    // Shared registers release when their holder warp finishes (paper §III-A).
    pairs_[b.pair_id].locks.reg_release_on_warp_finish(b.side, w.pos_in_block);
    if (trace_) trace_->lock_release_warp(id_, b.pair_id, now, b.side, w.pos_in_block);
  }

  // An exited warp counts as arrived at any barrier the rest are waiting on.
  release_barrier_if_complete(b);

  if (b.finished()) finish_block(w.block, now);
}

void StreamingMultiprocessor::finish_block(BlockSlot bs, Cycle now) {
  ResidentBlock& b = blocks_[bs];
  GRS_CHECK(b.finished());
  b.active = false;
  GRS_CHECK(resident_blocks_ > 0);
  --resident_blocks_;
  ++stats_.blocks_finished;

  if (trace_) trace_->block_finish(id_, bs, b.block_uid, now);

  for (std::uint32_t i = 0; i < b.num_warps; ++i) warps_[b.first_warp_slot + i].active = false;

  if (b.is_shared()) {
    PairState& p = pairs_[b.pair_id];
    p.locks.on_block_finish(b.side);
    if (trace_) trace_->lock_release_block(id_, b.pair_id, now, b.side);
    // Ownership transfer (paper §IV-A): the surviving partner becomes the
    // owner; if the pair is now empty, the next launch re-seeds ownership.
    const BlockSlot partner_slot = occ_.unshared_blocks +
                                   static_cast<std::uint32_t>(b.pair_id) * 2 +
                                   static_cast<std::uint32_t>(1 - b.side);
    if (blocks_[partner_slot].active) {
      if (p.owner_side == b.side) {
        // Transfer ownership to the survivor and entitle it to the shared
        // pool, so the replacement block launched into this slot cannot win
        // the lock race against the resumed partner (paper §IV-A).
        p.owner_side = 1 - b.side;
        p.locks.set_entitled(p.owner_side);
        ++stats_.ownership_transfers;
        if (trace_) trace_->ownership_transfer(id_, b.pair_id, now, p.owner_side);
      }
    } else {
      p.owner_side = PairLockState::kNoSide;
    }
  }

  if (on_block_finish_) on_block_finish_(id_, bs);
}

bool StreamingMultiprocessor::drained() const {
  return resident_blocks_ == 0 && events_.empty();
}

const SmStats& StreamingMultiprocessor::finalize_stats() {
  stats_.l1_accesses = l1_.accesses;
  stats_.l1_misses = l1_.misses;
  stats_.l1_mshr_merges = l1_.merges;
  return stats_;
}

}  // namespace grs
