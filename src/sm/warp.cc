#include "sm/warp.h"

// Warp is a plain aggregate; this TU exists so the header stays in the build
// graph and static_asserts run once.
namespace grs {
static_assert(sizeof(Warp) <= 128, "Warp should stay cache-friendly");
}  // namespace grs
