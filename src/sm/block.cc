#include "sm/block.h"

namespace grs {
static_assert(sizeof(ResidentBlock) <= 64, "ResidentBlock should stay small");
}  // namespace grs
