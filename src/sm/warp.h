// Per-warp execution state.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "isa/program.h"

namespace grs {

/// Scoreboard mask helpers: one bit per architectural register (the IR caps
/// registers per thread at 64, checked at kernel launch).
[[nodiscard]] constexpr std::uint64_t reg_bit(RegNum r) {
  return r == kNoReg ? 0ull : (1ull << r);
}

/// Registers an instruction reads or writes (RAW + WAW hazard mask).
[[nodiscard]] constexpr std::uint64_t hazard_mask(const Instruction& i) {
  return reg_bit(i.dst) | reg_bit(i.src0) | reg_bit(i.src1);
}

struct Warp {
  // --- identity ----------------------------------------------------------
  bool active = false;           ///< slot holds a live warp
  std::uint32_t pos_in_block = 0;///< warp index within its block (pairing key)
  BlockSlot block = kInvalidSlot;
  std::uint64_t warp_uid = 0;    ///< grid-global unique id
  std::uint64_t dynamic_id = 0;  ///< SM-local launch order (age for GTO/OWF)
  std::uint32_t active_lanes = 32;

  // --- progress ------------------------------------------------------------
  ProgramCursor cursor;
  bool exited = false;
  bool at_barrier = false;

  // --- scoreboard ----------------------------------------------------------
  std::uint64_t pending_writes = 0;  ///< bit set => register write in flight
  std::uint32_t inflight = 0;        ///< instructions issued, not yet retired
  std::uint64_t mem_seq = 0;         ///< global-memory instructions issued

  void reset() { *this = Warp{}; }

  [[nodiscard]] bool live() const { return active && !exited; }
};

}  // namespace grs
