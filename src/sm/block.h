// Per-resident-thread-block state.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace grs {

struct ResidentBlock {
  bool active = false;
  std::uint64_t block_uid = 0;  ///< grid-global block id
  std::uint32_t num_warps = 0;
  std::uint32_t first_warp_slot = 0;

  /// Sharing-pair membership: pair index within the SM, or -1 for an
  /// unshared block; side is 0/1 within the pair.
  int pair_id = -1;
  int side = -1;

  std::uint32_t warps_exited = 0;
  std::uint32_t barrier_arrived = 0;

  [[nodiscard]] bool finished() const { return active && warps_exited == num_warps; }
  [[nodiscard]] bool is_shared() const { return pair_id >= 0; }
};

}  // namespace grs
