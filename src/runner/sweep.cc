#include "runner/sweep.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace grs::runner {

void SweepSpec::add(std::string variant, const GpuConfig& cfg, const KernelInfo& kernel) {
  points.push_back(SweepPoint{std::move(variant), cfg, kernel});
}

void SweepSpec::add_grid(const std::vector<ConfigVariant>& variants,
                         const std::vector<KernelInfo>& kernels) {
  for (const ConfigVariant& v : variants)
    for (const KernelInfo& k : kernels) add(v.label, v.config, k);
}

void SweepSpec::filter_kernels(const std::string& substr) {
  if (substr.empty()) return;
  points.erase(std::remove_if(points.begin(), points.end(),
                              [&](const SweepPoint& p) {
                                return !kernel_name_matches(p.kernel.name, substr);
                              }),
               points.end());
}

bool kernel_name_matches(const std::string& name, const std::string& substr) {
  if (substr.empty()) return true;
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
  };
  return lower(name).find(lower(substr)) != std::string::npos;
}

}  // namespace grs::runner
