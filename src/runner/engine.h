// Parallel experiment engine: execute a SweepSpec across a worker pool.
//
// simulate() is pure and bit-deterministic (common/prng.h), so sweep points
// are embarrassingly parallel; each worker writes into a pre-allocated result
// slot and the returned vector is always in submission order. A sweep run
// with 1 thread and with N threads produces byte-identical results.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "common/types.h"
#include "gpu/simulator.h"
#include "prof/prof.h"
#include "runner/sweep.h"

namespace grs::runner {

/// One completed sweep point. `wall_ms`/`from_cache` are host-side telemetry
/// for run manifests (runner/manifest.h); they are never part of result
/// encodings, so rows stay byte-identical across thread counts and hosts.
struct SweepRow {
  SweepPoint point;
  SimResult result;
  double wall_ms = 0.0;    ///< wall clock this cell took in this run
  bool from_cache = false;  ///< result served from the result cache
};

struct RunOptions {
  /// Worker threads; 0 means ThreadPool::default_threads(). Never more
  /// workers than points.
  unsigned threads = 0;

  /// Optional progress callback, invoked from worker threads (internally
  /// serialized) after each point completes as (done, total).
  std::function<void(std::size_t, std::size_t)> progress;

  /// Content-addressed result cache (src/cache). Caching is active only when
  /// `cache_dir` is non-empty AND `cache_mode` is not kOff; every point is
  /// then keyed on cache::result_cache_key(config, kernel) and looked up
  /// before simulating. kVerify re-simulates every hit and throws
  /// std::runtime_error (from run_sweep) on any byte difference from the
  /// stored payload. Rows produced from cache hits are byte-identical to
  /// freshly simulated ones.
  std::string cache_dir;
  cache::CacheMode cache_mode = cache::CacheMode::kOff;

  /// When non-null, this run's cache counters are accumulated (+=) into it
  /// after the sweep completes.
  cache::CacheStats* cache_stats = nullptr;

  /// Observability (src/obs). When either path is set, every point is
  /// simulated fresh under a per-point SimObserver — the result cache is
  /// bypassed entirely for the run, since a cached result has no events to
  /// replay — and the collected outputs are buffered in memory and written
  /// after the sweep in point order, so files are byte-identical across
  /// --threads. Multi-point sweeps write one file per point with the point
  /// index spliced in before the extension (trace.json -> trace.0.json ...).
  std::string trace_path;       ///< Chrome-trace JSON per point
  std::string timeline_path;    ///< per-SM counter timeline CSV per point
  Cycle timeline_interval = 1000;  ///< sample period (cycles) when timeline_path is set

  /// Host-phase profiling (src/prof). When non-null, every point is simulated
  /// under its own per-point HostProfiler (cache lookup/store phases
  /// included), and the per-point profilers are merged into *prof after the
  /// sweep in point order — aggregates are identical for any --threads.
  /// Unlike observability, profiling does NOT bypass the result cache: a
  /// cache hit simply contributes cache_lookup time and no simulate phases.
  /// Sim stats stay bit-identical with profiling on (tests/test_prof.cc).
  prof::HostProfiler* prof = nullptr;
};

/// Run every point of `spec`. Returns one row per point, in spec order.
/// An empty spec returns an empty vector without spawning workers.
/// If a point (or the progress callback) throws, every started point still
/// completes and the first exception is rethrown here instead of terminating
/// the process inside a worker thread.
[[nodiscard]] std::vector<SweepRow> run_sweep(const SweepSpec& spec,
                                              const RunOptions& options = {});

/// File name for point `index` of an `n`-point sweep writing to `base`:
/// `base` itself when n == 1, otherwise `base` with ".<index>" spliced in
/// before the extension ("trace.json" -> "trace.3.json"; extensionless
/// bases get a plain suffix).
[[nodiscard]] std::string obs_point_path(const std::string& base, std::size_t index,
                                         std::size_t n);

}  // namespace grs::runner
