#include "runner/thread_pool.h"

#include <utility>

namespace grs::runner {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stop_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  job_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

}  // namespace grs::runner
