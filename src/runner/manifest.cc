#include "runner/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "common/buildinfo.h"

namespace grs::runner {

namespace {

void put(std::string& out, const char* key, const std::string& value) {
  out += '"';
  out += key;
  out += "\":\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

void put(std::string& out, const char* key, std::uint64_t value) {
  char tmp[48];
  std::snprintf(tmp, sizeof tmp, "\"%s\":%" PRIu64, key, value);
  out += tmp;
}

void put(std::string& out, const char* key, double value) {
  char tmp[64];
  std::snprintf(tmp, sizeof tmp, "\"%s\":%.6f", key, value);
  out += tmp;
}

}  // namespace

void RunManifest::add_sweep(const std::string& name, const std::vector<SweepRow>& rows,
                            double wall_seconds, unsigned threads) {
  Sweep s;
  s.name = name;
  s.threads = threads;
  s.wall_seconds = wall_seconds;
  s.sims_per_second =
      wall_seconds > 0.0 ? static_cast<double>(rows.size()) / wall_seconds : 0.0;
  double cell_wall_ms = 0.0;
  s.cells.reserve(rows.size());
  for (const SweepRow& r : rows) {
    Cell c;
    c.variant = r.point.variant;
    c.kernel = r.point.kernel.name;
    c.config_fingerprint = r.point.config.fingerprint();
    c.wall_ms = r.wall_ms;
    c.from_cache = r.from_cache;
    c.cycles = r.result.stats.cycles;
    c.ipc = r.result.stats.ipc();
    cell_wall_ms += r.wall_ms;
    s.cells.push_back(std::move(c));
  }
  if (threads > 0 && wall_seconds > 0.0)
    s.pool_utilization = cell_wall_ms / 1000.0 / (threads * wall_seconds);
  sweeps_.push_back(std::move(s));
}

void RunManifest::set_cache_stats(const cache::CacheStats& stats) {
  has_cache_ = true;
  cache_ = stats;
}

std::string RunManifest::to_json() const {
  std::string out = "{";
  put(out, "schema", std::string("grs-run-manifest-v1"));
  out += ',';
  put(out, "tool", tool_);
  const BuildInfo& build = build_info();
  out += ",\"host\":{";
  put(out, "hostname", build.hostname);
  out += ',';
  put(out, "hardware_threads", static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  out += ',';
  put(out, "compiler", build.compiler);
  out += ',';
  // Attribution (ISSUE 9): which commit/build produced these numbers.
  put(out, "git_commit", build.git_commit);
  out += ",\"git_dirty\":";
  out += build.git_dirty ? "true" : "false";
  out += ',';
  put(out, "build_type", build.build_type);
  out += "}";
  if (has_cache_) {
    out += ",\"cache\":{";
    put(out, "summary", cache_.summary());
    out += ',';
    put(out, "hits", cache_.hits);
    out += ',';
    put(out, "misses", cache_.misses);
    out += ',';
    put(out, "corrupt", cache_.corrupt);
    out += ',';
    put(out, "stores", cache_.stores);
    out += ',';
    put(out, "verified", cache_.verified);
    out += ',';
    put(out, "verify_failures", cache_.verify_failures);
    out += ',';
    put(out, "bytes_read", cache_.bytes_read);
    out += ',';
    put(out, "bytes_written", cache_.bytes_written);
    out += "}";
  }
  out += ",\"sweeps\":[";
  for (std::size_t i = 0; i < sweeps_.size(); ++i) {
    const Sweep& s = sweeps_[i];
    if (i != 0) out += ',';
    out += "{";
    put(out, "name", s.name);
    out += ',';
    put(out, "threads", static_cast<std::uint64_t>(s.threads));
    out += ',';
    put(out, "wall_seconds", s.wall_seconds);
    out += ',';
    put(out, "sims_per_second", s.sims_per_second);
    out += ',';
    put(out, "pool_utilization", s.pool_utilization);
    out += ",\"cells\":[";
    for (std::size_t j = 0; j < s.cells.size(); ++j) {
      const Cell& c = s.cells[j];
      if (j != 0) out += ',';
      out += "{";
      put(out, "variant", c.variant);
      out += ',';
      put(out, "kernel", c.kernel);
      out += ',';
      put(out, "config_fingerprint", c.config_fingerprint);
      out += ',';
      put(out, "wall_ms", c.wall_ms);
      out += ',';
      out += "\"from_cache\":";
      out += c.from_cache ? "true" : "false";
      out += ',';
      put(out, "cycles", c.cycles);
      out += ',';
      put(out, "ipc", c.ipc);
      out += "}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

void RunManifest::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open manifest file '" + path + "' for writing");
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!f) throw std::runtime_error("failed writing manifest file '" + path + "'");
}

}  // namespace grs::runner
