#include "runner/progress.h"

#include <cstdio>

namespace grs::runner {

void ProgressTicker::update(std::size_t done, std::size_t total) {
  const double elapsed = timer_.seconds();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta = rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
  std::fprintf(stderr, "\r%s %zu/%zu cells  %.1f sims/s  ETA %.0fs   ", tag_, done, total,
               rate, eta);
  std::fflush(stderr);
  printed_ = true;
}

void ProgressTicker::finish() {
  if (!printed_) return;
  std::fprintf(stderr, "\n");
  printed_ = false;
}

}  // namespace grs::runner
