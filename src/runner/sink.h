// Pluggable result sinks: stream SweepRows to CSV, JSON, or a console table.
//
// All sinks emit the same flat row schema (columns()); the paper-shaped
// tables stay in each bench's presenter (runner/registry.h). Sinks are fed
// rows in submission order, so output is deterministic across thread counts.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "runner/engine.h"

namespace grs::runner {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once before any rows.
  virtual void begin() {}

  /// One completed sweep point of bench `bench`.
  virtual void add(const std::string& bench, const SweepRow& row) = 0;

  /// Called once after the last row.
  virtual void end() {}
};

/// Flat schema shared by the CSV/JSON sinks, one entry per column.
[[nodiscard]] const std::vector<std::string>& result_columns();

/// The row rendered against result_columns(), numbers already formatted.
[[nodiscard]] std::vector<std::string> result_cells(const std::string& bench,
                                                    const SweepRow& row);

/// RFC-4180-ish CSV: header row, then one line per sweep point.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void begin() override;
  void add(const std::string& bench, const SweepRow& row) override;

 private:
  std::ostream& out_;
};

/// A single JSON array of flat objects (strings and numbers).
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::ostream& out) : out_(out) {}
  void begin() override;
  void add(const std::string& bench, const SweepRow& row) override;
  void end() override;

 private:
  std::ostream& out_;
  bool first_ = true;
};

/// Generic fixed-width table on stdout (one table per bench), for sweeps that
/// have no paper-shaped presenter.
class ConsoleTableSink : public ResultSink {
 public:
  void add(const std::string& bench, const SweepRow& row) override;
  void end() override;

 private:
  void flush_table();

  std::string current_bench_;
  std::vector<std::vector<std::string>> pending_;
};

}  // namespace grs::runner
