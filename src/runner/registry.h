// Bench registry: each bench/*.cc file declares its sweep grid and a
// presenter that renders the paper-shaped tables from the collected results.
// The unified grs_bench CLI (bench/main.cc) looks benches up here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runner/engine.h"
#include "runner/sweep.h"

namespace grs::runner {

/// Indexed view over one bench's completed rows, for presenters.
class BenchView {
 public:
  explicit BenchView(const std::vector<SweepRow>& rows) : rows_(rows) {}

  [[nodiscard]] const std::vector<SweepRow>& rows() const { return rows_; }

  /// The result of `variant` on `kernel`, or nullptr when that point was not
  /// run (e.g. excluded by --filter).
  [[nodiscard]] const SimResult* find(const std::string& variant,
                                      const std::string& kernel) const;

  /// Unique kernel names, in first-appearance (submission) order.
  [[nodiscard]] std::vector<std::string> kernels() const;

 private:
  const std::vector<SweepRow>& rows_;
};

struct BenchDef {
  std::string name;   ///< CLI name, e.g. "fig8"
  std::string title;  ///< one-line description for --list
  /// Build the full sweep grid (before any CLI filtering).
  std::function<SweepSpec()> build;
  /// Render the paper tables to stdout. Presenters must tolerate missing
  /// points (BenchView::find returning nullptr) so --filter works. May be
  /// null for benches that only produce generic sink output.
  std::function<void(const BenchView&)> present;
};

/// Register a bench; called from static initializers in bench/*.cc.
void register_bench(BenchDef def);

/// All registered benches, sorted by name (static-init order is unspecified).
[[nodiscard]] std::vector<const BenchDef*> all_benches();

/// Lookup by CLI name; nullptr when unknown.
[[nodiscard]] const BenchDef* find_bench(const std::string& name);

/// Helper for static registration:
///   static const runner::BenchRegistrar reg{{ "fig8", "...", build, present }};
struct BenchRegistrar {
  explicit BenchRegistrar(BenchDef def) { register_bench(std::move(def)); }
};

}  // namespace grs::runner
