// Fixed-size worker pool for the experiment engine.
//
// Deliberately minimal: submit void() jobs, wait for all of them to drain.
// Determinism of sweep results does not depend on the pool (each job writes to
// its own pre-allocated slot); the pool only provides throughput.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grs::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job. Safe from any thread, including from inside a job.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished executing. If any job
  /// exited via an exception, rethrows the first one captured (remaining
  /// jobs still ran to completion; further captured exceptions are dropped).
  /// A worker thread would otherwise std::terminate the whole process and
  /// the failure would be unattributable to the submitting caller.
  void wait();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  [[nodiscard]] static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;  ///< first job exception, armed for wait()
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace grs::runner
