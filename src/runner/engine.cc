#include "runner/engine.h"

#include <algorithm>
#include <mutex>

#include "runner/thread_pool.h"

namespace grs::runner {

std::vector<SweepRow> run_sweep(const SweepSpec& spec, const RunOptions& options) {
  const std::size_t n = spec.points.size();
  std::vector<SweepRow> rows(n);
  if (n == 0) return rows;

  unsigned threads = options.threads == 0 ? ThreadPool::default_threads() : options.threads;
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, n));

  // `done` is only mutated under the mutex so the callback sees a
  // monotonically increasing count.
  std::mutex progress_mu;
  std::size_t done = 0;
  auto run_point = [&](std::size_t i) {
    rows[i].point = spec.points[i];
    rows[i].result = simulate(spec.points[i].config, spec.points[i].kernel);
    if (options.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, n);
    }
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_point(i);
    return rows;
  }

  ThreadPool pool(threads);
  for (std::size_t i = 0; i < n; ++i) pool.submit([&run_point, i] { run_point(i); });
  pool.wait();
  return rows;
}

}  // namespace grs::runner
