#include "runner/engine.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "cache/key.h"
#include "gpu/result_codec.h"
#include "runner/thread_pool.h"

namespace grs::runner {

namespace {

/// Resolve one point through the cache. Hits skip simulate() entirely (except
/// under kVerify, whose whole point is to re-simulate); misses simulate and —
/// in the writing modes — publish atomically.
SimResult run_cached_point(cache::ResultCache& cache, const SweepPoint& p) {
  const std::string key = cache::result_cache_key(p.config, p.kernel);
  std::string payload;
  SimResult cached;
  if (cache.lookup(key, &payload, &cached)) {
    if (cache.mode() == cache::CacheMode::kVerify) {
      // The fuzz oracle recast as an integrity check: a warm entry must be
      // byte-identical to a fresh simulation's encoding.
      SimResult fresh = simulate(p.config, p.kernel);
      if (encode_result(fresh) != payload) {
        cache.note_verify_failure();
        throw std::runtime_error("result cache verify FAILED: stored entry " +
                                 cache.entry_path(key) + " differs from re-simulating '" +
                                 p.kernel.name + "' under " + p.variant +
                                 " — the store is poisoned or the simulator changed without "
                                 "bumping the schema version (src/cache/key.h)");
      }
      cache.note_verified();
      return fresh;
    }
    // The payload carries stats + occupancy; the key pins the config, so the
    // caller-visible config is restored from the point itself.
    cached.config = p.config;
    return cached;
  }
  SimResult fresh = simulate(p.config, p.kernel);
  if (cache.mode() != cache::CacheMode::kRead) cache.store(key, fresh);
  return fresh;
}

}  // namespace

std::vector<SweepRow> run_sweep(const SweepSpec& spec, const RunOptions& options) {
  const std::size_t n = spec.points.size();
  std::vector<SweepRow> rows(n);
  if (n == 0) return rows;

  unsigned threads = options.threads == 0 ? ThreadPool::default_threads() : options.threads;
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, n));

  std::unique_ptr<cache::ResultCache> cache;
  if (options.cache_mode != cache::CacheMode::kOff && !options.cache_dir.empty())
    cache = std::make_unique<cache::ResultCache>(options.cache_dir, options.cache_mode);

  // `done` is only mutated under the mutex so the callback sees a
  // monotonically increasing count.
  std::mutex progress_mu;
  std::size_t done = 0;
  auto run_point = [&](std::size_t i) {
    rows[i].point = spec.points[i];
    rows[i].result = cache ? run_cached_point(*cache, spec.points[i])
                           : simulate(spec.points[i].config, spec.points[i].kernel);
    if (options.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, n);
    }
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_point(i);
  } else {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i) pool.submit([&run_point, i] { run_point(i); });
    pool.wait();
  }
  if (cache && options.cache_stats != nullptr) *options.cache_stats += cache->stats();
  return rows;
}

}  // namespace grs::runner
