#include "runner/engine.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "cache/key.h"
#include "common/clock.h"
#include "gpu/result_codec.h"
#include "obs/obs.h"
#include "runner/thread_pool.h"

namespace grs::runner {

namespace {

/// Resolve one point through the cache. Hits skip simulate() entirely (except
/// under kVerify, whose whole point is to re-simulate); misses simulate and —
/// in the writing modes — publish atomically.
SimResult run_cached_point(cache::ResultCache& cache, const SweepPoint& p, bool* from_cache,
                           prof::HostProfiler* prof) {
  const std::string key = cache::result_cache_key(p.config, p.kernel);
  std::string payload;
  SimResult cached;
  bool hit;
  {
    prof::ScopedPhase prof_scope(prof, prof::Phase::kCacheLookup);
    hit = cache.lookup(key, &payload, &cached);
  }
  if (hit) {
    if (cache.mode() == cache::CacheMode::kVerify) {
      // The fuzz oracle recast as an integrity check: a warm entry must be
      // byte-identical to a fresh simulation's encoding.
      SimResult fresh = simulate(p.config, p.kernel, nullptr, prof);
      if (encode_result(fresh) != payload) {
        cache.note_verify_failure();
        throw std::runtime_error("result cache verify FAILED: stored entry " +
                                 cache.entry_path(key) + " differs from re-simulating '" +
                                 p.kernel.name + "' under " + p.variant +
                                 " — the store is poisoned or the simulator changed without "
                                 "bumping the schema version (src/cache/key.h)");
      }
      cache.note_verified();
      return fresh;
    }
    // The payload carries stats + occupancy; the key pins the config, so the
    // caller-visible config is restored from the point itself.
    cached.config = p.config;
    *from_cache = true;
    return cached;
  }
  SimResult fresh = simulate(p.config, p.kernel, nullptr, prof);
  if (cache.mode() != cache::CacheMode::kRead) {
    prof::ScopedPhase prof_scope(prof, prof::Phase::kCacheStore);
    cache.store(key, fresh);
  }
  return fresh;
}

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!f) throw std::runtime_error("failed writing '" + path + "'");
}

}  // namespace

std::string obs_point_path(const std::string& base, std::size_t index, std::size_t n) {
  if (n <= 1) return base;
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  const std::string idx = "." + std::to_string(index);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + idx;
  return base.substr(0, dot) + idx + base.substr(dot);
}

std::vector<SweepRow> run_sweep(const SweepSpec& spec, const RunOptions& options) {
  const std::size_t n = spec.points.size();
  std::vector<SweepRow> rows(n);
  if (n == 0) return rows;

  unsigned threads = options.threads == 0 ? ThreadPool::default_threads() : options.threads;
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, n));

  // Observability forces fresh simulation: a cache hit has no event stream.
  obs::ObsOptions obs_opts;
  obs_opts.trace = !options.trace_path.empty();
  obs_opts.timeline_interval = options.timeline_path.empty() ? 0 : options.timeline_interval;
  const bool observed = obs_opts.any();

  std::unique_ptr<cache::ResultCache> cache;
  if (!observed && options.cache_mode != cache::CacheMode::kOff && !options.cache_dir.empty())
    cache = std::make_unique<cache::ResultCache>(options.cache_dir, options.cache_mode);

  struct ObsOutput {
    std::string trace;
    std::string timeline;
  };
  std::vector<ObsOutput> obs_out(observed ? n : 0);

  // Per-point profilers keep the hot begin/end path lock-free under worker
  // threads; merged below in point order so aggregates are thread-count
  // independent (same trick as the buffered obs outputs).
  std::vector<prof::HostProfiler> profs(options.prof != nullptr ? n : 0);

  // `done` is only mutated under the mutex so the callback sees a
  // monotonically increasing count.
  std::mutex progress_mu;
  std::size_t done = 0;
  auto run_point = [&](std::size_t i) {
    const WallTimer cell_timer;
    prof::HostProfiler* const prof = profs.empty() ? nullptr : &profs[i];
    rows[i].point = spec.points[i];
    if (observed) {
      obs::SimObserver observer(obs_opts);
      rows[i].result = simulate(spec.points[i].config, spec.points[i].kernel, &observer, prof);
      if (obs_opts.trace) obs_out[i].trace = observer.trace_json();
      if (obs_opts.timeline_interval != 0) obs_out[i].timeline = observer.timeline_csv();
    } else {
      rows[i].result =
          cache ? run_cached_point(*cache, spec.points[i], &rows[i].from_cache, prof)
                : simulate(spec.points[i].config, spec.points[i].kernel, nullptr, prof);
    }
    rows[i].wall_ms = cell_timer.seconds() * 1000.0;
    if (options.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, n);
    }
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_point(i);
  } else {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i) pool.submit([&run_point, i] { run_point(i); });
    pool.wait();
  }

  // Buffered observability outputs land on disk only after the sweep, in
  // point order — byte-identical files for any worker count.
  for (std::size_t i = 0; i < obs_out.size(); ++i) {
    if (!options.trace_path.empty())
      write_text_file(obs_point_path(options.trace_path, i, n), obs_out[i].trace);
    if (!options.timeline_path.empty())
      write_text_file(obs_point_path(options.timeline_path, i, n), obs_out[i].timeline);
  }

  for (const auto& p : profs) options.prof->merge(p);

  if (cache && options.cache_stats != nullptr) *options.cache_stats += cache->stats();
  return rows;
}

}  // namespace grs::runner
