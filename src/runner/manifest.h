// Run telemetry: a machine-readable record of how a sweep run went —
// wall-clock per cell, sims/sec, thread-pool utilization, result-cache
// counters, and host + config fingerprints. Written by the CLIs on
// --manifest; this is the perf trajectory the ROADMAP's speedup work diffs
// against, so the schema is versioned ("grs-run-manifest-v1") and documented
// in docs/observability.md.
//
// Manifests record *host-side* facts only (common/clock.h time, hostnames,
// thread counts); nothing here feeds back into simulation state.
#pragma once

#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "runner/engine.h"

namespace grs::runner {

class RunManifest {
 public:
  /// `tool` names the producing binary ("grs_bench", "grs_cli").
  explicit RunManifest(std::string tool) : tool_(std::move(tool)) {}

  /// Record one completed sweep: per-cell wall time and cache provenance come
  /// from the rows (engine.h fills them), `wall_seconds` is the whole-sweep
  /// wall clock, `threads` the worker count actually used.
  void add_sweep(const std::string& name, const std::vector<SweepRow>& rows,
                 double wall_seconds, unsigned threads);

  /// Attach aggregated result-cache counters (omit when caching was off).
  void set_cache_stats(const cache::CacheStats& stats);

  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Cell {
    std::string variant;
    std::string kernel;
    std::string config_fingerprint;  ///< GpuConfig::fingerprint() (sha256 hex)
    double wall_ms = 0.0;
    bool from_cache = false;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
  };
  struct Sweep {
    std::string name;
    unsigned threads = 0;
    double wall_seconds = 0.0;
    double sims_per_second = 0.0;
    /// sum(cell wall) / (threads * sweep wall): 1.0 = perfectly packed pool.
    double pool_utilization = 0.0;
    std::vector<Cell> cells;
  };

  std::string tool_;
  std::vector<Sweep> sweeps_;
  bool has_cache_ = false;
  cache::CacheStats cache_;
};

}  // namespace grs::runner
