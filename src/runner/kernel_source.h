// Kernel ingestion hook for CLI/driver frontends: resolve a kernel argument
// to a KernelInfo wherever it comes from — a built-in paper kernel, a .gkd
// file on disk (workloads/format), the seeded generator (workloads/gen), or
// an address trace imported on the fly (workloads/trace).
//
//   hotspot               built-in (workloads::by_name)
//   path/to/kernel.gkd    .gkd file: spec contains '/' or ends in ".gkd"
//   gen:balanced:42       generator: profile "balanced", seed 42
//   trace:dump.csv        trace import: pc,tid,addr,size CSV or memory log
//
// Errors (unknown names, unreadable/malformed files, bad generator specs)
// are reported as std::runtime_error with an actionable message — including
// the valid kernel/profile names — so frontends can print them and exit
// instead of aborting the process.
#pragma once

#include <string>

#include "workloads/kernel_info.h"

namespace grs::runner {

/// Resolve `spec` to a kernel; throws std::runtime_error on any failure.
[[nodiscard]] KernelInfo resolve_kernel(const std::string& spec);

}  // namespace grs::runner
