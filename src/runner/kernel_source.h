// Kernel ingestion hook for CLI/driver frontends: resolve a kernel argument
// to a KernelInfo wherever it comes from — a built-in paper kernel, a .gkd
// file on disk (workloads/format), the seeded generator (workloads/gen), or
// an address trace imported on the fly (workloads/trace).
//
//   hotspot               built-in (workloads::by_name)
//   path/to/kernel.gkd    .gkd file: spec contains '/' or ends in ".gkd"
//   gen:balanced:42       generator: profile "balanced", seed 42
//   trace:dump.csv        trace import: pc,tid,addr,size CSV or memory log
//
// Errors (unknown names, unreadable/malformed files, bad generator specs)
// are reported as std::runtime_error with an actionable message — including
// the valid kernel/profile names — so frontends can print them and exit
// instead of aborting the process.
#pragma once

#include <string>
#include <vector>

#include "workloads/kernel_info.h"

namespace grs::runner {

/// Resolve `spec` to a kernel; throws std::runtime_error on any failure.
[[nodiscard]] KernelInfo resolve_kernel(const std::string& spec);

/// The saved-kernel corpus directory: $GRS_CORPUS_DIR when set and non-empty,
/// else "examples/kernels" (relative to the working directory — the repo root
/// in CI and the documented workflows).
[[nodiscard]] std::string default_corpus_dir();

/// Load every .gkd file under `dir`, in sorted-path order (directory order is
/// unspecified). Unreadable or malformed files are reported on stderr and
/// skipped; a missing/empty directory is reported and yields an empty vector.
/// The strict load contract lives in the test suite — sweep drivers run what
/// they can.
[[nodiscard]] std::vector<KernelInfo> load_kernel_dir(const std::string& dir);

}  // namespace grs::runner
