// Shared CLI option surface for the sweep-running frontends (grs_cli,
// grs_bench): one strict parser and one --help text source for the engine
// options they have in common — --threads/--filter/--out/--json, the
// result-cache family --cache/--cache-mode/--cache-stats, the
// observability family --trace/--timeline/--timeline-interval/--manifest,
// the host-profiling family --prof/--prof-folded, and --progress — so the
// scripts/check_docs.sh flag-drift check has a single origin and the two
// binaries can never disagree on spelling, validation, or semantics.
//
//   CommonOptions opts;
//   for (each arg) {
//     if (parse_common_flag(opts, kFlags, arg, next)) continue;  // consumed
//     ...binary-specific flags...
//   }
//   opts.finalize();                       // cross-flag validation
//   RunOptions run = opts.run_options(&cache_stats);
//
// Malformed values and inconsistent combinations throw UsageError; frontends
// catch it and exit through their own usage() path.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "cache/result_cache.h"
#include "common/types.h"
#include "runner/engine.h"

namespace grs::runner {

/// A bad flag value or combination; what() is the user-facing message.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which of the shared flags a binary accepts (--threads/--out and the
/// --cache family are universal).
struct CommonFlagSet {
  bool filter = false;
  bool json = false;
};

/// Parsed values of the shared flags.
struct CommonOptions {
  unsigned threads = 0;     ///< --threads (0 = hardware concurrency)
  std::string filter;       ///< --filter substring (when the set allows it)
  std::string out_csv;      ///< --out FILE
  std::string out_json;     ///< --json FILE (when the set allows it)
  std::string cache_dir;    ///< --cache DIR ("" = caching off)
  cache::CacheMode cache_mode = cache::CacheMode::kReadWrite;  ///< --cache-mode
  bool cache_mode_set = false;
  bool cache_stats = false;  ///< --cache-stats

  // Observability (src/obs; docs/observability.md).
  std::string trace_path;     ///< --trace FILE
  std::string timeline_path;  ///< --timeline FILE
  Cycle timeline_interval = 1000;  ///< --timeline-interval N
  bool timeline_interval_set = false;
  std::string manifest_path;  ///< --manifest FILE

  // Host-phase profiling (src/prof; docs/perf-tracking.md).
  std::string prof_path;         ///< --prof FILE (JSON phase breakdown)
  std::string prof_folded_path;  ///< --prof-folded FILE (flamegraph input)

  bool progress = false;  ///< --progress (stderr completion ticker)

  /// True when this run collects trace events or timeline samples (which
  /// forces fresh simulation — see RunOptions).
  [[nodiscard]] bool obs_enabled() const {
    return !trace_path.empty() || !timeline_path.empty();
  }

  /// True when this run times host phases (per-point profilers, merged by
  /// the engine; does NOT bypass the result cache).
  [[nodiscard]] bool prof_enabled() const {
    return !prof_path.empty() || !prof_folded_path.empty();
  }

  /// True when sweeps should consult the store.
  [[nodiscard]] bool cache_enabled() const {
    return !cache_dir.empty() && cache_mode != cache::CacheMode::kOff;
  }

  /// Cross-flag validation (call once after the argv loop): --cache-mode and
  /// --cache-stats require --cache; --timeline-interval requires --timeline.
  /// Throws UsageError.
  void finalize() const;

  /// Engine options carrying the threads + cache settings; `stats_out` (may
  /// be null) receives accumulated cache counters across run_sweep calls and
  /// `prof_out` (may be null) the merged host-phase profile — pass the same
  /// profiler to every run_options() call so one file covers the whole
  /// invocation no matter how many sweeps it runs.
  [[nodiscard]] RunOptions run_options(cache::CacheStats* stats_out = nullptr,
                                       prof::HostProfiler* prof_out = nullptr) const;
};

/// Consume `arg` if it is one of the shared flags accepted by `set`; `next`
/// yields the following argv entry (and may itself throw/exit when absent).
/// Returns false when the flag is not one of ours. Strict values: numbers
/// must parse in full and in range (UsageError otherwise, never atoi-zero).
[[nodiscard]] bool parse_common_flag(CommonOptions& opts, const CommonFlagSet& set,
                                     const std::string& arg,
                                     const std::function<std::string()>& next);

/// The --help lines for the shared flags accepted by `set` (trailing
/// newline included) — the single help-text source both binaries print.
[[nodiscard]] std::string common_options_help(const CommonFlagSet& set);

}  // namespace grs::runner
