// Declarative sweep specification: the grid of (GpuConfig variant x kernel)
// points one experiment runs. Every bench/*.cc driver is a builder of one of
// these; the engine (runner/engine.h) executes it.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "workloads/kernel_info.h"

namespace grs::runner {

/// One named configuration line of an experiment (a column in a paper figure),
/// e.g. {"Unshared-LRR", configs::unshared()}.
struct ConfigVariant {
  std::string label;
  GpuConfig config;

  /// Variant whose label is the config's own paper legend (line_label()).
  [[nodiscard]] static ConfigVariant of(const GpuConfig& cfg) { return {cfg.line_label(), cfg}; }
};

/// One simulation to run: a variant applied to a kernel.
struct SweepPoint {
  std::string variant;
  GpuConfig config;
  KernelInfo kernel;
};

/// An ordered list of sweep points. Order is meaningful: the engine returns
/// results in exactly this order regardless of worker count.
struct SweepSpec {
  std::vector<SweepPoint> points;

  void add(std::string variant, const GpuConfig& cfg, const KernelInfo& kernel);

  /// Cross product: every variant applied to every kernel, kernels innermost.
  void add_grid(const std::vector<ConfigVariant>& variants,
                const std::vector<KernelInfo>& kernels);

  /// Keep only points whose kernel name contains `substr` (case-insensitive).
  /// An empty filter keeps everything.
  void filter_kernels(const std::string& substr);

  [[nodiscard]] bool empty() const { return points.empty(); }
  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Case-insensitive substring match (the CLI --filter semantics).
[[nodiscard]] bool kernel_name_matches(const std::string& name, const std::string& substr);

}  // namespace grs::runner
