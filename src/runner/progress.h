// Stderr progress ticker for long sweeps (grs_bench --progress).
//
// Renders a single carriage-return-updated line — cells done/total, rolling
// sims/sec, and an ETA from the rolling rate — strictly on stderr, so it can
// never interleave with CSV/JSON results on stdout. update() is designed to
// be the RunOptions::progress callback: the engine already serializes those
// under a mutex, so the ticker itself keeps no locks.
#pragma once

#include <cstddef>

#include "common/clock.h"

namespace grs::runner {

class ProgressTicker {
 public:
  /// `tag` prefixes the line, e.g. "[grs_bench]".
  explicit ProgressTicker(const char* tag) : tag_(tag) {}
  ~ProgressTicker() { finish(); }

  /// Redraw the ticker line; matches the RunOptions::progress signature.
  void update(std::size_t done, std::size_t total);

  /// Terminate the ticker line with a newline (idempotent; called by the
  /// destructor so a throwing sweep still leaves stderr at column 0).
  void finish();

 private:
  const char* tag_;
  WallTimer timer_;
  bool printed_ = false;
};

}  // namespace grs::runner
