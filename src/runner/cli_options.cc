#include "runner/cli_options.h"

#include "common/parse.h"

namespace grs::runner {

void CommonOptions::finalize() const {
  if (cache_mode_set && cache_dir.empty())
    throw UsageError("--cache-mode only applies together with --cache DIR");
  if (cache_stats && cache_dir.empty())
    throw UsageError("--cache-stats only applies together with --cache DIR");
}

RunOptions CommonOptions::run_options(cache::CacheStats* stats_out) const {
  RunOptions run;
  run.threads = threads;
  run.cache_dir = cache_dir;
  run.cache_mode = cache_dir.empty() ? cache::CacheMode::kOff : cache_mode;
  run.cache_stats = stats_out;
  return run;
}

bool parse_common_flag(CommonOptions& opts, const CommonFlagSet& set, const std::string& arg,
                       const std::function<std::string()>& next) {
  if (arg == "--threads") {
    const std::string value = next();
    const auto v = parse_u32(value);
    if (!v.has_value())
      throw UsageError("--threads expects a non-negative integer, got '" + value + "'");
    opts.threads = *v;
    return true;
  }
  if (set.filter && arg == "--filter") {
    opts.filter = next();
    return true;
  }
  if (arg == "--out") {
    opts.out_csv = next();
    return true;
  }
  if (set.json && arg == "--json") {
    opts.out_json = next();
    return true;
  }
  if (arg == "--cache") {
    opts.cache_dir = next();
    if (opts.cache_dir.empty()) throw UsageError("--cache expects a directory");
    return true;
  }
  if (arg == "--cache-mode") {
    const std::string value = next();
    const auto m = cache::parse_cache_mode(value);
    if (!m.has_value())
      throw UsageError("unknown --cache-mode '" + value + "' (off | read | readwrite | verify)");
    opts.cache_mode = *m;
    opts.cache_mode_set = true;
    return true;
  }
  if (arg == "--cache-stats") {
    opts.cache_stats = true;
    return true;
  }
  return false;
}

std::string common_options_help(const CommonFlagSet& set) {
  std::string out;
  out +=
      "  --threads N       worker threads (default: hardware concurrency);\n"
      "                    results are byte-identical for any value\n";
  if (set.filter)
    out +=
        "  --filter SUBSTR   only kernels whose name contains SUBSTR\n"
        "                    (case-insensitive); benches with no per-kernel\n"
        "                    simulation (fig1, hw_cost) print in full regardless\n";
  out += "  --out FILE        write CSV rows of every sweep point to FILE\n";
  if (set.json)
    out += "  --json FILE       write the same rows as a JSON array to FILE\n";
  out +=
      "  --cache DIR       content-addressed result cache under DIR: sweep\n"
      "                    points are keyed on hash(kernel, config, schema)\n"
      "                    and reused across runs (docs/result-cache.md)\n"
      "  --cache-mode M    off | read | readwrite | verify (default readwrite;\n"
      "                    verify re-simulates hits and fails on any byte diff)\n"
      "  --cache-stats     print cache hit/miss/bytes counters to stderr\n";
  return out;
}

}  // namespace grs::runner
