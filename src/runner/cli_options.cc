#include "runner/cli_options.h"

#include "common/parse.h"

namespace grs::runner {

void CommonOptions::finalize() const {
  if (cache_mode_set && cache_dir.empty())
    throw UsageError("--cache-mode only applies together with --cache DIR");
  if (cache_stats && cache_dir.empty())
    throw UsageError("--cache-stats only applies together with --cache DIR");
  if (timeline_interval_set && timeline_path.empty())
    throw UsageError("--timeline-interval only applies together with --timeline FILE");
}

RunOptions CommonOptions::run_options(cache::CacheStats* stats_out,
                                      prof::HostProfiler* prof_out) const {
  RunOptions run;
  run.threads = threads;
  run.cache_dir = cache_dir;
  run.cache_mode = cache_dir.empty() ? cache::CacheMode::kOff : cache_mode;
  run.cache_stats = stats_out;
  run.trace_path = trace_path;
  run.timeline_path = timeline_path;
  run.timeline_interval = timeline_interval;
  run.prof = prof_enabled() ? prof_out : nullptr;
  return run;
}

bool parse_common_flag(CommonOptions& opts, const CommonFlagSet& set, const std::string& arg,
                       const std::function<std::string()>& next) {
  if (arg == "--threads") {
    const std::string value = next();
    const auto v = parse_u32(value);
    if (!v.has_value())
      throw UsageError("--threads expects a non-negative integer, got '" + value + "'");
    opts.threads = *v;
    return true;
  }
  if (set.filter && arg == "--filter") {
    opts.filter = next();
    return true;
  }
  if (arg == "--out") {
    opts.out_csv = next();
    return true;
  }
  if (set.json && arg == "--json") {
    opts.out_json = next();
    return true;
  }
  if (arg == "--cache") {
    opts.cache_dir = next();
    if (opts.cache_dir.empty()) throw UsageError("--cache expects a directory");
    return true;
  }
  if (arg == "--cache-mode") {
    const std::string value = next();
    const auto m = cache::parse_cache_mode(value);
    if (!m.has_value())
      throw UsageError("unknown --cache-mode '" + value + "' (off | read | readwrite | verify)");
    opts.cache_mode = *m;
    opts.cache_mode_set = true;
    return true;
  }
  if (arg == "--cache-stats") {
    opts.cache_stats = true;
    return true;
  }
  if (arg == "--trace") {
    opts.trace_path = next();
    if (opts.trace_path.empty()) throw UsageError("--trace expects a file name");
    return true;
  }
  if (arg == "--timeline") {
    opts.timeline_path = next();
    if (opts.timeline_path.empty()) throw UsageError("--timeline expects a file name");
    return true;
  }
  if (arg == "--timeline-interval") {
    const std::string value = next();
    const auto v = parse_u32(value);
    if (!v.has_value() || *v == 0)
      throw UsageError("--timeline-interval expects a positive cycle count, got '" + value +
                       "'");
    opts.timeline_interval = *v;
    opts.timeline_interval_set = true;
    return true;
  }
  if (arg == "--manifest") {
    opts.manifest_path = next();
    if (opts.manifest_path.empty()) throw UsageError("--manifest expects a file name");
    return true;
  }
  if (arg == "--prof") {
    opts.prof_path = next();
    if (opts.prof_path.empty()) throw UsageError("--prof expects a file name");
    return true;
  }
  if (arg == "--prof-folded") {
    opts.prof_folded_path = next();
    if (opts.prof_folded_path.empty()) throw UsageError("--prof-folded expects a file name");
    return true;
  }
  if (arg == "--progress") {
    opts.progress = true;
    return true;
  }
  return false;
}

std::string common_options_help(const CommonFlagSet& set) {
  std::string out;
  out +=
      "  --threads N       worker threads (default: hardware concurrency);\n"
      "                    results are byte-identical for any value\n";
  if (set.filter)
    out +=
        "  --filter SUBSTR   only kernels whose name contains SUBSTR\n"
        "                    (case-insensitive); benches with no per-kernel\n"
        "                    simulation (fig1, hw_cost) print in full regardless\n";
  out += "  --out FILE        write CSV rows of every sweep point to FILE\n";
  if (set.json)
    out += "  --json FILE       write the same rows as a JSON array to FILE\n";
  out +=
      "  --cache DIR       content-addressed result cache under DIR: sweep\n"
      "                    points are keyed on hash(kernel, config, schema)\n"
      "                    and reused across runs (docs/result-cache.md)\n"
      "  --cache-mode M    off | read | readwrite | verify (default readwrite;\n"
      "                    verify re-simulates hits and fails on any byte diff)\n"
      "  --cache-stats     print cache hit/miss/bytes counters to stderr\n"
      "  --trace FILE      write a Chrome-trace/Perfetto JSON of every sweep\n"
      "                    point (multi-point sweeps write FILE.0, FILE.1, ...);\n"
      "                    forces fresh simulation, bypassing --cache\n"
      "  --timeline FILE   write a per-SM counter timeline CSV per sweep point\n"
      "                    (same per-point naming; byte-identical across\n"
      "                    --threads and exec modes — docs/observability.md)\n"
      "  --timeline-interval N   timeline sample period in cycles (default 1000)\n"
      "  --manifest FILE   write run telemetry JSON: wall clock per cell,\n"
      "                    sims/sec, pool utilization, cache counters,\n"
      "                    host + config fingerprints\n"
      "  --prof FILE       write a host-phase profile JSON: where the wall\n"
      "                    clock goes inside simulation (scheduler scan, issue,\n"
      "                    memory system, ... — docs/perf-tracking.md); never\n"
      "                    changes sim stats\n"
      "  --prof-folded FILE  write folded-stack lines for flamegraph tools\n"
      "                    (flamegraph.pl, speedscope)\n"
      "  --progress        print a completion ticker to stderr as sweep\n"
      "                    points finish\n";
  return out;
}

}  // namespace grs::runner
