#include "runner/sink.h"

#include <cinttypes>
#include <cstdio>

#include "common/table.h"
#include "gpu/result_codec.h"

namespace grs::runner {

namespace {

std::string u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Cells [0, kNumStringColumns) hold strings; the rest are numeric. The JSON
/// sink uses this to decide what to quote.
constexpr std::size_t kNumStringColumns = 4;

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

// The numeric tail of the flat row is no longer hand-maintained here: it is
// the `flat`-flagged subset of the SimResult codec enumeration
// (gpu/result_codec.h), in enumeration order — one schema shared with the
// result cache. Only the identifying string columns (and the kernel's grid
// size, which lives on the sweep point, not the result) are sink-specific.

const std::vector<std::string>& result_columns() {
  static const std::vector<std::string> columns = [] {
    std::vector<std::string> c = {"bench", "variant", "kernel", "set", "grid_blocks"};
    for (const ResultField& f : result_fields())
      if (f.flat) c.emplace_back(f.name);
    return c;
  }();
  return columns;
}

std::vector<std::string> result_cells(const std::string& bench, const SweepRow& row) {
  std::vector<std::string> cells = {bench, row.point.variant, row.point.kernel.name,
                                    row.point.kernel.set, u64(row.point.kernel.grid_blocks)};
  cells.reserve(result_columns().size());
  for (const ResultField& f : result_fields())
    if (f.flat) cells.push_back(format_result_field(f, row.result));
  return cells;
}

void CsvSink::begin() {
  const auto& cols = result_columns();
  for (std::size_t c = 0; c < cols.size(); ++c)
    out_ << (c == 0 ? "" : ",") << csv_escape(cols[c]);
  out_ << "\n";
}

void CsvSink::add(const std::string& bench, const SweepRow& row) {
  const auto cells = result_cells(bench, row);
  for (std::size_t c = 0; c < cells.size(); ++c)
    out_ << (c == 0 ? "" : ",") << csv_escape(cells[c]);
  out_ << "\n";
}

void JsonSink::begin() { out_ << "[\n"; }

void JsonSink::add(const std::string& bench, const SweepRow& row) {
  const auto& cols = result_columns();
  const auto cells = result_cells(bench, row);
  out_ << (first_ ? "" : ",\n") << "  {";
  first_ = false;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out_ << (c == 0 ? "" : ", ") << '"' << json_escape(cols[c]) << "\": ";
    if (c < kNumStringColumns) {
      out_ << '"' << json_escape(cells[c]) << '"';
    } else {
      out_ << cells[c];
    }
  }
  out_ << "}";
}

void JsonSink::end() { out_ << "\n]\n"; }

void ConsoleTableSink::add(const std::string& bench, const SweepRow& row) {
  if (bench != current_bench_) {
    flush_table();
    current_bench_ = bench;
  }
  const SimResult& r = row.result;
  pending_.push_back({row.point.kernel.name, row.point.variant,
                      std::to_string(r.occupancy.total_blocks),
                      TextTable::fmt(r.stats.ipc()),
                      std::to_string(r.stats.cycles),
                      TextTable::pct(100.0 * r.stats.l1_miss_rate())});
}

void ConsoleTableSink::end() { flush_table(); }

void ConsoleTableSink::flush_table() {
  if (pending_.empty()) return;
  TextTable t({"kernel", "variant", "blocks/SM", "IPC", "cycles", "L1 miss"});
  for (auto& row : pending_) t.add_row(std::move(row));
  t.print("sweep results: " + current_bench_);
  pending_.clear();
}

}  // namespace grs::runner
