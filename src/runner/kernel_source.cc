#include "runner/kernel_source.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <stdexcept>

#include "common/parse.h"
#include "workloads/format/gkd.h"
#include "workloads/gen/generator.h"
#include "workloads/suites.h"
#include "workloads/trace/import.h"

namespace grs::runner {

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

KernelInfo resolve_kernel(const std::string& spec) {
  if (spec.compare(0, 4, "gen:") == 0) {
    const std::string rest = spec.substr(4);  // "<profile>:<seed>"
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::runtime_error("bad generator spec '" + spec +
                               "': expected gen:<profile>:<seed>");
    }
    const std::optional<std::uint64_t> seed = parse_u64(rest.substr(colon + 1));
    if (!seed.has_value()) {
      throw std::runtime_error("bad generator spec '" + spec +
                               "': seed must be a non-negative integer");
    }
    const workloads::gen::GenProfile profile =
        workloads::gen::profile_by_name(rest.substr(0, colon));
    return workloads::gen::generate(profile, *seed);
  }
  if (spec.compare(0, 6, "trace:") == 0) {
    const std::string path = spec.substr(6);
    if (path.empty()) {
      throw std::runtime_error("bad trace spec '" + spec + "': expected trace:<file>");
    }
    return workloads::trace::import_trace_file(path);
  }
  if (has_suffix(spec, ".gkd") || spec.find('/') != std::string::npos) {
    return workloads::gkd::load_file(spec);
  }
  if (std::optional<KernelInfo> k = workloads::find_by_name(spec)) return *std::move(k);
  std::string names;
  for (const auto& n : workloads::all_names()) {
    if (!names.empty()) names += ' ';
    names += n;
  }
  throw std::runtime_error("unknown kernel '" + spec + "'; valid names: " + names +
                           " (or a .gkd file path, gen:<profile>:<seed>, or trace:<file>)");
}

std::string default_corpus_dir() {
  const char* env = std::getenv("GRS_CORPUS_DIR");
  return env != nullptr && *env != '\0' ? env : "examples/kernels";
}

std::vector<KernelInfo> load_kernel_dir(const std::string& dir) {
  std::vector<KernelInfo> kernels;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".gkd") paths.push_back(entry.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "[corpus] cannot read %s: %s\n", dir.c_str(), ec.message().c_str());
    return kernels;
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    try {
      kernels.push_back(workloads::gkd::load_file(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[corpus] skipping %s: %s\n", path.c_str(), e.what());
    }
  }
  if (kernels.empty()) {
    std::fprintf(stderr, "[corpus] no loadable .gkd kernels under %s\n", dir.c_str());
  }
  return kernels;
}

}  // namespace grs::runner
