#include "runner/registry.h"

#include <algorithm>
#include <utility>

namespace grs::runner {

namespace {

std::vector<BenchDef>& registry() {
  static std::vector<BenchDef> benches;
  return benches;
}

}  // namespace

const SimResult* BenchView::find(const std::string& variant, const std::string& kernel) const {
  for (const SweepRow& r : rows_) {
    if (r.point.variant == variant && r.point.kernel.name == kernel) return &r.result;
  }
  return nullptr;
}

std::vector<std::string> BenchView::kernels() const {
  std::vector<std::string> names;
  for (const SweepRow& r : rows_) {
    if (std::find(names.begin(), names.end(), r.point.kernel.name) == names.end()) {
      names.push_back(r.point.kernel.name);
    }
  }
  return names;
}

void register_bench(BenchDef def) { registry().push_back(std::move(def)); }

std::vector<const BenchDef*> all_benches() {
  std::vector<const BenchDef*> out;
  out.reserve(registry().size());
  for (const BenchDef& b : registry()) out.push_back(&b);
  std::sort(out.begin(), out.end(),
            [](const BenchDef* a, const BenchDef* b) { return a->name < b->name; });
  return out;
}

const BenchDef* find_bench(const std::string& name) {
  for (const BenchDef& b : registry())
    if (b.name == name) return &b;
  return nullptr;
}

}  // namespace grs::runner
