// Observability vocabulary: the warp-state taxonomy and the pid/tid address
// scheme shared by the trace emitter, the docs, and the CI schema validator.
//
// Warp states mirror the scheduler's candidate-scan classification in
// sm/sm.cc run_scheduler() one-to-one, so a Perfetto timeline of these slices
// decomposes exactly into the issued/stall/idle cycle accounting of
// common/stats.h. The scan classifies every live warp every scanned cycle;
// the trace collector turns that stream into state-transition slices, which
// is what makes trace bytes identical across cycle and event exec modes
// (event mode only skips cycles whose scan is provably unchanged).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace grs::obs {

/// What the candidate scan decided about one live warp this cycle.
enum class WarpState : std::uint8_t {
  kNone = 0,     ///< not live (internal sentinel; never emitted)
  kEligible,     ///< ready candidate (issued or lost arbitration)
  kBarrier,      ///< waiting at a block-wide barrier
  kScoreboard,   ///< RAW/WAW on an in-flight result
  kDrainExit,    ///< at kExit, draining in-flight instructions
  kLockWait,     ///< busy-waiting on a sharing lock (register or scratchpad)
  kDynGated,     ///< suppressed by the Dyn warp-execution gate
  kLsuPort,      ///< structural: LSU issue port taken this cycle
  kLsuQueue,     ///< structural: LSU in-flight queue full
  kMshrFull,     ///< structural: L1 MSHR cannot take the load's transactions
  kSfuPort,      ///< structural: SFU issue port taken this cycle
};

/// Slice name shown on the warp's Perfetto track.
[[nodiscard]] constexpr const char* to_string(WarpState s) {
  switch (s) {
    case WarpState::kNone: return "none";
    case WarpState::kEligible: return "eligible";
    case WarpState::kBarrier: return "barrier";
    case WarpState::kScoreboard: return "scoreboard";
    case WarpState::kDrainExit: return "exit-drain";
    case WarpState::kLockWait: return "lock-wait";
    case WarpState::kDynGated: return "dyn-gated";
    case WarpState::kLsuPort: return "lsu-port";
    case WarpState::kLsuQueue: return "lsu-queue";
    case WarpState::kMshrFull: return "mshr-full";
    case WarpState::kSfuPort: return "sfu-port";
  }
  return "?";
}

/// Outcome of one L1 transaction (loads; stores are fire-and-forget).
enum class L1Outcome : std::uint8_t { kHit, kMerge, kMiss, kStore };

[[nodiscard]] constexpr const char* to_string(L1Outcome o) {
  switch (o) {
    case L1Outcome::kHit: return "L1 hit";
    case L1Outcome::kMerge: return "L1 merge";
    case L1Outcome::kMiss: return "L1 miss";
    case L1Outcome::kStore: return "L1 store";
  }
  return "?";
}

// --- trace address scheme (documented in docs/observability.md) ------------
// Perfetto renders pid as a process group and tid as a track. SMs are
// processes 1..num_sms; the shared memory system is process num_sms+1.
// Within an SM process: warps, block slots, pairs, and the L1 get disjoint
// tid ranges so tracks sort naturally.

[[nodiscard]] constexpr std::uint32_t sm_pid(SmId sm) { return sm + 1; }
[[nodiscard]] constexpr std::uint32_t mem_pid(std::uint32_t num_sms) { return num_sms + 1; }

[[nodiscard]] constexpr std::uint32_t warp_tid(std::uint32_t slot) { return 1 + slot; }
[[nodiscard]] constexpr std::uint32_t block_tid(std::uint32_t slot) { return 1001 + slot; }
[[nodiscard]] constexpr std::uint32_t pair_tid(std::uint32_t pair) { return 2001 + pair; }
inline constexpr std::uint32_t kL1Tid = 3001;

[[nodiscard]] constexpr std::uint32_t l2_bank_tid(std::uint32_t bank) { return 1 + bank; }
[[nodiscard]] constexpr std::uint32_t dram_bank_tid(std::uint32_t channel, std::uint32_t bank,
                                                    std::uint32_t banks_per_channel) {
  return 1001 + channel * banks_per_channel + bank;
}

}  // namespace grs::obs
