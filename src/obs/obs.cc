#include "obs/obs.h"

#include <cinttypes>
#include <cstdio>

#include "common/check.h"

namespace grs::obs {

namespace {

std::string name_args(const char* fmt, std::uint64_t v) {
  char tmp[64];
  std::snprintf(tmp, sizeof tmp, fmt, v);
  return tmp;
}

TraceEvent meta_process(std::uint32_t pid, const std::string& name) {
  TraceEvent e;
  e.ph = 'M';
  e.name = "process_name";
  e.pid = pid;
  e.args_json = "{\"name\":\"" + name + "\"}";
  return e;
}

TraceEvent meta_thread(std::uint32_t pid, std::uint32_t tid, const std::string& name) {
  TraceEvent e;
  e.ph = 'M';
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.args_json = "{\"name\":\"" + name + "\"}";
  return e;
}

}  // namespace

SimObserver::SimObserver(const ObsOptions& opts) : opts_(opts) {
  if (opts_.trace) {
    owned_sink_ = std::make_unique<ChromeTraceSink>();
    sink_ = owned_sink_.get();
  }
  if (opts_.timeline_interval != 0)
    timeline_ = std::make_unique<TimelineSampler>(opts_.timeline_interval);
}

SimObserver::SimObserver(const ObsOptions& opts, TraceSink* sink) : opts_(opts), sink_(sink) {
  opts_.trace = sink != nullptr;
  if (opts_.timeline_interval != 0)
    timeline_ = std::make_unique<TimelineSampler>(opts_.timeline_interval);
}

void SimObserver::begin_run(const TraceTopology& topo) {
  num_sms_ = topo.num_sms;
  warp_slots_ = topo.warp_slots;
  dram_banks_per_channel_ = topo.dram_banks_per_channel;
  kernel_ = topo.kernel;
  if (sink_ == nullptr) return;

  open_.assign(static_cast<std::size_t>(topo.num_sms) * topo.warp_slots, WarpState::kNone);
  sink_->begin();
  for (std::uint32_t s = 0; s < topo.num_sms; ++s) {
    const std::uint32_t pid = sm_pid(s);
    sink_->emit(meta_process(pid, "SM " + std::to_string(s)));
    for (std::uint32_t w = 0; w < topo.warp_slots; ++w)
      sink_->emit(meta_thread(pid, warp_tid(w), "warp " + std::to_string(w)));
    for (std::uint32_t b = 0; b < topo.block_slots; ++b)
      sink_->emit(meta_thread(pid, block_tid(b), "block slot " + std::to_string(b)));
    for (std::uint32_t p = 0; p < topo.pairs; ++p)
      sink_->emit(meta_thread(pid, pair_tid(p), "pair " + std::to_string(p)));
    sink_->emit(meta_thread(pid, kL1Tid, "L1"));
  }
  const std::uint32_t mpid = mem_pid(topo.num_sms);
  sink_->emit(meta_process(mpid, "MemSys"));
  for (std::uint32_t b = 0; b < topo.l2_banks; ++b)
    sink_->emit(meta_thread(mpid, l2_bank_tid(b), "L2 bank " + std::to_string(b)));
  for (std::uint32_t c = 0; c < topo.dram_channels; ++c)
    for (std::uint32_t b = 0; b < topo.dram_banks_per_channel; ++b)
      sink_->emit(meta_thread(mpid, dram_bank_tid(c, b, topo.dram_banks_per_channel),
                              "DRAM " + std::to_string(c) + "." + std::to_string(b)));
}

void SimObserver::close_slice(SmId sm, std::uint32_t slot, Cycle now) {
  WarpState& cur = open_[static_cast<std::size_t>(sm) * warp_slots_ + slot];
  if (cur == WarpState::kNone) return;
  TraceEvent e;
  e.ph = 'E';
  e.pid = sm_pid(sm);
  e.tid = warp_tid(slot);
  e.ts = now;
  e.name = to_string(cur);
  e.cat = "warp";
  sink_->emit(e);
  cur = WarpState::kNone;
}

void SimObserver::warp_scan(SmId sm, std::uint32_t slot, Cycle now, WarpState st) {
  WarpState& cur = open_[static_cast<std::size_t>(sm) * warp_slots_ + slot];
  if (cur == st) return;
  close_slice(sm, slot, now);
  TraceEvent e;
  e.ph = 'B';
  e.pid = sm_pid(sm);
  e.tid = warp_tid(slot);
  e.ts = now;
  e.name = to_string(st);
  e.cat = "warp";
  sink_->emit(e);
  cur = st;
}

void SimObserver::warp_issue(SmId sm, std::uint32_t slot, Cycle now, Op op) {
  TraceEvent e;
  e.ph = 'i';
  e.pid = sm_pid(sm);
  e.tid = warp_tid(slot);
  e.ts = now;
  e.name = to_string(op);
  e.cat = "issue";
  sink_->emit(e);
}

void SimObserver::warp_exit(SmId sm, std::uint32_t slot, Cycle now) {
  close_slice(sm, slot, now);
}

void SimObserver::block_launch(SmId sm, std::uint32_t slot, std::uint64_t block_uid, Cycle now,
                               int pair_id, int side, bool owner) {
  TraceEvent e;
  e.ph = 'B';
  e.pid = sm_pid(sm);
  e.tid = block_tid(slot);
  e.ts = now;
  e.name = "block";
  e.cat = "block";
  char tmp[96];
  if (pair_id >= 0) {
    std::snprintf(tmp, sizeof tmp, "{\"uid\":%" PRIu64 ",\"pair\":%d,\"side\":%d,\"owner\":%s}",
                  block_uid, pair_id, side, owner ? "true" : "false");
  } else {
    std::snprintf(tmp, sizeof tmp, "{\"uid\":%" PRIu64 "}", block_uid);
  }
  e.args_json = tmp;
  sink_->emit(e);
}

void SimObserver::block_finish(SmId sm, std::uint32_t slot, std::uint64_t block_uid, Cycle now) {
  TraceEvent e;
  e.ph = 'E';
  e.pid = sm_pid(sm);
  e.tid = block_tid(slot);
  e.ts = now;
  e.name = "block";
  e.cat = "block";
  e.args_json = name_args("{\"uid\":%" PRIu64 "}", block_uid);
  sink_->emit(e);
}

void SimObserver::lock_acquire(SmId sm, std::uint32_t pair, Cycle now, bool reg, int side,
                               std::uint32_t pos, bool owner_seeded) {
  TraceEvent e;
  e.ph = 'i';
  e.pid = sm_pid(sm);
  e.tid = pair_tid(pair);
  e.ts = now;
  e.name = reg ? "reg-acquire" : "smem-acquire";
  e.cat = "sharing";
  char tmp[80];
  std::snprintf(tmp, sizeof tmp, "{\"side\":%d,\"pos\":%u,\"seeds_owner\":%s}", side, pos,
                owner_seeded ? "true" : "false");
  e.args_json = tmp;
  sink_->emit(e);
}

void SimObserver::lock_release_warp(SmId sm, std::uint32_t pair, Cycle now, int side,
                                    std::uint32_t pos) {
  TraceEvent e;
  e.ph = 'i';
  e.pid = sm_pid(sm);
  e.tid = pair_tid(pair);
  e.ts = now;
  e.name = "reg-release";
  e.cat = "sharing";
  char tmp[48];
  std::snprintf(tmp, sizeof tmp, "{\"side\":%d,\"pos\":%u}", side, pos);
  e.args_json = tmp;
  sink_->emit(e);
}

void SimObserver::lock_release_block(SmId sm, std::uint32_t pair, Cycle now, int side) {
  TraceEvent e;
  e.ph = 'i';
  e.pid = sm_pid(sm);
  e.tid = pair_tid(pair);
  e.ts = now;
  e.name = "release-on-finish";
  e.cat = "sharing";
  e.args_json = name_args("{\"side\":%" PRIu64 "}", static_cast<std::uint64_t>(side));
  sink_->emit(e);
}

void SimObserver::ownership_transfer(SmId sm, std::uint32_t pair, Cycle now, int new_side) {
  TraceEvent e;
  e.ph = 'i';
  e.pid = sm_pid(sm);
  e.tid = pair_tid(pair);
  e.ts = now;
  e.name = "ownership-transfer";
  e.cat = "sharing";
  e.args_json = name_args("{\"new_side\":%" PRIu64 "}", static_cast<std::uint64_t>(new_side));
  sink_->emit(e);
}

void SimObserver::l1_transaction(SmId sm, Cycle now, Addr line_addr, L1Outcome outcome,
                                 Cycle done) {
  TraceEvent e;
  e.ph = 'X';
  e.pid = sm_pid(sm);
  e.tid = kL1Tid;
  e.ts = now;
  e.dur = done > now ? done - now : 0;
  e.name = to_string(outcome);
  e.cat = "mem";
  e.args_json = name_args("{\"line\":\"0x%" PRIx64 "\"}", static_cast<std::uint64_t>(line_addr));
  sink_->emit(e);
}

void SimObserver::l2_transaction(std::uint32_t bank, Cycle start, Addr line_addr, bool hit,
                                 bool merge, Cycle done) {
  TraceEvent e;
  e.ph = 'X';
  e.pid = mem_pid(num_sms_);
  e.tid = l2_bank_tid(bank);
  e.ts = start;
  e.dur = done > start ? done - start : 0;
  e.name = hit ? "L2 hit" : (merge ? "L2 merge" : "L2 miss");
  e.cat = "mem";
  e.args_json = name_args("{\"line\":\"0x%" PRIx64 "\"}", static_cast<std::uint64_t>(line_addr));
  sink_->emit(e);
}

void SimObserver::dram_transaction(std::uint32_t channel, std::uint32_t bank, Cycle begin,
                                   Addr line_addr, bool row_hit, Cycle done) {
  TraceEvent e;
  e.ph = 'X';
  e.pid = mem_pid(num_sms_);
  e.tid = dram_bank_tid(channel, bank, dram_banks_per_channel_);
  e.ts = begin;
  e.dur = done > begin ? done - begin : 0;
  e.name = row_hit ? "row hit" : "row miss";
  e.cat = "mem";
  e.args_json = name_args("{\"line\":\"0x%" PRIx64 "\"}", static_cast<std::uint64_t>(line_addr));
  sink_->emit(e);
}

void SimObserver::timeline_sample(Cycle boundary, const std::vector<SmTimelinePoint>& sms,
                                  const GpuTimelinePoint& gpu) {
  GRS_CHECK(timeline_ != nullptr);
  timeline_->sample(boundary, sms, gpu);
}

void SimObserver::finalize(Cycle final_cycle) {
  if (sink_ == nullptr) return;
  for (std::uint32_t s = 0; s < num_sms_; ++s)
    for (std::uint32_t w = 0; w < warp_slots_; ++w) close_slice(s, w, final_cycle);
  char tmp[160];
  std::snprintf(tmp, sizeof tmp, "{\"kernel\":\"%s\",\"cycles\":%" PRIu64 "}", kernel_.c_str(),
                static_cast<std::uint64_t>(final_cycle));
  sink_->end(tmp);
}

const std::string& SimObserver::trace_json() const {
  static const std::string kEmpty;
  return owned_sink_ ? owned_sink_->str() : kEmpty;
}

std::string SimObserver::timeline_csv() const {
  return timeline_ ? timeline_->csv() : std::string();
}

}  // namespace grs::obs
