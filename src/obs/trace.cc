#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace grs::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char tmp[24];
  std::snprintf(tmp, sizeof tmp, "%" PRIu64, v);
  out += tmp;
}

/// Escape for a JSON string literal (names/args are ASCII; control chars and
/// quotes are the only hazards).
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char tmp[8];
      std::snprintf(tmp, sizeof tmp, "\\u%04x", c);
      out += tmp;
    } else {
      out += c;
    }
  }
}

}  // namespace

void ChromeTraceSink::begin() {
  buf_.clear();
  buf_ += "{\"traceEvents\":[\n";
  first_ = true;
}

void ChromeTraceSink::emit(const TraceEvent& e) {
  if (!first_) buf_ += ",\n";
  first_ = false;
  buf_ += "{\"name\":\"";
  append_escaped(buf_, e.name);
  buf_ += "\",\"ph\":\"";
  buf_ += e.ph;
  buf_ += '"';
  if (e.cat != nullptr) {
    buf_ += ",\"cat\":\"";
    append_escaped(buf_, e.cat);
    buf_ += '"';
  }
  buf_ += ",\"pid\":";
  append_u64(buf_, e.pid);
  buf_ += ",\"tid\":";
  append_u64(buf_, e.tid);
  if (e.ph != 'M') {
    buf_ += ",\"ts\":";
    append_u64(buf_, e.ts);
  }
  if (e.ph == 'X') {
    buf_ += ",\"dur\":";
    append_u64(buf_, e.dur);
  }
  if (e.ph == 'i') buf_ += ",\"s\":\"t\"";  // instant scope: thread
  if (!e.args_json.empty()) {
    buf_ += ",\"args\":";
    buf_ += e.args_json;
  }
  buf_ += '}';
}

void ChromeTraceSink::end(const std::string& other_data_json) {
  buf_ += "\n],\n\"displayTimeUnit\":\"ns\"";
  if (!other_data_json.empty()) {
    buf_ += ",\n\"otherData\":";
    buf_ += other_data_json;
  }
  buf_ += "\n}\n";
}

}  // namespace grs::obs
