// SimObserver: the one object the simulator talks to when observability is
// on. Zero-cost-when-off contract: every hook site in src/sm, src/gpu and
// src/memory guards on a pointer that is null unless the relevant pillar is
// enabled, so a default run compiles the instrumentation down to an untaken
// branch; GpuStats and the result-cache key are untouched either way.
//
// Pillars (any subset may be active):
//  * event tracing  — hooks below render Chrome-trace events into a
//    TraceSink; warp scan classifications become state-transition slices,
//    which is the trick that keeps traces byte-identical across cycle and
//    event exec modes (obs/events.h).
//  * timeline sampling — gpu/gpu.cc drives timeline_sample() at interval
//    boundaries; obs/timeline.h renders the CSV.
//
// One SimObserver observes exactly one simulate() call; it is not
// thread-safe and must not be shared across sweep points.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/opcode.h"
#include "obs/events.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace grs::obs {

/// Which pillars are on. Deliberately NOT part of GpuConfig: observability
/// must never change a config fingerprint or a result-cache key.
struct ObsOptions {
  bool trace = false;            ///< collect trace events
  Cycle timeline_interval = 0;   ///< sample period in cycles; 0 = timeline off

  [[nodiscard]] bool any() const { return trace || timeline_interval != 0; }
};

/// Fixed shape of the machine being traced; begin_run() turns it into
/// Perfetto process/thread metadata so tracks are named before any event.
struct TraceTopology {
  std::uint32_t num_sms = 0;
  std::uint32_t warp_slots = 0;   ///< per SM
  std::uint32_t block_slots = 0;  ///< per SM
  std::uint32_t pairs = 0;        ///< per SM
  std::uint32_t l2_banks = 0;
  std::uint32_t dram_channels = 0;
  std::uint32_t dram_banks_per_channel = 0;
  std::string kernel;
  std::uint64_t grid_blocks = 0;
};

class SimObserver {
 public:
  /// Owns a ChromeTraceSink when opts.trace is set.
  explicit SimObserver(const ObsOptions& opts);
  /// Trace into an external sink (not owned); opts.trace is implied on.
  SimObserver(const ObsOptions& opts, TraceSink* sink);

  SimObserver(const SimObserver&) = delete;
  SimObserver& operator=(const SimObserver&) = delete;

  [[nodiscard]] bool trace_enabled() const { return sink_ != nullptr; }
  [[nodiscard]] Cycle timeline_interval() const { return opts_.timeline_interval; }

  // --- lifecycle (gpu/gpu.cc) --------------------------------------------
  void begin_run(const TraceTopology& topo);
  /// Close still-open warp slices and seal the trace document.
  void finalize(Cycle final_cycle);

  // --- warp/scheduler hooks (sm/sm.cc; call only when trace_enabled()) ---
  void warp_scan(SmId sm, std::uint32_t slot, Cycle now, WarpState st);
  void warp_issue(SmId sm, std::uint32_t slot, Cycle now, Op op);
  void warp_exit(SmId sm, std::uint32_t slot, Cycle now);

  // --- block lifecycle ----------------------------------------------------
  void block_launch(SmId sm, std::uint32_t slot, std::uint64_t block_uid, Cycle now,
                    int pair_id, int side, bool owner);
  void block_finish(SmId sm, std::uint32_t slot, std::uint64_t block_uid, Cycle now);

  // --- sharing mechanism --------------------------------------------------
  void lock_acquire(SmId sm, std::uint32_t pair, Cycle now, bool reg, int side,
                    std::uint32_t pos, bool owner_seeded);
  void lock_release_warp(SmId sm, std::uint32_t pair, Cycle now, int side, std::uint32_t pos);
  void lock_release_block(SmId sm, std::uint32_t pair, Cycle now, int side);
  void ownership_transfer(SmId sm, std::uint32_t pair, Cycle now, int new_side);

  // --- memory hierarchy ---------------------------------------------------
  void l1_transaction(SmId sm, Cycle now, Addr line_addr, L1Outcome outcome, Cycle done);
  void l2_transaction(std::uint32_t bank, Cycle start, Addr line_addr, bool hit, bool merge,
                      Cycle done);
  void dram_transaction(std::uint32_t channel, std::uint32_t bank, Cycle begin, Addr line_addr,
                        bool row_hit, Cycle done);

  // --- timeline -----------------------------------------------------------
  void timeline_sample(Cycle boundary, const std::vector<SmTimelinePoint>& sms,
                       const GpuTimelinePoint& gpu);

  // --- outputs ------------------------------------------------------------
  /// Complete trace JSON (after finalize()); empty when tracing is off or
  /// the sink is external.
  [[nodiscard]] const std::string& trace_json() const;
  /// Timeline CSV; empty when the timeline pillar is off.
  [[nodiscard]] std::string timeline_csv() const;

 private:
  void close_slice(SmId sm, std::uint32_t slot, Cycle now);

  ObsOptions opts_;
  std::unique_ptr<ChromeTraceSink> owned_sink_;
  TraceSink* sink_ = nullptr;
  std::unique_ptr<TimelineSampler> timeline_;

  std::uint32_t num_sms_ = 0;
  std::uint32_t warp_slots_ = 0;
  std::uint32_t dram_banks_per_channel_ = 0;
  std::string kernel_;
  /// Current open slice per (sm, warp slot); kNone = no slice open.
  std::vector<WarpState> open_;
};

}  // namespace grs::obs
