#include "obs/timeline.h"

#include <cinttypes>
#include <cstdio>

namespace grs::obs {

namespace {

constexpr const char* kHeader =
    "cycle,sm,issued,stall,idle,warp_instr,thread_instr,ipc,"
    "blk_scoreboard,blk_barrier,blk_mshr,blk_lsu_port,blk_lsu_queue,blk_sfu_port,"
    "lock_wait,dyn_throttled,lock_acquired,ownership_transfers,"
    "l1_accesses,l1_misses,resident_blocks,resident_warps,mshr_inflight,"
    "l2_accesses,l2_misses,dram_requests,dram_row_hits,l2_busy_banks,dram_busy_banks\n";

void put_u64(std::string& out, std::uint64_t v) {
  char tmp[24];
  std::snprintf(tmp, sizeof tmp, ",%" PRIu64, v);
  out += tmp;
}

void put_ipc(std::string& out, std::uint64_t thread_instr, Cycle window) {
  char tmp[32];
  std::snprintf(tmp, sizeof tmp, ",%.4f",
                window == 0 ? 0.0
                            : static_cast<double>(thread_instr) / static_cast<double>(window));
  out += tmp;
}

/// The per-SM column block shared by SM rows and the "gpu" sum row:
/// window deltas for the counters, current values for the gauges.
void put_sm_columns(std::string& out, const SmTimelinePoint& cur, const SmTimelinePoint& prev,
                    Cycle window) {
  const SmStats& c = cur.stats;
  const SmStats& p = prev.stats;
  put_u64(out, c.issued_cycles - p.issued_cycles);
  put_u64(out, c.stall_cycles - p.stall_cycles);
  put_u64(out, c.idle_cycles - p.idle_cycles);
  put_u64(out, c.warp_instructions - p.warp_instructions);
  put_u64(out, c.thread_instructions - p.thread_instructions);
  put_ipc(out, c.thread_instructions - p.thread_instructions, window);
  put_u64(out, c.blocked_scoreboard - p.blocked_scoreboard);
  put_u64(out, c.blocked_barrier - p.blocked_barrier);
  put_u64(out, c.blocked_mshr - p.blocked_mshr);
  put_u64(out, c.blocked_lsu_port - p.blocked_lsu_port);
  put_u64(out, c.blocked_lsu_inflight - p.blocked_lsu_inflight);
  put_u64(out, c.blocked_sfu_port - p.blocked_sfu_port);
  put_u64(out, c.lock_wait_cycles - p.lock_wait_cycles);
  put_u64(out, c.dyn_throttled_issues - p.dyn_throttled_issues);
  put_u64(out, c.lock_acquisitions - p.lock_acquisitions);
  put_u64(out, c.ownership_transfers - p.ownership_transfers);
  put_u64(out, cur.l1_accesses - prev.l1_accesses);
  put_u64(out, cur.l1_misses - prev.l1_misses);
  put_u64(out, cur.resident_blocks);
  put_u64(out, cur.resident_warps);
  put_u64(out, cur.mshr_inflight);
}

}  // namespace

void TimelineSampler::sample(Cycle boundary, const std::vector<SmTimelinePoint>& sms,
                             const GpuTimelinePoint& gpu) {
  if (prev_sms_.empty()) prev_sms_.resize(sms.size());
  const Cycle window = interval_;

  char head[32];
  SmTimelinePoint total;
  for (std::size_t i = 0; i < sms.size(); ++i) {
    std::snprintf(head, sizeof head, "%" PRIu64 ",%zu", static_cast<std::uint64_t>(boundary),
                  i);
    rows_ += head;
    put_sm_columns(rows_, sms[i], prev_sms_[i], window);
    rows_ += ",,,,,,\n";  // L2/DRAM columns are gpu-row only

    total.stats.merge(sms[i].stats);
    // merge() folds the counters; sum the per-point extras by hand.
    total.l1_accesses += sms[i].l1_accesses;
    total.l1_misses += sms[i].l1_misses;
    total.resident_blocks += sms[i].resident_blocks;
    total.resident_warps += sms[i].resident_warps;
    total.mshr_inflight += sms[i].mshr_inflight;
  }

  SmTimelinePoint prev_total;
  for (const auto& p : prev_sms_) {
    prev_total.stats.merge(p.stats);
    prev_total.l1_accesses += p.l1_accesses;
    prev_total.l1_misses += p.l1_misses;
  }

  std::snprintf(head, sizeof head, "%" PRIu64 ",gpu", static_cast<std::uint64_t>(boundary));
  rows_ += head;
  put_sm_columns(rows_, total, prev_total, window);
  put_u64(rows_, gpu.l2_accesses - prev_gpu_.l2_accesses);
  put_u64(rows_, gpu.l2_misses - prev_gpu_.l2_misses);
  put_u64(rows_, gpu.dram_requests - prev_gpu_.dram_requests);
  put_u64(rows_, gpu.dram_row_hits - prev_gpu_.dram_row_hits);
  put_u64(rows_, gpu.l2_busy_banks);
  put_u64(rows_, gpu.dram_busy_banks);
  rows_ += '\n';

  prev_sms_ = sms;
  prev_gpu_ = gpu;
}

std::string TimelineSampler::csv() const { return kHeader + rows_; }

}  // namespace grs::obs
