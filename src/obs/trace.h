// TraceSink: where instrumentation events go when tracing is on.
//
// The simulator side (obs::SimObserver) produces TraceEvent records already
// carrying final pid/tid/ts coordinates; sinks only serialize or count them.
// ChromeTraceSink renders the Chrome trace-event JSON object format that
// Perfetto and chrome://tracing load directly — one event per line, appended
// strictly in hook-call order, so a trace is byte-identical whenever the
// hook stream is (the determinism contract tests/test_obs.cc locks in).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace grs::obs {

/// One trace-event record. `name`/`cat` point at static strings (the emitter
/// owns no dynamic names — variable data goes into `args_json`).
struct TraceEvent {
  char ph = 'i';            ///< 'M' meta, 'B'/'E' slice, 'i' instant, 'X' complete
  std::uint32_t pid = 0;    ///< process: SM or memory system (obs/events.h)
  std::uint32_t tid = 0;    ///< track within the process
  Cycle ts = 0;             ///< sim-cycle timestamp
  Cycle dur = 0;            ///< 'X' only: duration in cycles
  const char* name = "";
  const char* cat = nullptr;      ///< optional category
  std::string args_json;          ///< optional rendered `{...}` object
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin() {}
  virtual void emit(const TraceEvent& e) = 0;
  /// The argument is a rendered `{...}` object for the file trailer
  /// (ignored by non-serializing sinks).
  virtual void end(const std::string& /*other_data_json*/) {}
};

/// Serializes to the Chrome trace-event JSON object format, buffered in
/// memory; the runner writes `str()` to disk after the sweep so parallel
/// sweep points never interleave file writes.
class ChromeTraceSink final : public TraceSink {
 public:
  void begin() override;
  void emit(const TraceEvent& e) override;
  void end(const std::string& other_data_json) override;

  /// The complete JSON document (valid only after end()).
  [[nodiscard]] const std::string& str() const { return buf_; }

 private:
  std::string buf_;
  bool first_ = true;
};

/// Swallows events, counting them: the zero-serialization baseline for
/// bench/micro_sim.cc and hook-coverage assertions in tests.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override { ++events_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  std::uint64_t events_ = 0;
};

}  // namespace grs::obs
