// Periodic counter sampling: per-SM time series over the cumulative SmStats
// counters plus a handful of occupancy gauges, rendered as CSV.
//
// The GPU loop (gpu/gpu.cc) calls sample() at every multiple of the
// configured interval with counter values *as they stand at that boundary*.
// In event mode a sleeping SM's counters are reconstructed with
// StreamingMultiprocessor::stats_at() (the same scaled-delta replay that
// makes end-of-run stats bit-identical across modes), and boundaries inside
// a skipped window are emitted as catch-up samples — so the CSV is
// byte-identical across cycle/event exec modes and across --threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace grs::obs {

/// One SM's cumulative counters + instantaneous gauges at a sample boundary.
struct SmTimelinePoint {
  SmStats stats;                  ///< cumulative (l1_* fields unused here)
  std::uint64_t l1_accesses = 0;  ///< cumulative, straight from the L1
  std::uint64_t l1_misses = 0;
  std::uint32_t resident_blocks = 0;  ///< gauges at the boundary
  std::uint32_t resident_warps = 0;
  std::uint32_t mshr_inflight = 0;    ///< L1 MSHR occupancy
};

/// Shared-memory-system counters + gauges at a sample boundary.
struct GpuTimelinePoint {
  std::uint64_t l2_accesses = 0;  ///< cumulative
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_requests = 0;
  std::uint64_t dram_row_hits = 0;
  std::uint32_t l2_busy_banks = 0;    ///< gauges: banks still occupied
  std::uint32_t dram_busy_banks = 0;
};

/// Accumulates samples and renders the CSV (docs/observability.md lists the
/// columns). Per boundary: one row per SM (window deltas + gauges) and one
/// "gpu" row (SM sums + L2/DRAM columns, which per-SM rows leave empty).
class TimelineSampler {
 public:
  explicit TimelineSampler(Cycle interval) : interval_(interval) {}

  [[nodiscard]] Cycle interval() const { return interval_; }

  void sample(Cycle boundary, const std::vector<SmTimelinePoint>& sms,
              const GpuTimelinePoint& gpu);

  /// Header + every row so far (trailing newline included).
  [[nodiscard]] std::string csv() const;

 private:
  Cycle interval_;
  std::string rows_;
  std::vector<SmTimelinePoint> prev_sms_;  ///< cumulative values at the last boundary
  GpuTimelinePoint prev_gpu_;
};

}  // namespace grs::obs
